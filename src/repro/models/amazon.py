"""Amazon-style review aggregation — centralized / resource / global.

A product page's standing is the mean star rating, with two published
refinements reproduced here: reviews with more *helpful votes* count
more, and recent reviews count more than stale ones.  Ratings on
``[0, 1]`` map to the 1-5 star scale for display.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.ids import EntityId
from repro.common.records import Feedback
from repro.core.decay import DecayPolicy, ExponentialDecay
from repro.core.typology import Architecture, Scope, Subject, Typology
from repro.models.base import ReputationModel


@dataclass
class _Review:
    rater: EntityId
    time: float
    rating: float
    helpful_votes: int = 0


class AmazonModel(ReputationModel):
    """Helpfulness- and recency-weighted mean rating.

    Args:
        decay: recency weighting of reviews (default: half-life 200).
        helpfulness_weight: extra weight per helpful vote; a review's
            weight is ``1 + helpfulness_weight * votes``.
    """

    name = "amazon"
    typology = Typology(
        Architecture.CENTRALIZED, Subject.RESOURCE, Scope.GLOBAL
    )
    paper_ref = "[2]"

    def __init__(
        self,
        decay: Optional[DecayPolicy] = None,
        helpfulness_weight: float = 0.25,
    ) -> None:
        if helpfulness_weight < 0:
            raise ConfigurationError("helpfulness_weight must be >= 0")
        self.decay = decay or ExponentialDecay(half_life=200.0)
        self.helpfulness_weight = helpfulness_weight
        self._reviews: Dict[EntityId, List[_Review]] = {}

    def record(self, feedback: Feedback) -> None:
        self._reviews.setdefault(feedback.target, []).append(
            _Review(
                rater=feedback.rater,
                time=feedback.time,
                rating=feedback.rating,
            )
        )

    def vote_helpful(
        self, target: EntityId, rater: EntityId, votes: int = 1
    ) -> None:
        """Add helpful votes to *rater*'s reviews of *target*."""
        if votes < 0:
            raise ConfigurationError("votes must be >= 0")
        for review in self._reviews.get(target, ()):
            if review.rater == rater:
                review.helpful_votes += votes

    def review_count(self, target: EntityId) -> int:
        return len(self._reviews.get(target, ()))

    def star_rating(
        self, target: EntityId, now: Optional[float] = None
    ) -> Optional[float]:
        """Display rating on the 1-5 star scale; None without reviews."""
        if not self._reviews.get(target):
            return None
        return 1.0 + 4.0 * self.score(target, now=now)

    def score(
        self,
        target: EntityId,
        perspective: Optional[EntityId] = None,
        now: Optional[float] = None,
    ) -> float:
        reviews = self._reviews.get(target)
        if not reviews:
            return 0.5
        weights = 1.0 + self.helpfulness_weight * np.array(
            [r.helpful_votes for r in reviews], dtype=float
        )
        if now is not None:
            ages = now - np.array([r.time for r in reviews], dtype=float)
            weights = weights * self.decay.weights(np.maximum(ages, 0.0))
        ratings = np.array([r.rating for r in reviews], dtype=float)
        weight_sum = float(weights.sum())
        if weight_sum <= 0:
            return 0.5
        return float(weights @ ratings) / weight_sum
