"""Day's autonomic selection framework — centralized / resource /
personalized.

Day's thesis (University of Saskatchewan, 2005) proposes two selection
algorithms the survey highlights:

* a **rule-based expert system** — IF-THEN rules over per-facet
  reputation with certainty factors, combined MYCIN-style, and
* a **naive Bayes classifier** — predicts whether a service will be
  satisfactory from its discretized facet reputations, trained on the
  consumer's labelled past selections.

Both score services from the same facet-reputation substrate (a
recency-weighted mean per facet, per service).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.common.errors import ConfigurationError
from repro.common.ids import EntityId
from repro.common.mathutils import safe_mean
from repro.common.records import Feedback
from repro.core.typology import Architecture, Scope, Subject, Typology
from repro.models.base import ReputationModel


class _FacetSubstrate:
    """Shared facet-reputation bookkeeping for both Day algorithms."""

    def __init__(self) -> None:
        #: service -> facet -> list of ratings
        self._facets: Dict[EntityId, Dict[str, List[float]]] = {}
        self._overall: Dict[EntityId, List[float]] = {}

    def add(self, feedback: Feedback) -> None:
        self._overall.setdefault(feedback.target, []).append(feedback.rating)
        facets = self._facets.setdefault(feedback.target, {})
        for facet, rating in feedback.facet_ratings.items():
            facets.setdefault(facet, []).append(rating)

    def facet_reputation(self, service: EntityId, facet: str) -> Optional[float]:
        ratings = self._facets.get(service, {}).get(facet)
        return safe_mean(ratings) if ratings else None

    def facet_vector(self, service: EntityId) -> Dict[str, float]:
        return {
            facet: safe_mean(vals)
            for facet, vals in self._facets.get(service, {}).items()
            if vals
        }

    def overall(self, service: EntityId) -> Optional[float]:
        ratings = self._overall.get(service)
        return safe_mean(ratings) if ratings else None


@dataclass(frozen=True)
class Rule:
    """One expert-system rule with a certainty factor.

    ``condition`` receives the service's facet-reputation vector and
    returns whether the rule fires; ``certainty`` in ``[-1, 1]`` is the
    rule's evidence for (positive) or against (negative) selecting the
    service.
    """

    name: str
    condition: Callable[[Mapping[str, float]], bool]
    certainty: float

    def __post_init__(self) -> None:
        if not -1.0 <= self.certainty <= 1.0:
            raise ConfigurationError("certainty must be in [-1, 1]")


def threshold_rule(
    name: str, facet: str, minimum: float, certainty: float
) -> Rule:
    """Convenience: fires when ``facet`` reputation >= ``minimum``."""
    return Rule(
        name=name,
        condition=lambda facets: facets.get(facet, 0.0) >= minimum,
        certainty=certainty,
    )


def combine_certainty(cf1: float, cf2: float) -> float:
    """MYCIN certainty-factor combination."""
    if cf1 >= 0 and cf2 >= 0:
        return cf1 + cf2 * (1 - cf1)
    if cf1 < 0 and cf2 < 0:
        return cf1 + cf2 * (1 + cf1)
    return (cf1 + cf2) / (1 - min(abs(cf1), abs(cf2)))


class DayExpertSystem(ReputationModel):
    """Rule-based selection with MYCIN certainty combination.

    Without user-supplied rules a default rule set over common QoS
    facets is installed (good response time / reliability /
    availability support selection; bad reliability argues against).
    """

    name = "day"
    typology = Typology(
        Architecture.CENTRALIZED, Subject.RESOURCE, Scope.PERSONALIZED
    )
    paper_ref = "[5, 6]"

    def __init__(self, rules: Optional[List[Rule]] = None) -> None:
        self._substrate = _FacetSubstrate()
        self.rules: List[Rule] = rules if rules is not None else [
            threshold_rule("fast", "response_time", 0.6, 0.5),
            threshold_rule("reliable", "reliability", 0.6, 0.5),
            threshold_rule("available", "availability", 0.6, 0.3),
            threshold_rule("accurate", "accuracy", 0.6, 0.4),
            threshold_rule("cheap", "cost", 0.6, 0.3),
            Rule(
                "unreliable",
                lambda f: f.get("reliability", 1.0) < 0.4,
                -0.7,
            ),
            Rule(
                "slow",
                lambda f: f.get("response_time", 1.0) < 0.3,
                -0.5,
            ),
        ]

    def add_rule(self, rule: Rule) -> None:
        self.rules.append(rule)

    def record(self, feedback: Feedback) -> None:
        self._substrate.add(feedback)

    def certainty(self, target: EntityId) -> float:
        """Combined certainty in ``[-1, 1]`` that *target* is suitable."""
        facets = self._substrate.facet_vector(target)
        if not facets:
            # No facet evidence: the overall reputation (when present)
            # acts as a single "suitable" pseudo-facet.
            overall = self._substrate.overall(target)
            if overall is None:
                return 0.0
            return 2.0 * overall - 1.0
        combined = 0.0
        for rule in self.rules:
            if rule.condition(facets):
                combined = combine_certainty(combined, rule.certainty)
        return combined

    def score(
        self,
        target: EntityId,
        perspective: Optional[EntityId] = None,
        now: Optional[float] = None,
    ) -> float:
        return (self.certainty(target) + 1.0) / 2.0


class DayNaiveBayes(ReputationModel):
    """Naive Bayes selection: P(satisfactory | discretized facets).

    Training examples come from feedback: the facet ratings are the
    features (discretized into ``bins`` levels) and the overall rating
    thresholded at ``label_threshold`` is the class label.
    """

    name = "day_naive_bayes"
    typology = Typology(
        Architecture.CENTRALIZED, Subject.RESOURCE, Scope.PERSONALIZED
    )
    paper_ref = "[5, 6]"

    def __init__(self, bins: int = 3, label_threshold: float = 0.5) -> None:
        if bins < 2:
            raise ConfigurationError("bins must be >= 2")
        if not 0.0 <= label_threshold <= 1.0:
            raise ConfigurationError("label_threshold must be in [0, 1]")
        self.bins = bins
        self.label_threshold = label_threshold
        self._substrate = _FacetSubstrate()
        #: class -> count
        self._class_counts: Dict[bool, int] = {True: 0, False: 0}
        #: (facet, bin, class) -> count
        self._feature_counts: Dict[Tuple[str, int, bool], int] = {}
        self._facet_names: set = set()

    def _bin(self, value: float) -> int:
        return min(self.bins - 1, int(value * self.bins))

    def record(self, feedback: Feedback) -> None:
        self._substrate.add(feedback)
        if not feedback.facet_ratings:
            return
        label = feedback.rating > self.label_threshold
        self._class_counts[label] += 1
        for facet, rating in feedback.facet_ratings.items():
            self._facet_names.add(facet)
            key = (facet, self._bin(rating), label)
            self._feature_counts[key] = self._feature_counts.get(key, 0) + 1

    def posterior(self, facet_vector: Mapping[str, float]) -> float:
        """P(satisfactory | facets) with Laplace smoothing."""
        n_pos = self._class_counts[True]
        n_neg = self._class_counts[False]
        total = n_pos + n_neg
        if total == 0:
            return 0.5
        log_pos = math.log((n_pos + 1.0) / (total + 2.0))
        log_neg = math.log((n_neg + 1.0) / (total + 2.0))
        for facet, value in facet_vector.items():
            if facet not in self._facet_names:
                continue
            b = self._bin(value)
            pos_count = self._feature_counts.get((facet, b, True), 0)
            neg_count = self._feature_counts.get((facet, b, False), 0)
            log_pos += math.log((pos_count + 1.0) / (n_pos + self.bins))
            log_neg += math.log((neg_count + 1.0) / (n_neg + self.bins))
        # Stable softmax over the two log-joints.
        peak = max(log_pos, log_neg)
        p_pos = math.exp(log_pos - peak)
        p_neg = math.exp(log_neg - peak)
        return p_pos / (p_pos + p_neg)

    def score(
        self,
        target: EntityId,
        perspective: Optional[EntityId] = None,
        now: Optional[float] = None,
    ) -> float:
        facets = self._substrate.facet_vector(target)
        if not facets:
            # Untrained classifier or facet-less feedback: fall back to
            # the mean overall rating.
            overall = self._substrate.overall(target)
            return 0.5 if overall is None else overall
        return self.posterior(facets)
