"""Reputation from social-network topology (Pujol, Sangüesa & Delgado)
— decentralized / person-agent / global.

NodeRanking's premise: reputation can be *extracted* from the structure
of the community graph alone — who is connected to whom — without
explicit ratings.  An agent pointed to by well-positioned agents is
well-positioned itself; authority propagates along edges like PageRank
but over the social graph, with each node ranked by its share of
incoming authority.

Edges come either from explicit :meth:`add_relation` calls or from
positive feedback (a positive rating is a social endorsement).
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.common.errors import ConfigurationError
from repro.common.ids import EntityId
from repro.common.records import Feedback
from repro.core.typology import Architecture, Scope, Subject, Typology
from repro.models.base import ReputationModel


class SocialNetworkModel(ReputationModel):
    """NodeRanking-style authority propagation over the social graph.

    Args:
        damping: restart probability complement (as in PageRank; Pujol
            uses a similar jump factor).
        positive_threshold: feedback above this creates a social edge.
    """

    name = "social_network"
    typology = Typology(
        Architecture.DECENTRALIZED, Subject.PERSON_AGENT, Scope.GLOBAL
    )
    paper_ref = "[24]"

    def __init__(
        self,
        damping: float = 0.85,
        positive_threshold: float = 0.5,
        tol: float = 1e-10,
        max_iter: int = 200,
    ) -> None:
        if not 0.0 < damping < 1.0:
            raise ConfigurationError("damping must be in (0, 1)")
        self.damping = damping
        self.positive_threshold = positive_threshold
        self.tol = tol
        self.max_iter = max_iter
        self._out: Dict[EntityId, Set[EntityId]] = {}
        self._nodes: Set[EntityId] = set()
        self._authority: Optional[Dict[EntityId, float]] = None

    def add_relation(self, source: EntityId, target: EntityId) -> None:
        """Add a directed social edge (acquaintance/endorsement)."""
        if source == target:
            return
        self._out.setdefault(source, set()).add(target)
        self._nodes.update((source, target))
        self._authority = None

    def record(self, feedback: Feedback) -> None:
        self._nodes.update((feedback.rater, feedback.target))
        if feedback.rating > self.positive_threshold:
            self.add_relation(feedback.rater, feedback.target)
        else:
            self._authority = None

    def degree(self, node: EntityId) -> int:
        """In-degree of *node* (raw topological standing)."""
        return sum(1 for targets in self._out.values() if node in targets)

    def compute(self) -> Dict[EntityId, float]:
        """Authority per node via damped power iteration (sums to 1)."""
        nodes = sorted(self._nodes)
        n = len(nodes)
        if n == 0:
            self._authority = {}
            return {}
        index = {node: i for i, node in enumerate(nodes)}
        rank = [1.0 / n] * n
        for _ in range(self.max_iter):
            nxt = [(1.0 - self.damping) / n] * n
            dangling = sum(
                rank[index[node]]
                for node in nodes
                if not self._out.get(node)
            )
            spread = self.damping * dangling / n
            for i in range(n):
                nxt[i] += spread
            for node, targets in self._out.items():
                if not targets:
                    continue
                share = self.damping * rank[index[node]] / len(targets)
                for tgt in sorted(targets):
                    nxt[index[tgt]] += share
            delta = sum(abs(a - b) for a, b in zip(rank, nxt))
            rank = nxt
            if delta < self.tol:
                break
        self._authority = {node: rank[index[node]] for node in nodes}
        return dict(self._authority)

    def score(
        self,
        target: EntityId,
        perspective: Optional[EntityId] = None,
        now: Optional[float] = None,
    ) -> float:
        if self._authority is None:
            self.compute()
        assert self._authority is not None
        if not self._authority:
            return 0.5
        top = max(self._authority.values())
        if top <= 0:
            return 0.5
        return self._authority.get(target, 0.0) / top
