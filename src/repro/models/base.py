"""The common interface every surveyed system implements.

A :class:`ReputationModel` consumes :class:`~repro.common.records.Feedback`
through :meth:`record` and answers score queries through :meth:`score`.
Personalized systems use the *perspective* argument (whose opinion is
being asked); global systems ignore it.  Scores are always on ``[0, 1]``
so models are directly comparable in the typology benchmark.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, List, Optional, Sequence

from repro.common.ids import EntityId
from repro.common.records import Feedback
from repro.obs.recorder import get_recorder

if TYPE_CHECKING:  # imported lazily to avoid a core <-> models cycle
    from repro.core.typology import Typology


@dataclass(frozen=True)
class ScoredTarget:
    """One ranked candidate."""

    target: EntityId
    score: float


class ReputationModel(abc.ABC):
    """Base class for trust and reputation mechanisms.

    Class attributes:
        name: registry key (snake_case).
        typology: the system's Figure 4 classification.
        paper_ref: citation bracket from the survey's reference list.
    """

    name: str = "abstract"
    typology: Optional["Typology"] = None
    paper_ref: str = ""

    @abc.abstractmethod
    def record(self, feedback: Feedback) -> None:
        """Ingest one feedback report."""

    @abc.abstractmethod
    def score(
        self,
        target: EntityId,
        perspective: Optional[EntityId] = None,
        now: Optional[float] = None,
    ) -> float:
        """Reputation/trust of *target* on ``[0, 1]``.

        Args:
            target: the entity being scored.
            perspective: the asking member, for personalized systems.
            now: current simulation time, for decay-aware systems.

        Entities without any evidence score the model's prior (usually
        0.5 — maximal uncertainty).
        """

    def record_many(self, feedbacks: Iterable[Feedback]) -> None:
        """Bulk-ingest feedback, equivalent to a :meth:`record` loop.

        Store-backed models override this with a single columnar
        :meth:`~repro.store.EventStore.extend`, which interns ids and
        seals chunks without a per-event Python frame; the resulting
        store is byte-identical to what looped appends produce.
        """
        for fb in feedbacks:
            self.record(fb)

    def score_many(
        self,
        targets: Sequence[EntityId],
        perspective: Optional[EntityId] = None,
        now: Optional[float] = None,
    ) -> List[float]:
        """Scores for *targets*, in order.

        Three paths coexist, fastest first, and the property suites pin
        them together to 1e-9 under any record/query interleaving:

        1. **columnar kernel** — store-backed models override this with
           numpy reductions (bincount/lexsort) over the shared
           :class:`~repro.store.EventStore` snapshot, cached per store
           version;
        2. **scalar reference** — ported models keep their pre-columnar
           python batch path as ``score_many_reference`` (and some
           kernels fall back to it when their vectorization
           preconditions fail, e.g. Sporas with coupled rater/target
           sets);
        3. **base loop** — this default, one :meth:`score` call per
           target, the semantic ground truth.
        """
        return [self.score(t, perspective, now) for t in targets]

    def rank(
        self,
        candidates: Iterable[EntityId],
        perspective: Optional[EntityId] = None,
        now: Optional[float] = None,
    ) -> List[ScoredTarget]:
        """Candidates sorted best-first (ties broken by id for
        determinism).  Scoring goes through :meth:`score_many` so
        batched models pay their per-query overhead once per ranking."""
        candidates = list(candidates)
        rec = get_recorder()
        if rec.enabled:
            if now is not None:
                rec.advance(now)
            rec.observe(
                "model.rank.batch_size",
                len(candidates),
                labels=(self.name,),
                label_names=("model",),
            )
        scores = self.score_many(candidates, perspective, now)
        scored = [
            ScoredTarget(target=c, score=float(s))
            for c, s in zip(candidates, scores)
        ]
        scored.sort(key=lambda st: (-st.score, st.target))
        return scored

    def best(
        self,
        candidates: Iterable[EntityId],
        perspective: Optional[EntityId] = None,
        now: Optional[float] = None,
    ) -> Optional[EntityId]:
        ranking = self.rank(candidates, perspective, now)
        return ranking[0].target if ranking else None

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
