"""The common interface every surveyed system implements.

A :class:`ReputationModel` consumes :class:`~repro.common.records.Feedback`
through :meth:`record` and answers score queries through :meth:`score`.
Personalized systems use the *perspective* argument (whose opinion is
being asked); global systems ignore it.  Scores are always on ``[0, 1]``
so models are directly comparable in the typology benchmark.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, List, Optional, Sequence

from repro.common.ids import EntityId
from repro.common.records import Feedback
from repro.obs.recorder import get_recorder

if TYPE_CHECKING:  # imported lazily to avoid a core <-> models cycle
    from repro.core.typology import Typology


@dataclass(frozen=True)
class ScoredTarget:
    """One ranked candidate."""

    target: EntityId
    score: float


class ReputationModel(abc.ABC):
    """Base class for trust and reputation mechanisms.

    Class attributes:
        name: registry key (snake_case).
        typology: the system's Figure 4 classification.
        paper_ref: citation bracket from the survey's reference list.
    """

    name: str = "abstract"
    typology: Optional["Typology"] = None
    paper_ref: str = ""

    @abc.abstractmethod
    def record(self, feedback: Feedback) -> None:
        """Ingest one feedback report."""

    @abc.abstractmethod
    def score(
        self,
        target: EntityId,
        perspective: Optional[EntityId] = None,
        now: Optional[float] = None,
    ) -> float:
        """Reputation/trust of *target* on ``[0, 1]``.

        Args:
            target: the entity being scored.
            perspective: the asking member, for personalized systems.
            now: current simulation time, for decay-aware systems.

        Entities without any evidence score the model's prior (usually
        0.5 — maximal uncertainty).
        """

    def record_many(self, feedbacks: Iterable[Feedback]) -> None:
        for fb in feedbacks:
            self.record(fb)

    def score_many(
        self,
        targets: Sequence[EntityId],
        perspective: Optional[EntityId] = None,
        now: Optional[float] = None,
    ) -> List[float]:
        """Scores for *targets*, in order.

        The default loops over :meth:`score`; hot models override this
        with a batched kernel that shares per-query work (similarity
        caches, stationary vectors, decay weights) across the whole
        candidate set.  Overrides must return exactly what the
        per-target loop would (to float tolerance) — the property suite
        enforces it.
        """
        return [self.score(t, perspective, now) for t in targets]

    def rank(
        self,
        candidates: Iterable[EntityId],
        perspective: Optional[EntityId] = None,
        now: Optional[float] = None,
    ) -> List[ScoredTarget]:
        """Candidates sorted best-first (ties broken by id for
        determinism).  Scoring goes through :meth:`score_many` so
        batched models pay their per-query overhead once per ranking."""
        candidates = list(candidates)
        rec = get_recorder()
        if rec.enabled:
            if now is not None:
                rec.advance(now)
            rec.observe(
                "model.rank.batch_size",
                len(candidates),
                labels=(self.name,),
                label_names=("model",),
            )
        scores = self.score_many(candidates, perspective, now)
        scored = [
            ScoredTarget(target=c, score=float(s))
            for c, s in zip(candidates, scores)
        ]
        scored.sort(key=lambda st: (-st.score, st.target))
        return scored

    def best(
        self,
        candidates: Iterable[EntityId],
        perspective: Optional[EntityId] = None,
        now: Optional[float] = None,
    ) -> Optional[EntityId]:
        ranking = self.rank(candidates, perspective, now)
        return ranking[0].target if ranking else None

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
