"""Discrete-event simulation kernel and network accounting.

The kernel is intentionally small: a priority queue of timestamped
callbacks plus a clock.  Reputation experiments are *logically* discrete
(invocation, feedback, query), so a full process-interaction framework is
unnecessary; what matters is a deterministic event order and cheap
message/cost accounting.
"""

from repro.sim.clock import Clock
from repro.sim.kernel import Event, Simulator
from repro.sim.network import DeliveryOutcome, MessageStats, Network

__all__ = [
    "Clock",
    "DeliveryOutcome",
    "Event",
    "MessageStats",
    "Network",
    "Simulator",
]
