"""Simulation clock.

A tiny mutable wrapper around "current simulation time" shared by the
kernel and by components that only need to timestamp records (feedback
stores, decay policies) without scheduling events themselves.
"""

from __future__ import annotations

from repro.common.errors import SimulationError


class Clock:
    """Monotonically non-decreasing simulation time."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    def advance_to(self, time: float) -> None:
        """Move the clock forward to *time*.

        Raises :class:`SimulationError` if *time* is in the past — the
        kernel guarantees event order, so any backwards move is a bug.
        """
        if time < self._now:
            raise SimulationError(
                f"clock cannot move backwards: {time} < {self._now}"
            )
        self._now = float(time)

    def advance_by(self, delta: float) -> None:
        """Move the clock forward by a non-negative *delta*."""
        if delta < 0:
            raise SimulationError(f"negative clock delta: {delta}")
        self._now += float(delta)

    def __repr__(self) -> str:
        return f"Clock(now={self._now:g})"
