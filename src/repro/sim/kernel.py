"""Discrete-event simulation kernel.

Events are ``(time, priority, sequence)``-ordered callbacks.  The
*sequence* component makes ordering fully deterministic: two events at the
same time and priority fire in scheduling order, so identical seeds always
produce identical runs.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

from repro.common.errors import SimulationError
from repro.obs.recorder import get_recorder
from repro.sim.clock import Clock

EventCallback = Callable[[], Any]


@dataclass(order=True)
class Event:
    """A scheduled callback.  Ordering key: (time, priority, seq)."""

    time: float
    priority: int
    seq: int
    callback: EventCallback = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the kernel skips it when popped."""
        self.cancelled = True


class Simulator:
    """Deterministic discrete-event simulator.

    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(2.0, lambda: fired.append("b"))
    >>> _ = sim.schedule(1.0, lambda: fired.append("a"))
    >>> sim.run()
    2
    >>> fired
    ['a', 'b']
    """

    def __init__(self, start: float = 0.0) -> None:
        self.clock = Clock(start)
        self._queue: List[Event] = []
        self._seq = itertools.count()
        self._running = False
        self._executed = 0

    @property
    def now(self) -> float:
        return self.clock.now

    @property
    def pending(self) -> int:
        """Number of not-yet-fired, not-cancelled events."""
        return sum(1 for ev in self._queue if not ev.cancelled)

    @property
    def executed(self) -> int:
        """Number of events executed so far."""
        return self._executed

    def schedule(
        self, time: float, callback: EventCallback, priority: int = 0
    ) -> Event:
        """Schedule *callback* at absolute simulation *time*."""
        if time < self.clock.now:
            raise SimulationError(
                f"cannot schedule event in the past: {time} < {self.clock.now}"
            )
        event = Event(time, priority, next(self._seq), callback)
        heapq.heappush(self._queue, event)
        return event

    def schedule_in(
        self, delay: float, callback: EventCallback, priority: int = 0
    ) -> Event:
        """Schedule *callback* *delay* time units from now."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.schedule(self.clock.now + delay, callback, priority)

    def schedule_every(
        self,
        interval: float,
        callback: EventCallback,
        start: Optional[float] = None,
        count: Optional[int] = None,
        priority: int = 0,
    ) -> None:
        """Schedule *callback* periodically.

        Fires first at *start* (default: now + interval), then every
        *interval*, for *count* occurrences (default: until the run's
        ``until`` horizon drains the queue).  *priority* orders the
        periodic fires against same-time one-shot events — shard round
        drivers use it to run behind any same-tick maintenance work.
        """
        if interval <= 0:
            raise SimulationError(f"interval must be positive: {interval}")
        first = self.clock.now + interval if start is None else start
        remaining = count

        def fire() -> None:
            nonlocal remaining
            callback()
            if remaining is not None:
                remaining -= 1
                if remaining <= 0:
                    return
            self.schedule_in(interval, fire, priority)

        if remaining is not None and remaining <= 0:
            return
        self.schedule(first, fire, priority)

    def step(self) -> bool:
        """Execute the next event.  Returns False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self.clock.advance_to(event.time)
            rec = get_recorder()
            if rec.enabled:
                rec.advance(event.time)
                rec.count("sim.events.dispatched")
                rec.span(
                    "sim.dispatch",
                    time=event.time,
                    attrs={"priority": event.priority, "seq": event.seq},
                )
            event.callback()
            self._executed += 1
            return True
        return False

    def run(
        self, until: Optional[float] = None, max_events: Optional[int] = None
    ) -> int:
        """Run events in order; returns the number executed by this call.

        Args:
            until: stop once the next event would fire after this time
                (the clock is advanced to *until*).
            max_events: hard cap on events executed by this call — a
                safety valve against self-rescheduling loops.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run)")
        self._running = True
        executed = 0
        try:
            while self._queue:
                if max_events is not None and executed >= max_events:
                    break
                head = self._queue[0]
                if head.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if until is not None and head.time > until:
                    break
                self.step()
                executed += 1
            if until is not None and until > self.clock.now:
                self.clock.advance_to(until)
        finally:
            self._running = False
        return executed
