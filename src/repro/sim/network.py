"""Network model: message accounting and latency.

The survey's comparative claims about centralized vs. decentralized
mechanisms are about *cost* — messages exchanged, load concentration,
single points of failure.  :class:`Network` provides exactly that: every
component sends logical messages through it, and experiments read the
aggregated statistics afterwards.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from repro.common.ids import EntityId
from repro.common.randomness import RngLike, make_rng


@dataclass
class MessageStats:
    """Aggregated traffic statistics."""

    total_messages: int = 0
    total_bytes: int = 0
    by_kind: Counter = field(default_factory=Counter)
    sent_by: Counter = field(default_factory=Counter)
    received_by: Counter = field(default_factory=Counter)

    def load_imbalance(self) -> float:
        """Max/mean ratio of per-node received messages (1.0 = balanced).

        A centralized registry shows imbalance ~N (everything lands on one
        node); a well-balanced DHT stays near 1.
        """
        if not self.received_by:
            return 1.0
        loads = list(self.received_by.values())
        mean = sum(loads) / len(loads)
        if mean <= 0:
            return 1.0
        return max(loads) / mean


class Network:
    """Logical message fabric with per-node failure and latency.

    Components call :meth:`send` for every logical message; the network
    records it and returns the delivery latency (or ``None`` when the
    destination is failed/partitioned).  Latency is ``base_latency`` plus
    an exponential jitter term.
    """

    def __init__(
        self,
        base_latency: float = 0.01,
        jitter: float = 0.005,
        rng: RngLike = None,
    ) -> None:
        if base_latency < 0 or jitter < 0:
            raise ValueError("latency parameters must be non-negative")
        self._base_latency = base_latency
        self._jitter = jitter
        self._rng = make_rng(rng)
        self._failed: Set[EntityId] = set()
        self.stats = MessageStats()

    def fail_node(self, node: EntityId) -> None:
        """Mark *node* as unreachable (fault injection)."""
        self._failed.add(node)

    def heal_node(self, node: EntityId) -> None:
        self._failed.discard(node)

    def is_failed(self, node: EntityId) -> bool:
        return node in self._failed

    def send(
        self,
        sender: EntityId,
        receiver: EntityId,
        kind: str = "message",
        size: int = 1,
    ) -> Optional[float]:
        """Record one logical message; return latency or None if undeliverable.

        Messages to failed nodes still count as *sent* (the sender paid
        for them) but are not delivered.
        """
        self.stats.total_messages += 1
        self.stats.total_bytes += size
        self.stats.by_kind[kind] += 1
        self.stats.sent_by[sender] += 1
        if receiver in self._failed or sender in self._failed:
            return None
        self.stats.received_by[receiver] += 1
        latency = self._base_latency
        if self._jitter > 0:
            latency += float(self._rng.exponential(self._jitter))
        return latency

    def reset_stats(self) -> None:
        self.stats = MessageStats()


def per_node_load(stats: MessageStats) -> Dict[EntityId, int]:
    """Received-message load per node (convenience for experiment output)."""
    loads: Dict[EntityId, int] = defaultdict(int)
    for node, count in stats.received_by.items():
        loads[node] = count
    return dict(loads)
