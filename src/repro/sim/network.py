"""Network model: message accounting, latency, and fault injection.

The survey's comparative claims about centralized vs. decentralized
mechanisms are about *cost* — messages exchanged, load concentration,
single points of failure.  :class:`Network` provides exactly that: every
component sends logical messages through it, and experiments read the
aggregated statistics afterwards.

Delivery is *observable*: :meth:`Network.send` returns a typed
:class:`DeliveryOutcome` rather than a bare latency, so callers can
distinguish a delivered message (and its latency) from a drop and its
reason, and :class:`MessageStats` accounts drops per reason.  A
:class:`~repro.faults.plan.MessageFaultInjector` can be installed on
:attr:`Network.faults` to drop, delay, or duplicate individual messages
between otherwise healthy nodes.

Accounting lives on a per-network :class:`~repro.obs.metrics.MetricsRegistry`
(``net.*`` counters); :attr:`Network.stats` stays the stable dataclass
API, rebuilt from the registry on read.  When an ambient
:class:`~repro.obs.recorder.Recorder` is live, sends and drops are also
mirrored to it so traces carry network cost alongside everything else.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Set

from repro.common.ids import EntityId
from repro.common.randomness import RngLike, make_rng
from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import get_recorder

#: Drop reasons used by :meth:`Network.send`.
SENDER_FAILED = "sender-failed"
RECEIVER_FAILED = "receiver-failed"
FAULT_INJECTED = "fault-injected"


@dataclass(frozen=True)
class DeliveryOutcome:
    """What happened to one message.

    Truthy exactly when the message was delivered, so call sites read
    ``if not outcome: ...`` for the failure path.

    Attributes:
        delivered: whether the receiver got the message.
        latency: delivery latency; None when dropped.
        reason: drop reason (one of :data:`SENDER_FAILED`,
            :data:`RECEIVER_FAILED`, :data:`FAULT_INJECTED`); None when
            delivered.
        duplicates: extra fault-injected copies the receiver also got.
    """

    delivered: bool
    latency: Optional[float] = None
    reason: Optional[str] = None
    duplicates: int = 0

    def __bool__(self) -> bool:
        return self.delivered


@dataclass
class MessageStats:
    """Aggregated traffic statistics.

    ``universe`` is the number of nodes the network knows about
    (senders, receivers, and failed nodes) — nodes that received zero
    messages never appear in ``received_by``, so imbalance math needs
    the universe size to avoid averaging over active receivers only.
    """

    total_messages: int = 0
    total_bytes: int = 0
    dropped: int = 0
    duplicated: int = 0
    by_kind: Counter = field(default_factory=Counter)
    sent_by: Counter = field(default_factory=Counter)
    received_by: Counter = field(default_factory=Counter)
    drops_by_reason: Counter = field(default_factory=Counter)
    universe: Optional[int] = None

    @property
    def delivered(self) -> int:
        """Messages that reached their receiver (excluding duplicates)."""
        return self.total_messages - self.dropped

    def drop_rate(self) -> float:
        """Fraction of sent messages that were not delivered."""
        if self.total_messages == 0:
            return 0.0
        return self.dropped / self.total_messages

    def load_imbalance(self) -> float:
        """Max/mean ratio of per-node received messages (1.0 = balanced).

        A centralized registry shows imbalance ~N (everything lands on one
        node); a well-balanced DHT stays near 1.  The mean is taken over
        ``max(universe, len(received_by))`` nodes: silent nodes count as
        zero receivers, otherwise a hub-and-spokes topology where the
        spokes never receive looks perfectly balanced.
        """
        if not self.received_by:
            return 1.0
        loads = list(self.received_by.values())
        nodes = len(loads)
        if self.universe is not None and self.universe > nodes:
            nodes = self.universe
        mean = sum(loads) / nodes
        if mean <= 0:
            return 1.0
        return max(loads) / mean


class Network:
    """Logical message fabric with per-node failure, latency, and faults.

    Components call :meth:`send` for every logical message; the network
    records it and returns a :class:`DeliveryOutcome`.  Latency is
    ``base_latency`` plus an exponential jitter term plus any
    fault-injected delay.

    Attributes:
        faults: optional message fault injector (anything with a
            ``perturb(kind) -> MessagePerturbation`` method, normally a
            :class:`~repro.faults.plan.MessageFaultInjector`) consulted
            for every message between healthy nodes.
        metrics: per-network registry backing the ``net.*`` counters;
            :attr:`stats` is a read-side view of it.
    """

    def __init__(
        self,
        base_latency: float = 0.01,
        jitter: float = 0.005,
        rng: RngLike = None,
        faults=None,
    ) -> None:
        if base_latency < 0 or jitter < 0:
            raise ValueError("latency parameters must be non-negative")
        self._base_latency = base_latency
        self._jitter = jitter
        self._rng = make_rng(rng)
        self._failed: Set[EntityId] = set()
        self.faults = faults
        self.metrics = MetricsRegistry()
        self._known: Set[EntityId] = set()
        self._sent = self.metrics.counter(
            "net.messages.sent", "messages sent", labels=("kind",)
        )
        self._bytes = self.metrics.counter("net.bytes.sent", "bytes sent")
        self._dropped = self.metrics.counter(
            "net.messages.dropped", "messages dropped", labels=("reason",)
        )
        self._duplicated = self.metrics.counter(
            "net.messages.duplicated", "fault-injected duplicate deliveries"
        )
        self._sent_by = self.metrics.counter(
            "net.sent_by", "messages sent per node", labels=("node",)
        )
        self._received_by = self.metrics.counter(
            "net.received_by", "messages received per node", labels=("node",)
        )
        self._known_by = self.metrics.counter(
            "net.known_by", "node-universe marker series", labels=("node",)
        )

    def _note(self, node: EntityId) -> None:
        """First sight of *node*: a zero-valued ``net.known_by`` series.

        The zero series survives :meth:`MetricsRegistry.snapshot` and
        counter-sum merges, so the node universe — and with it
        :meth:`MessageStats.load_imbalance` — reconstructs correctly
        from merged per-shard registries: a shard whose nodes never
        received anything still widens the mean's denominator.
        """
        if node not in self._known:
            self._known.add(node)
            self._known_by.inc(0, labels=(str(node),))

    def register_node(self, node: EntityId) -> None:
        """Declare *node* part of the topology before any traffic.

        Imbalance math averages over the known-node universe; silent
        nodes that are never an endpoint must be registered explicitly
        or they would not count.
        """
        self._note(node)

    def fail_node(self, node: EntityId) -> None:
        """Mark *node* as unreachable (fault injection)."""
        self._failed.add(node)
        self._note(node)

    def heal_node(self, node: EntityId) -> None:
        self._failed.discard(node)

    def is_failed(self, node: EntityId) -> bool:
        return node in self._failed

    def failed_nodes(self) -> Set[EntityId]:
        return set(self._failed)

    def _drop(self, kind: str, reason: str) -> DeliveryOutcome:
        self._dropped.inc(1, labels=(reason,))
        rec = get_recorder()
        if rec.enabled:
            rec.count(
                "net.messages.dropped",
                labels=(reason,),
                label_names=("reason",),
            )
        return DeliveryOutcome(delivered=False, reason=reason)

    def send(
        self,
        sender: EntityId,
        receiver: EntityId,
        kind: str = "message",
        size: int = 1,
    ) -> DeliveryOutcome:
        """Record one logical message and return its delivery outcome.

        Messages to failed nodes still count as *sent* (the sender paid
        for them) but are dropped; the outcome says which end failed.
        Fault-injected drops, delays, and duplications apply only
        between healthy nodes.
        """
        self._sent.inc(1, labels=(kind,))
        self._bytes.inc(size)
        self._sent_by.inc(1, labels=(str(sender),))
        self._note(sender)
        self._note(receiver)
        rec = get_recorder()
        if rec.enabled:
            rec.count(
                "net.messages.sent", labels=(kind,), label_names=("kind",)
            )
        if sender in self._failed:
            return self._drop(kind, SENDER_FAILED)
        if receiver in self._failed:
            return self._drop(kind, RECEIVER_FAILED)
        extra_delay = 0.0
        duplicates = 0
        if self.faults is not None:
            perturbation = self.faults.perturb(kind)
            if perturbation.drop:
                return self._drop(kind, FAULT_INJECTED)
            extra_delay = perturbation.extra_delay
            duplicates = perturbation.duplicates
        self._received_by.inc(1 + duplicates, labels=(str(receiver),))
        if duplicates:
            self._duplicated.inc(duplicates)
        latency = self._base_latency + extra_delay
        if self._jitter > 0:
            latency += float(self._rng.exponential(self._jitter))
        return DeliveryOutcome(
            delivered=True, latency=latency, duplicates=duplicates
        )

    def record_traffic(
        self,
        sender: EntityId,
        receiver: EntityId,
        kind: str = "message",
        messages: int = 1,
        size: int = 0,
    ) -> None:
        """Account *messages* delivered messages in one call.

        Pure bulk accounting — no latency draw, no failure check, no
        fault injection — for exchanges that move many logical messages
        at once (shard epoch barriers), where a per-message
        :meth:`send` loop would dominate the work being measured.
        """
        if messages < 0:
            raise ValueError("messages must be non-negative")
        self._note(sender)
        self._note(receiver)
        if not messages:
            return
        self._sent.inc(messages, labels=(kind,))
        if size:
            self._bytes.inc(size)
        self._sent_by.inc(messages, labels=(str(sender),))
        self._received_by.inc(messages, labels=(str(receiver),))
        rec = get_recorder()
        if rec.enabled:
            rec.count(
                "net.messages.sent",
                amount=messages,
                labels=(kind,),
                label_names=("kind",),
            )

    @property
    def stats(self) -> MessageStats:
        """The classic dataclass view, rebuilt from the registry."""
        dropped_by_reason = Counter(
            {key[0]: int(value) for key, value in self._dropped.items()}
        )
        return MessageStats(
            total_messages=int(self._sent.total()),
            total_bytes=int(self._bytes.total()),
            dropped=int(self._dropped.total()),
            duplicated=int(self._duplicated.total()),
            by_kind=Counter(
                {key[0]: int(value) for key, value in self._sent.items()}
            ),
            sent_by=Counter(
                {key[0]: int(value) for key, value in self._sent_by.items()}
            ),
            received_by=Counter(
                {
                    key[0]: int(value)
                    for key, value in self._received_by.items()
                }
            ),
            drops_by_reason=dropped_by_reason,
            universe=len(self._known),
        )

    def known_nodes(self) -> Set[EntityId]:
        """Every node this network has seen (incl. silent receivers-to-be)."""
        return set(self._known)

    def reset_stats(self) -> None:
        self.metrics.reset()
        self._known = set()
        for node in sorted(self._failed, key=str):
            self._note(node)


def per_node_load(stats: MessageStats) -> Dict[EntityId, int]:
    """Received-message load per node (convenience for experiment output)."""
    loads: Dict[EntityId, int] = defaultdict(int)
    for node, count in stats.received_by.items():
        loads[node] = count
    return dict(loads)


def stats_from_snapshot(snapshot: Mapping) -> MessageStats:
    """Rebuild :class:`MessageStats` from a ``net.*`` registry snapshot.

    Accepts one network's :meth:`MetricsRegistry.snapshot` or the
    :meth:`MetricsRegistry.merge_snapshots` of several (the per-shard
    case).  Counters sum across registries by construction; the node
    universe is recovered from the ``net.known_by`` marker series, so a
    shard whose nodes were registered but never received a message
    still counts in :meth:`MessageStats.load_imbalance` — merging used
    to lose each network's in-memory known set, which made a merged
    hub-and-spokes topology look perfectly balanced.
    """

    def series(name: str):
        entry = snapshot.get(name)
        return entry["series"] if entry else []

    def label_counter(name: str) -> Counter:
        return Counter(
            {key[0]: int(value) for key, value in series(name)}
        )

    def total(name: str) -> int:
        return int(sum(value for _key, value in series(name)))

    sent_by = label_counter("net.sent_by")
    received_by = label_counter("net.received_by")
    known = {key[0] for key, _value in series("net.known_by")}
    known |= set(sent_by) | set(received_by)
    return MessageStats(
        total_messages=total("net.messages.sent"),
        total_bytes=total("net.bytes.sent"),
        dropped=total("net.messages.dropped"),
        duplicated=total("net.messages.duplicated"),
        by_kind=label_counter("net.messages.sent"),
        sent_by=sent_by,
        received_by=received_by,
        drops_by_reason=label_counter("net.messages.dropped"),
        universe=len(known) if known else None,
    )
