"""Network model: message accounting, latency, and fault injection.

The survey's comparative claims about centralized vs. decentralized
mechanisms are about *cost* — messages exchanged, load concentration,
single points of failure.  :class:`Network` provides exactly that: every
component sends logical messages through it, and experiments read the
aggregated statistics afterwards.

Delivery is *observable*: :meth:`Network.send` returns a typed
:class:`DeliveryOutcome` rather than a bare latency, so callers can
distinguish a delivered message (and its latency) from a drop and its
reason, and :class:`MessageStats` accounts drops per reason.  A
:class:`~repro.faults.plan.MessageFaultInjector` can be installed on
:attr:`Network.faults` to drop, delay, or duplicate individual messages
between otherwise healthy nodes.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from repro.common.ids import EntityId
from repro.common.randomness import RngLike, make_rng

#: Drop reasons used by :meth:`Network.send`.
SENDER_FAILED = "sender-failed"
RECEIVER_FAILED = "receiver-failed"
FAULT_INJECTED = "fault-injected"


@dataclass(frozen=True)
class DeliveryOutcome:
    """What happened to one message.

    Truthy exactly when the message was delivered, so call sites read
    ``if not outcome: ...`` for the failure path.

    Attributes:
        delivered: whether the receiver got the message.
        latency: delivery latency; None when dropped.
        reason: drop reason (one of :data:`SENDER_FAILED`,
            :data:`RECEIVER_FAILED`, :data:`FAULT_INJECTED`); None when
            delivered.
        duplicates: extra fault-injected copies the receiver also got.
    """

    delivered: bool
    latency: Optional[float] = None
    reason: Optional[str] = None
    duplicates: int = 0

    def __bool__(self) -> bool:
        return self.delivered


@dataclass
class MessageStats:
    """Aggregated traffic statistics."""

    total_messages: int = 0
    total_bytes: int = 0
    dropped: int = 0
    duplicated: int = 0
    by_kind: Counter = field(default_factory=Counter)
    sent_by: Counter = field(default_factory=Counter)
    received_by: Counter = field(default_factory=Counter)
    drops_by_reason: Counter = field(default_factory=Counter)

    @property
    def delivered(self) -> int:
        """Messages that reached their receiver (excluding duplicates)."""
        return self.total_messages - self.dropped

    def drop_rate(self) -> float:
        """Fraction of sent messages that were not delivered."""
        if self.total_messages == 0:
            return 0.0
        return self.dropped / self.total_messages

    def load_imbalance(self) -> float:
        """Max/mean ratio of per-node received messages (1.0 = balanced).

        A centralized registry shows imbalance ~N (everything lands on one
        node); a well-balanced DHT stays near 1.
        """
        if not self.received_by:
            return 1.0
        loads = list(self.received_by.values())
        mean = sum(loads) / len(loads)
        if mean <= 0:
            return 1.0
        return max(loads) / mean


class Network:
    """Logical message fabric with per-node failure, latency, and faults.

    Components call :meth:`send` for every logical message; the network
    records it and returns a :class:`DeliveryOutcome`.  Latency is
    ``base_latency`` plus an exponential jitter term plus any
    fault-injected delay.

    Attributes:
        faults: optional message fault injector (anything with a
            ``perturb(kind) -> MessagePerturbation`` method, normally a
            :class:`~repro.faults.plan.MessageFaultInjector`) consulted
            for every message between healthy nodes.
    """

    def __init__(
        self,
        base_latency: float = 0.01,
        jitter: float = 0.005,
        rng: RngLike = None,
        faults=None,
    ) -> None:
        if base_latency < 0 or jitter < 0:
            raise ValueError("latency parameters must be non-negative")
        self._base_latency = base_latency
        self._jitter = jitter
        self._rng = make_rng(rng)
        self._failed: Set[EntityId] = set()
        self.faults = faults
        self.stats = MessageStats()

    def fail_node(self, node: EntityId) -> None:
        """Mark *node* as unreachable (fault injection)."""
        self._failed.add(node)

    def heal_node(self, node: EntityId) -> None:
        self._failed.discard(node)

    def is_failed(self, node: EntityId) -> bool:
        return node in self._failed

    def failed_nodes(self) -> Set[EntityId]:
        return set(self._failed)

    def _drop(self, kind: str, reason: str) -> DeliveryOutcome:
        self.stats.dropped += 1
        self.stats.drops_by_reason[reason] += 1
        return DeliveryOutcome(delivered=False, reason=reason)

    def send(
        self,
        sender: EntityId,
        receiver: EntityId,
        kind: str = "message",
        size: int = 1,
    ) -> DeliveryOutcome:
        """Record one logical message and return its delivery outcome.

        Messages to failed nodes still count as *sent* (the sender paid
        for them) but are dropped; the outcome says which end failed.
        Fault-injected drops, delays, and duplications apply only
        between healthy nodes.
        """
        self.stats.total_messages += 1
        self.stats.total_bytes += size
        self.stats.by_kind[kind] += 1
        self.stats.sent_by[sender] += 1
        if sender in self._failed:
            return self._drop(kind, SENDER_FAILED)
        if receiver in self._failed:
            return self._drop(kind, RECEIVER_FAILED)
        extra_delay = 0.0
        duplicates = 0
        if self.faults is not None:
            perturbation = self.faults.perturb(kind)
            if perturbation.drop:
                return self._drop(kind, FAULT_INJECTED)
            extra_delay = perturbation.extra_delay
            duplicates = perturbation.duplicates
        self.stats.received_by[receiver] += 1 + duplicates
        if duplicates:
            self.stats.duplicated += duplicates
        latency = self._base_latency + extra_delay
        if self._jitter > 0:
            latency += float(self._rng.exponential(self._jitter))
        return DeliveryOutcome(
            delivered=True, latency=latency, duplicates=duplicates
        )

    def reset_stats(self) -> None:
        self.stats = MessageStats()


def per_node_load(stats: MessageStats) -> Dict[EntityId, int]:
    """Received-message load per node (convenience for experiment output)."""
    loads: Dict[EntityId, int] = defaultdict(int)
    for node, count in stats.received_by.items():
        loads[node] = count
    return dict(loads)
