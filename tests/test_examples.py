"""Smoke tests: every example script runs and prints its story.

Examples are user-facing deliverables; these tests keep them green as
the library evolves.
"""

import io
import runpy
import sys
from contextlib import redirect_stdout
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


def run_example(path: Path) -> str:
    buffer = io.StringIO()
    argv = sys.argv
    sys.argv = [str(path)]
    try:
        with redirect_stdout(buffer):
            runpy.run_path(str(path), run_name="__main__")
    finally:
        sys.argv = argv
    return buffer.getvalue()


@pytest.mark.parametrize(
    "path", EXAMPLES, ids=[p.stem for p in EXAMPLES]
)
def test_example_runs(path):
    output = run_example(path)
    assert len(output) > 100  # it told its story


def test_examples_exist():
    names = {p.stem for p in EXAMPLES}
    assert {
        "quickstart", "travel_booking", "unfair_ratings",
        "p2p_marketplace", "autonomic_selection",
    } <= names


def test_quickstart_reports_all_mechanisms():
    path = next(p for p in EXAMPLES if p.stem == "quickstart")
    output = run_example(path)
    for name in ["beta", "ebay", "peertrust"]:
        assert f"mechanism: {name}" in output


def test_travel_booking_separates_sites():
    path = next(p for p in EXAMPLES if p.stem == "travel_booking")
    output = run_example(path)
    assert "first-class-air" in output
    assert "selection accuracy" in output
