"""Tests for workload generation."""

import pytest

from repro.experiments.workloads import make_consumers, make_world
from repro.common.randomness import SeedSequenceFactory
from repro.services.provider import OscillatingBehavior
from repro.services.qos import DEFAULT_METRICS


class TestMakeWorld:
    def test_deterministic(self):
        a = make_world(seed=3)
        b = make_world(seed=3)
        assert a.true_quality == b.true_quality
        assert [c.consumer_id for c in a.consumers] == [
            c.consumer_id for c in b.consumers
        ]

    def test_different_seeds_differ(self):
        assert make_world(seed=1).true_quality != make_world(seed=2).true_quality

    def test_population_sizes(self):
        world = make_world(n_providers=3, services_per_provider=2,
                           n_consumers=7, seed=0)
        assert len(world.providers) == 3
        assert len(world.services) == 6
        assert len(world.consumers) == 7

    def test_quality_spread_orders_providers(self):
        world = make_world(n_providers=5, services_per_provider=1,
                           quality_spread=0.3, seed=0)
        tendencies = [p.quality_tendency for p in world.providers]
        assert tendencies == sorted(tendencies)
        assert max(tendencies) - min(tendencies) > 0.4

    def test_exaggerations_cycle(self):
        world = make_world(n_providers=4, exaggerations=[0.0, 0.3], seed=0)
        inflations = [p.exaggeration.inflation for p in world.providers]
        assert inflations == [0.0, 0.3, 0.0, 0.3]

    def test_behaviors_applied_by_index(self):
        behavior = OscillatingBehavior()
        world = make_world(n_providers=2, services_per_provider=1,
                           behaviors={1: behavior}, seed=0)
        assert world.services[1].behavior is behavior
        assert world.services[0].behavior is not behavior

    def test_best_service_matches_truth(self):
        world = make_world(seed=4)
        best = world.best_service()
        assert world.true_quality[best] == max(world.true_quality.values())

    def test_service_lookup(self):
        world = make_world(seed=4)
        svc = world.services[0]
        assert world.service(svc.service_id) is svc
        with pytest.raises(KeyError):
            world.service("nope")


class TestMakeConsumers:
    def test_segments_round_robin(self):
        seeds = SeedSequenceFactory(0)
        consumers = make_consumers(6, DEFAULT_METRICS, seeds, n_segments=3)
        assert [c.segment for c in consumers] == [0, 1, 2, 0, 1, 2]

    def test_homogeneous_preferences(self):
        seeds = SeedSequenceFactory(0)
        consumers = make_consumers(4, DEFAULT_METRICS, seeds,
                                   preference_heterogeneity=0.0)
        weights = [tuple(sorted(c.preferences.weights.items()))
                   for c in consumers]
        assert len(set(weights)) == 1

    def test_heterogeneous_preferences(self):
        seeds = SeedSequenceFactory(0)
        consumers = make_consumers(4, DEFAULT_METRICS, seeds,
                                   preference_heterogeneity=1.0)
        weights = [tuple(sorted(c.preferences.weights.items()))
                   for c in consumers]
        assert len(set(weights)) == 4
