"""Tests for workload generation."""

import pytest

from repro.experiments.workloads import make_consumers, make_world
from repro.common.randomness import SeedSequenceFactory
from repro.services.provider import OscillatingBehavior
from repro.services.qos import DEFAULT_METRICS


class TestMakeWorld:
    def test_deterministic(self):
        a = make_world(seed=3)
        b = make_world(seed=3)
        assert a.true_quality == b.true_quality
        assert [c.consumer_id for c in a.consumers] == [
            c.consumer_id for c in b.consumers
        ]

    def test_different_seeds_differ(self):
        assert make_world(seed=1).true_quality != make_world(seed=2).true_quality

    def test_population_sizes(self):
        world = make_world(n_providers=3, services_per_provider=2,
                           n_consumers=7, seed=0)
        assert len(world.providers) == 3
        assert len(world.services) == 6
        assert len(world.consumers) == 7

    def test_quality_spread_orders_providers(self):
        world = make_world(n_providers=5, services_per_provider=1,
                           quality_spread=0.3, seed=0)
        tendencies = [p.quality_tendency for p in world.providers]
        assert tendencies == sorted(tendencies)
        assert max(tendencies) - min(tendencies) > 0.4

    def test_exaggerations_cycle(self):
        world = make_world(n_providers=4, exaggerations=[0.0, 0.3], seed=0)
        inflations = [p.exaggeration.inflation for p in world.providers]
        assert inflations == [0.0, 0.3, 0.0, 0.3]

    def test_behaviors_applied_by_index(self):
        behavior = OscillatingBehavior()
        world = make_world(n_providers=2, services_per_provider=1,
                           behaviors={1: behavior}, seed=0)
        assert world.services[1].behavior is behavior
        assert world.services[0].behavior is not behavior

    def test_best_service_matches_truth(self):
        world = make_world(seed=4)
        best = world.best_service()
        assert world.true_quality[best] == max(world.true_quality.values())

    def test_service_lookup(self):
        world = make_world(seed=4)
        svc = world.services[0]
        assert world.service(svc.service_id) is svc
        with pytest.raises(KeyError):
            world.service("nope")


class TestMakeConsumers:
    def test_segments_round_robin(self):
        seeds = SeedSequenceFactory(0)
        consumers = make_consumers(6, DEFAULT_METRICS, seeds, n_segments=3)
        assert [c.segment for c in consumers] == [0, 1, 2, 0, 1, 2]

    def test_homogeneous_preferences(self):
        seeds = SeedSequenceFactory(0)
        consumers = make_consumers(4, DEFAULT_METRICS, seeds,
                                   preference_heterogeneity=0.0)
        weights = [tuple(sorted(c.preferences.weights.items()))
                   for c in consumers]
        assert len(set(weights)) == 1

    def test_heterogeneous_preferences(self):
        seeds = SeedSequenceFactory(0)
        consumers = make_consumers(4, DEFAULT_METRICS, seeds,
                                   preference_heterogeneity=1.0)
        weights = [tuple(sorted(c.preferences.weights.items()))
                   for c in consumers]
        assert len(set(weights)) == 4


class TestShardWorlds:
    def test_subset_build_is_partition_invariant(self):
        from repro.experiments.workloads import (
            make_shard_world,
            shard_consumer_id,
        )

        full = make_shard_world(
            n_consumers=10, seed=3, preference_heterogeneity=0.5,
            n_segments=2,
        )
        subset = make_shard_world(
            n_consumers=10, seed=3, preference_heterogeneity=0.5,
            n_segments=2, consumer_indices=[2, 5, 9],
        )
        by_id = {c.consumer_id: c for c in full.consumers}
        assert [c.consumer_id for c in subset.consumers] == [
            shard_consumer_id(i) for i in (2, 5, 9)
        ]
        for consumer in subset.consumers:
            twin = by_id[consumer.consumer_id]
            assert consumer.preferences.weights == twin.preferences.weights
            assert consumer.segment == twin.segment
            # private rating streams too: identical draw sequences
            assert consumer._rng.random() == twin._rng.random()

    def test_catalog_identical_across_subsets(self):
        from repro.experiments.workloads import make_shard_world

        a = make_shard_world(n_consumers=6, seed=11, consumer_indices=[0])
        b = make_shard_world(n_consumers=6, seed=11, consumer_indices=[3, 4])
        assert [s.service_id for s in a.services] == [
            s.service_id for s in b.services
        ]
        assert a.true_quality == b.true_quality

    def test_out_of_range_indices_rejected(self):
        from repro.experiments.workloads import make_shard_consumers
        from repro.services.qos import DEFAULT_METRICS
        from repro.common.randomness import SeedSequenceFactory

        with pytest.raises(ValueError):
            make_shard_consumers(
                3, DEFAULT_METRICS, SeedSequenceFactory(0), indices=[3]
            )
