"""Tests for experiment metrics."""

import math

import pytest

from repro.experiments.metrics import (
    kendall_tau,
    ranking_quality,
    score_mae,
    spearman_rho,
    top_k_precision,
)


class TestScoreMae:
    def test_exact_match(self):
        assert score_mae({"a": 0.5}, {"a": 0.5}) == 0.0

    def test_mean_error(self):
        assert score_mae(
            {"a": 0.5, "b": 0.9}, {"a": 0.7, "b": 0.5}
        ) == pytest.approx(0.3)

    def test_only_intersection_compared(self):
        assert score_mae({"a": 0.5, "x": 0.0}, {"a": 0.5, "y": 1.0}) == 0.0

    def test_no_overlap_is_nan_not_perfect(self):
        # 0.0 would read as "perfect estimates"; no overlap is "no data".
        assert math.isnan(score_mae({"x": 0.0}, {"y": 1.0}))

    def test_empty(self):
        assert math.isnan(score_mae({}, {"a": 1.0}))

    def test_empty_override(self):
        assert score_mae({}, {"a": 1.0}, empty=0.0) == 0.0


class TestSpearman:
    def test_perfect_monotone(self):
        assert spearman_rho([1, 2, 3], [10, 20, 30]) == pytest.approx(1.0)

    def test_inverse(self):
        assert spearman_rho([1, 2, 3], [30, 20, 10]) == pytest.approx(-1.0)

    def test_nonlinear_monotone_still_one(self):
        assert spearman_rho([1, 2, 3], [1, 100, 10000]) == pytest.approx(1.0)

    def test_ties_averaged(self):
        rho = spearman_rho([1, 1, 2], [1, 2, 3])
        assert rho is not None and 0 < rho < 1

    def test_constant_is_none(self):
        assert spearman_rho([1, 1, 1], [1, 2, 3]) is None

    def test_too_short(self):
        assert spearman_rho([1], [2]) is None

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            spearman_rho([1, 2], [1])


class TestKendall:
    def test_perfect(self):
        assert kendall_tau([1, 2, 3], [4, 5, 6]) == pytest.approx(1.0)

    def test_inverse(self):
        assert kendall_tau([1, 2, 3], [6, 5, 4]) == pytest.approx(-1.0)

    def test_one_swap(self):
        assert kendall_tau([1, 2, 3], [2, 1, 3]) == pytest.approx(1 / 3)


class TestTopKPrecision:
    def test_correct_leader(self):
        assert top_k_precision({"a": 0.9, "b": 0.1},
                               {"a": 0.8, "b": 0.2}) == 1.0

    def test_wrong_leader(self):
        assert top_k_precision({"a": 0.1, "b": 0.9},
                               {"a": 0.8, "b": 0.2}) == 0.0

    def test_top2_partial_overlap(self):
        estimated = {"a": 0.9, "b": 0.8, "c": 0.1}
        truth = {"a": 0.9, "b": 0.1, "c": 0.8}
        assert top_k_precision(estimated, truth, k=2) == 0.5

    def test_k_larger_than_universe(self):
        assert top_k_precision({"a": 0.5}, {"a": 0.7}, k=5) == 1.0

    def test_empty(self):
        assert top_k_precision({}, {"a": 1.0}) == 0.0

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            top_k_precision({"a": 0.5}, {"a": 0.5}, k=0)


class TestRankingQuality:
    def test_bundle(self):
        out = ranking_quality(
            {"a": 0.1, "b": 0.5, "c": 0.9},
            {"a": 0.2, "b": 0.6, "c": 0.8},
        )
        assert out["spearman"] == pytest.approx(1.0)
        assert out["kendall"] == pytest.approx(1.0)
        assert out["mae"] == pytest.approx(0.1, abs=0.05)
        assert out["top1"] == 1.0
