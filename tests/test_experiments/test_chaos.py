"""Tests for the chaos experiment driver (small configs for speed)."""

from __future__ import annotations

import pytest

from repro.experiments.chaos import (
    CENTRAL_NAIVE,
    CENTRAL_RESILIENT,
    DEPLOYMENTS,
    PGRID,
    ChaosConfig,
    ChaosReport,
    build_fault_plan,
    run_chaos_comparison,
    run_chaos_deployment,
)
from repro.experiments.workloads import make_world

SMALL = ChaosConfig(
    seed=3,
    n_peers=8,
    n_providers=2,
    services_per_provider=2,
    rounds=12,
    registry_outages=((4.0, 8.0),),
    slow_window=(5.0, 7.0),
)


class TestChaosDeployment:
    def test_unknown_deployment_rejected(self):
        with pytest.raises(ValueError):
            run_chaos_deployment("mainframe", SMALL)

    def test_trace_covers_every_up_consumer_round(self):
        report = run_chaos_deployment(CENTRAL_NAIVE, SMALL)
        assert report.attempts == len(report.trace)
        assert report.attempts <= SMALL.rounds * SMALL.n_peers
        assert (
            report.fresh + report.degraded + report.unavailable
            == report.attempts
        )

    def test_deterministic_given_config(self):
        for name in DEPLOYMENTS:
            first = run_chaos_deployment(name, SMALL)
            second = run_chaos_deployment(name, SMALL)
            assert first.trace == second.trace
            assert first.messages == second.messages
            assert first.breaker_transitions == second.breaker_transitions

    def test_seed_changes_trace(self):
        base = run_chaos_deployment(CENTRAL_NAIVE, SMALL)
        other = run_chaos_deployment(
            CENTRAL_NAIVE, ChaosConfig(**{**SMALL.__dict__, "seed": 4})
        )
        assert base.trace != other.trace

    def test_naive_unavailable_during_outage(self):
        report = run_chaos_deployment(CENTRAL_NAIVE, SMALL)
        assert report.outage_attempts > 0
        assert report.outage_fresh == 0
        assert report.outage_unavailable == report.outage_attempts

    def test_resilient_serves_degraded_during_outage(self):
        report = run_chaos_deployment(CENTRAL_RESILIENT, SMALL)
        assert report.outage_degraded > 0
        assert report.outage_unavailable == 0

    def test_comparison_runs_all_deployments(self):
        reports = run_chaos_comparison(SMALL)
        assert set(reports) == set(DEPLOYMENTS)
        assert all(isinstance(r, ChaosReport) for r in reports.values())

    def test_parallel_comparison_equals_serial(self):
        # Churn conditions fanned across processes must reproduce the
        # serial reports exactly — traces, message counts, breaker
        # histories and all.
        serial = run_chaos_comparison(SMALL, max_workers=1)
        pooled = run_chaos_comparison(SMALL, max_workers=3)
        assert set(serial) == set(pooled)
        for name in serial:
            assert pooled[name].trace == serial[name].trace
            assert pooled[name].regrets == serial[name].regrets
            assert pooled[name].messages == serial[name].messages
            assert (
                pooled[name].breaker_transitions
                == serial[name].breaker_transitions
            )

    def test_report_rate_properties(self):
        empty = ChaosReport(name="empty")
        assert empty.availability == 0.0
        assert empty.outage_availability == 1.0  # no outage attempts
        assert empty.mean_regret == 0.0


class TestBuildFaultPlan:
    def test_plan_schedules_registry_and_slow_service(self):
        world = make_world(
            n_providers=2, services_per_provider=2, n_consumers=4, seed=3
        )
        nodes = [c.consumer_id for c in world.consumers]
        plan = build_fault_plan(SMALL, nodes, world)
        assert plan.registry_down(SMALL.registry_id, 5.0)
        assert not plan.registry_down(SMALL.registry_id, 9.0)
        assert plan.slowdown(world.best_service(), 6.0) == SMALL.slowdown_factor

    def test_plan_is_seed_deterministic(self):
        world_a = make_world(
            n_providers=2, services_per_provider=2, n_consumers=4, seed=3
        )
        world_b = make_world(
            n_providers=2, services_per_provider=2, n_consumers=4, seed=3
        )
        nodes = [c.consumer_id for c in world_a.consumers]
        plan_a = build_fault_plan(SMALL, nodes, world_a)
        plan_b = build_fault_plan(SMALL, nodes, world_b)
        assert plan_a.churn == plan_b.churn

    def test_zero_drop_rate_installs_no_injector(self):
        config = ChaosConfig(**{**SMALL.__dict__, "drop_rate": 0.0})
        world = make_world(
            n_providers=2, services_per_provider=2, n_consumers=4, seed=3
        )
        plan = build_fault_plan(
            config, [c.consumer_id for c in world.consumers], world
        )
        assert plan.message_faults is None
