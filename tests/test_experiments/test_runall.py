"""Tests for the experiment runner module."""

from pathlib import Path
from unittest import mock

from repro.experiments.runall import (
    EXPERIMENTS,
    TRACE_ENV,
    benchmark_dir,
    main,
)


class TestRunall:
    def test_every_experiment_file_exists(self):
        bench = benchmark_dir()
        for exp_id, filename in EXPERIMENTS.items():
            assert (bench / filename).is_file(), exp_id

    def test_map_covers_every_claim_and_figure_file_on_disk(self):
        # Every benchmarks/test_claim_*.py / test_fig*.py must be
        # reachable through an experiment id — C14 went missing once.
        bench = benchmark_dir()
        on_disk = {p.name for p in bench.glob("test_claim_*.py")}
        on_disk |= {p.name for p in bench.glob("test_fig*.py")}
        missing = sorted(on_disk - set(EXPERIMENTS.values()))
        assert not missing, f"benchmark files without an id: {missing}"

    def test_c14_registered(self):
        assert EXPERIMENTS["C14"] == "test_claim_availability_churn.py"

    def test_unknown_id_rejected(self):
        assert main(["NOPE"]) == 2

    def test_benchmark_dir_found_and_cached(self):
        first = benchmark_dir()
        assert isinstance(first, Path)
        assert benchmark_dir() is first  # lru_cache returns the object

    def test_serial_dispatch_single_invocation(self):
        with mock.patch("subprocess.call", return_value=0) as call:
            assert main(["F1", "C5", "--jobs", "1"]) == 0
        assert call.call_count == 1
        targets = call.call_args[0][0]
        assert sum(1 for part in targets if part.endswith(".py")) == 2

    def test_parallel_dispatch_returns_max_exit_code(self):
        # One child per experiment; a single failure must surface even
        # when a later child succeeds.
        def fake_call(cmd, env=None):
            # Only the C5 child fails — thread-safe by construction.
            return 3 if any("unfair_ratings" in part for part in cmd) else 0

        with mock.patch("subprocess.call", side_effect=fake_call) as call:
            assert main(["F1", "C5", "C6", "--jobs", "2"]) == 3
        assert call.call_count == 3
        for args, _ in call.call_args_list:
            assert sum(1 for p in args[0] if p.endswith(".py")) == 1

    def test_jobs_env_drives_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "2")
        with mock.patch("subprocess.call", return_value=0) as call:
            assert main(["F1", "C5"]) == 0
        assert call.call_count == 2

    def test_trace_flag_sets_env_and_creates_dir(self, tmp_path):
        trace_dir = tmp_path / "traces"
        with mock.patch("subprocess.call", return_value=0) as call:
            assert main(["F2", "--trace", str(trace_dir)]) == 0
        assert trace_dir.is_dir()
        env = call.call_args.kwargs["env"]
        assert env[TRACE_ENV] == str(trace_dir)

    def test_trace_env_reaches_parallel_children(self, tmp_path):
        seen = []

        def fake_call(cmd, env=None):
            seen.append(env)
            return 0

        with mock.patch("subprocess.call", side_effect=fake_call):
            assert main(
                ["F1", "C5", "--jobs", "2", "--trace", str(tmp_path / "t")]
            ) == 0
        assert len(seen) == 2
        assert all(env[TRACE_ENV] == str(tmp_path / "t") for env in seen)

    def test_no_trace_means_inherited_env(self):
        with mock.patch("subprocess.call", return_value=0) as call:
            assert main(["F1", "--jobs", "1"]) == 0
        assert call.call_args.kwargs["env"] is None
