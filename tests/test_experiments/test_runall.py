"""Tests for the experiment runner module."""

from pathlib import Path

from repro.experiments.runall import EXPERIMENTS, benchmark_dir, main


class TestRunall:
    def test_every_experiment_file_exists(self):
        bench = benchmark_dir()
        for exp_id, filename in EXPERIMENTS.items():
            assert (bench / filename).is_file(), exp_id

    def test_unknown_id_rejected(self):
        assert main(["NOPE"]) == 2

    def test_benchmark_dir_found(self):
        assert isinstance(benchmark_dir(), Path)
