"""Shard-count invariance: 1 shard == 2 shards == 8 shards, byte for byte.

The sharded runner's headline contract — partitioning one world over N
processes must be invisible in every canonical output: the merged
:class:`~repro.store.EventStore`'s ``canonical_bytes()``, the scenario
result, the final score table, the telemetry metrics, and the exported
trace JSONL (compared by sha256, the way CI baselines compare them).
"""

from __future__ import annotations

import hashlib
import io

import pytest

from repro.common.errors import ConfigurationError
from repro.experiments.sharded import (
    PROCESS,
    SERIAL,
    ShardRuntime,
    ShardedRunSpec,
    register_shard_world_builder,
    run_sharded_experiment,
    shard_of,
)
from repro.experiments.workloads import (
    make_shard_world,
    shard_consumer_id,
)
from repro.obs.trace import write_jsonl
from repro.p2p.pgrid import shard_path

SMALL_WORLD = dict(n_providers=3, services_per_provider=2, n_consumers=11)


def _spec(seed: int, **overrides) -> ShardedRunSpec:
    params = dict(
        model="beta",
        seed=seed,
        epochs=2,
        rounds_per_epoch=2,
        world_params=SMALL_WORLD,
        telemetry=True,
    )
    params.update(overrides)
    return ShardedRunSpec(**params)


def trace_sha256(report) -> str:
    buffer = io.StringIO()
    write_jsonl(report.telemetry, buffer)
    return hashlib.sha256(buffer.getvalue().encode("utf-8")).hexdigest()


class TestShardCountInvariance:
    def test_one_two_eight_shards_byte_identical(self, global_random_seed):
        spec = _spec(global_random_seed)
        reports = {
            n: run_sharded_experiment(spec, shards=n, mode=SERIAL)
            for n in (1, 2, 8)
        }
        base = reports[1]
        base_bytes = base.canonical_bytes()
        base_trace = trace_sha256(base)
        for n in (2, 8):
            report = reports[n]
            assert report.canonical_bytes() == base_bytes
            assert report.result == base.result
            assert report.final_scores == base.final_scores
            assert report.telemetry.metrics == base.telemetry.metrics
            assert trace_sha256(report) == base_trace

    def test_partition_covers_and_is_disjoint(self, global_random_seed):
        n_consumers = 40
        shards = 4
        owners = [
            shard_of(shard_consumer_id(i), shards)
            for i in range(n_consumers)
        ]
        assert all(0 <= s < shards for s in owners)
        runtime_owned = [
            ShardRuntime(
                _spec(
                    global_random_seed,
                    world_params=dict(SMALL_WORLD, n_consumers=n_consumers),
                ),
                s,
                shards,
            ).owned
            for s in range(shards)
        ]
        flat = sorted(i for owned in runtime_owned for i in owned)
        assert flat == list(range(n_consumers))

    def test_shard_of_matches_pgrid_prefix(self):
        for entity in ("consumer-0000003", "svc-0001", "provider-0002"):
            for depth in (1, 2, 3):
                assert shard_of(entity, 2 ** depth) == int(
                    shard_path(entity, depth), 2
                )


class TestProcessMode:
    def test_process_pool_matches_serial(self):
        spec = _spec(17)
        serial = run_sharded_experiment(spec, shards=2, mode=SERIAL)
        pooled = run_sharded_experiment(spec, shards=2)
        assert pooled.dispatch.mode == PROCESS
        assert serial.dispatch.mode == SERIAL
        assert pooled.canonical_bytes() == serial.canonical_bytes()
        assert pooled.result == serial.result
        assert pooled.telemetry.metrics == serial.telemetry.metrics
        assert (
            pooled.dispatch.consumers_per_shard
            == serial.dispatch.consumers_per_shard
        )
        assert (
            pooled.dispatch.rows_per_shard == serial.dispatch.rows_per_shard
        )

    def test_unpicklable_builder_falls_back_to_serial(self):
        register_shard_world_builder(
            "lambda-shard-world",  # reprolint only scans src/repro
            lambda seed, consumer_indices=None, **params: make_shard_world(
                seed=seed, consumer_indices=consumer_indices, **params
            ),
            overwrite=True,
        )
        spec = _spec(5, world="lambda-shard-world")
        report = run_sharded_experiment(spec, shards=2)
        assert report.dispatch.mode == SERIAL
        named = run_sharded_experiment(_spec(5), shards=2, mode=SERIAL)
        assert report.canonical_bytes() == named.canonical_bytes()
        assert report.result == named.result

    def test_forced_process_mode_rejects_unpicklable(self):
        register_shard_world_builder(
            "lambda-shard-world-2",
            lambda seed, consumer_indices=None, **params: make_shard_world(
                seed=seed, consumer_indices=consumer_indices, **params
            ),
            overwrite=True,
        )
        with pytest.raises(ConfigurationError):
            run_sharded_experiment(
                _spec(5, world="lambda-shard-world-2"),
                shards=2,
                mode=PROCESS,
            )


class TestDispatchAccounting:
    def test_silent_shards_count_in_load_imbalance(self):
        # 1 consumer over 4 shards: three shards never receive a
        # feedback row, yet the merged universe must still average over
        # all four (satellite: silent shards are not dropped).
        spec = _spec(3, world_params=dict(SMALL_WORLD, n_consumers=1))
        report = run_sharded_experiment(spec, shards=4, mode=SERIAL)
        stats = report.dispatch.feedback_stats
        assert stats.universe is not None and stats.universe >= 4
        assert report.dispatch.load_imbalance >= 3.9

    def test_cross_shard_rows_and_fig2_rows(self):
        spec = _spec(11)
        report = run_sharded_experiment(spec, shards=4, mode=SERIAL)
        total_rows = spec.total_rounds * spec.n_consumers
        assert sum(report.dispatch.rows_per_shard) == total_rows
        assert 0 <= report.dispatch.cross_shard_rows <= total_rows
        fig2 = {row["activity"]: row for row in report.dispatch.fig2}
        assert fig2["feedback"]["feedback"] == total_rows

    def test_single_shard_has_no_cross_traffic(self):
        report = run_sharded_experiment(_spec(2), shards=1, mode=SERIAL)
        assert report.dispatch.cross_shard_rows == 0
        assert report.dispatch.load_imbalance == pytest.approx(1.0)


class TestSpecValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            ShardedRunSpec(epochs=0)
        with pytest.raises(ConfigurationError):
            ShardedRunSpec(rounds_per_epoch=0)
        with pytest.raises(ConfigurationError):
            ShardedRunSpec(epsilon=1.5)
        with pytest.raises(ConfigurationError):
            run_sharded_experiment(ShardedRunSpec(), shards=0)
        with pytest.raises(ConfigurationError):
            run_sharded_experiment(ShardedRunSpec(), shards=1, mode="bogus")
        with pytest.raises(ConfigurationError):
            shard_of("x", 0)
