"""Tests for the shared experiment harness."""

import pytest

from repro.experiments.harness import run_selection_experiment
from repro.experiments.workloads import make_world
from repro.models.beta import BetaReputation
from repro.robustness.attacks import AttackPlan, badmouth_strategy


class TestRunSelectionExperiment:
    def test_basic_outcome_shape(self):
        world = make_world(n_providers=4, services_per_provider=1,
                           n_consumers=6, seed=9, quality_spread=0.3)
        outcome = run_selection_experiment(BetaReputation(), world,
                                           rounds=15)
        assert outcome.model_name == "beta"
        assert 0.0 <= outcome.accuracy <= 1.0
        assert outcome.mean_regret >= 0.0
        assert set(outcome.final_scores) == set(world.true_quality)
        assert outcome.ranking["spearman"] is not None

    def test_deterministic_given_seed(self):
        results = []
        for _ in range(2):
            world = make_world(n_providers=4, services_per_provider=1,
                               n_consumers=6, seed=9)
            outcome = run_selection_experiment(BetaReputation(), world,
                                               rounds=10)
            results.append((outcome.accuracy, outcome.mean_regret))
        assert results[0] == results[1]

    def test_learning_model_beats_no_evidence(self):
        world = make_world(n_providers=5, services_per_provider=1,
                           n_consumers=10, seed=9, quality_spread=0.35)
        outcome = run_selection_experiment(BetaReputation(), world,
                                           rounds=30)
        # A learning mechanism must do much better than the 1/5 chance
        # of random selection in its final rounds.
        assert outcome.tail_accuracy > 0.4

    def test_attack_changes_the_run(self):
        def fresh_world():
            return make_world(n_providers=4, services_per_provider=1,
                              n_consumers=10, seed=9, quality_spread=0.3)

        attack = AttackPlan(
            liar_fraction=0.6,
            strategy_factory=lambda: badmouth_strategy(),
        )
        honest = run_selection_experiment(BetaReputation(), fresh_world(),
                                          rounds=8)
        attacked = run_selection_experiment(BetaReputation(), fresh_world(),
                                            rounds=8, attack=attack)
        assert attacked.final_scores != honest.final_scores

    def test_attack_does_not_mutate_callers_world(self):
        # The attack applies to per-run copies: the caller's consumers
        # keep their honest strategies, so replications sharing a world
        # cannot compound the attack.
        from repro.services.consumer import honest_rating_strategy

        world = make_world(n_providers=4, services_per_provider=1,
                           n_consumers=10, seed=9)
        attack = AttackPlan(
            liar_fraction=0.4,
            strategy_factory=lambda: badmouth_strategy(),
        )
        run_selection_experiment(BetaReputation(), world, rounds=5,
                                 attack=attack)
        assert all(
            c.rating_strategy is honest_rating_strategy
            for c in world.consumers
        )
        # A second attacked replication on the same world starts from
        # an honest population again, exactly like the first.
        run_selection_experiment(BetaReputation(), world, rounds=5,
                                 attack=attack)
        assert all(
            c.rating_strategy is honest_rating_strategy
            for c in world.consumers
        )
