"""Unit tests for the Figure-2 activities drivers."""

import pytest

from repro.experiments.activities import (
    APPROACHES,
    ApproachReport,
    run_activities_comparison,
    run_advertised,
    run_feedback,
    run_sensors,
)
from repro.experiments.workloads import make_world


def small_world(seed=0, exaggeration=0.3):
    return make_world(
        n_providers=3, services_per_provider=1, n_consumers=5,
        seed=seed, exaggerations=[0.0, exaggeration], quality_spread=0.3,
    )


class TestApproachReports:
    def test_report_shape(self):
        report = run_feedback(small_world(), rounds=5)
        assert isinstance(report, ApproachReport)
        assert report.name == "feedback"
        assert 0.0 <= report.accuracy <= 1.0
        assert report.mean_regret >= 0.0
        assert report.total_cost == report.setup_cost + report.running_cost

    def test_advertised_has_no_cost(self):
        report = run_advertised(small_world(), rounds=5)
        assert report.total_cost == 0.0
        assert report.messages == 0

    def test_sensors_pay_per_service(self):
        report = run_sensors(small_world(), rounds=5)
        assert report.setup_cost == pytest.approx(3 * 10.0)  # 3 sensors
        assert report.running_cost > 0

    def test_feedback_messages_equal_selections(self):
        report = run_feedback(small_world(), rounds=5)
        assert report.messages == 5 * 5  # consumers x rounds

    def test_all_approaches_registered(self):
        assert set(APPROACHES) == {
            "advertised", "sla", "sensors", "central_monitor", "feedback",
        }


class TestComparison:
    def test_subset_selection(self):
        reports = run_activities_comparison(
            n_providers=3, services_per_provider=1, n_consumers=5,
            rounds=5, seed=0, approaches=["advertised", "feedback"],
        )
        assert [r.name for r in reports] == ["advertised", "feedback"]

    def test_deterministic(self):
        a = run_activities_comparison(rounds=5, seed=1,
                                      approaches=["feedback"])[0]
        b = run_activities_comparison(rounds=5, seed=1,
                                      approaches=["feedback"])[0]
        assert a.accuracy == b.accuracy
        assert a.mean_regret == b.mean_regret

    def test_worlds_identically_seeded_across_approaches(self):
        # Every approach must see the same providers/services.
        reports = run_activities_comparison(
            rounds=3, seed=2, approaches=["advertised", "sla"],
        )
        assert all(r.mean_regret >= 0 for r in reports)
