"""Tests for the deterministic process-pool experiment runtime.

The load-bearing property: ``parallel == serial``, exactly.  The
hypothesis suite replays the same spec list through a 4-worker pool,
the 1-worker fallback, and a bare sequential loop of
``run_selection_experiment`` calls, and requires score-level agreement
to 1e-12 (in fact the comparisons are exact) for a local model (beta)
and a graph model (eigentrust).
"""

from __future__ import annotations

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError, UnknownEntityError
from repro.common.randomness import SeedSequenceFactory
from repro.core.registry import default_registry
from repro.experiments.harness import run_selection_experiment
from repro.experiments.parallel import (
    PROCESS_POOL,
    SERIAL,
    AttackSpec,
    TrialSpec,
    group_sweep,
    jobs_from_env,
    parallel_map,
    register_world_builder,
    replication_specs,
    run_replications,
    run_sweep,
    run_trial,
    run_trials,
    sweep_specs,
    world_builder,
)
from repro.experiments.workloads import make_world

#: Small worlds keep the pooled hypothesis examples fast.
SMALL_WORLD = dict(n_providers=3, services_per_provider=1, n_consumers=5)


def _module_double(x):
    return 2 * x


def _lenient_builder(seed=0, _probe=None, **kwargs):
    """A builder that tolerates (and drops) an unpicklable probe param."""
    return make_world(seed=seed, **kwargs)


register_world_builder("lenient-test-world", _lenient_builder, overwrite=True)


def assert_outcomes_equal(lhs, rhs, tol: float = 1e-12) -> None:
    assert len(lhs) == len(rhs)
    for a, b in zip(lhs, rhs):
        assert a.model_name == b.model_name
        assert set(a.final_scores) == set(b.final_scores)
        for sid, score in a.final_scores.items():
            assert abs(score - b.final_scores[sid]) <= tol, sid
        assert a.result.regrets == pytest.approx(b.result.regrets, abs=tol)
        assert a.result.round_accuracy == b.result.round_accuracy
        assert a.result.selection_counts == b.result.selection_counts
        assert a.ranking == b.ranking


class TestTaskProtocol:
    def test_spec_and_result_are_picklable(self):
        spec = TrialSpec(
            model="beta",
            seed=123,
            rounds=4,
            world_params=dict(SMALL_WORLD),
            attack=AttackSpec("badmouth", liar_fraction=0.4),
        )
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        result = run_trial(spec)
        wire = pickle.loads(pickle.dumps(result))
        assert wire.spec == spec
        assert wire.outcome.final_scores == result.outcome.final_scores

    def test_run_trial_matches_manual_harness_call(self):
        spec = TrialSpec(
            model="beta", seed=77, rounds=5, world_params=dict(SMALL_WORLD)
        )
        result = run_trial(spec)
        world = make_world(seed=77, **SMALL_WORLD)
        model = default_registry(rng_seed=77).create("beta")
        manual = run_selection_experiment(model, world, rounds=5)
        assert_outcomes_equal([result.outcome], [manual])

    def test_unknown_model_and_world_rejected(self):
        with pytest.raises(UnknownEntityError):
            run_trial(TrialSpec(model="not-a-model", seed=0, rounds=1))
        with pytest.raises(UnknownEntityError):
            world_builder("not-a-world")
        with pytest.raises(UnknownEntityError):
            AttackSpec("not-an-attack").build()

    def test_world_builder_registration(self):
        def tiny(seed=0, **kwargs):
            return make_world(seed=seed, **{**SMALL_WORLD, **kwargs})

        register_world_builder("tiny-test-world", tiny, overwrite=True)
        spec = TrialSpec(
            model="beta", seed=5, rounds=3, world="tiny-test-world"
        )
        result = run_trial(spec)
        assert len(result.outcome.final_scores) == SMALL_WORLD["n_providers"]
        with pytest.raises(ConfigurationError):
            register_world_builder("tiny-test-world", tiny)


class TestDeterminism:
    """The parallel==serial contract, exact replay."""

    @settings(max_examples=4, deadline=None)
    @given(
        base_seed=st.integers(min_value=0, max_value=2 ** 16),
        replications=st.integers(min_value=2, max_value=4),
        model=st.sampled_from(["beta", "eigentrust"]),
    )
    def test_pool_equals_serial_equals_sequential(
        self, base_seed, replications, model
    ):
        pooled = run_replications(
            model,
            replications,
            base_seed=base_seed,
            rounds=4,
            world_params=SMALL_WORLD,
            max_workers=4,
        )
        serial = run_replications(
            model,
            replications,
            base_seed=base_seed,
            rounds=4,
            world_params=SMALL_WORLD,
            max_workers=1,
        )
        assert serial.mode == SERIAL
        assert pooled.mode == PROCESS_POOL
        # n bare sequential run_selection_experiment calls, no pool
        # layer involved at all.
        seeds = SeedSequenceFactory(base_seed)
        sequential = []
        for i in range(replications):
            seed = seeds.spawn(f"replication/{i}")
            world = make_world(seed=seed, **SMALL_WORLD)
            instance = default_registry(rng_seed=seed).create(model)
            sequential.append(
                run_selection_experiment(instance, world, rounds=4)
            )
        assert_outcomes_equal(pooled.outcomes, serial.outcomes)
        assert_outcomes_equal(serial.outcomes, sequential)

    def test_chunking_cannot_change_results(self):
        specs = replication_specs(
            "beta", 5, base_seed=11, rounds=3, world_params=SMALL_WORLD
        )
        fine = run_trials(specs, max_workers=3, chunksize=1)
        coarse = run_trials(specs, max_workers=3, chunksize=len(specs))
        assert_outcomes_equal(fine.outcomes, coarse.outcomes)

    def test_results_merge_in_spec_order(self):
        specs = replication_specs(
            "beta", 4, base_seed=3, rounds=2, world_params=SMALL_WORLD
        )
        report = run_trials(specs, max_workers=2)
        assert [r.spec for r in report.results] == specs

    def test_attacked_replications_deterministic_and_effective(self):
        attack = AttackSpec("badmouth", liar_fraction=0.6)
        kwargs = dict(
            base_seed=9, rounds=5, world_params=SMALL_WORLD, attack=attack
        )
        pooled = run_replications("beta", 3, max_workers=2, **kwargs)
        serial = run_replications("beta", 3, max_workers=1, **kwargs)
        assert_outcomes_equal(pooled.outcomes, serial.outcomes)
        honest = run_replications(
            "beta", 3, base_seed=9, rounds=5, world_params=SMALL_WORLD
        )
        assert [o.final_scores for o in pooled.outcomes] != [
            o.final_scores for o in honest.outcomes
        ]


class TestSeedDerivation:
    def test_trial_seeds_are_scheduling_independent(self):
        first = replication_specs("beta", 4, base_seed=21)
        again = replication_specs("ebay", 4, base_seed=21)
        assert [s.seed for s in first] == [s.seed for s in again]
        assert len({s.seed for s in first}) == 4

    def test_sweep_pairs_models_on_identical_worlds(self):
        specs = sweep_specs(
            ["beta", "ebay"], "n_consumers", [4, 6], replications=2,
            base_seed=2,
        )
        beta = [s.seed for s in specs if s.model == "beta"]
        ebay = [s.seed for s in specs if s.model == "ebay"]
        assert beta == ebay
        assert len(set(beta)) == 4  # 2 values x 2 replications


class TestPool:
    def test_parallel_map_orders_results(self):
        items = list(range(7))
        assert parallel_map(_module_double, items, max_workers=3) == [
            2 * x for x in items
        ]

    def test_unpicklable_callable_falls_back_to_serial(self):
        # A lambda cannot cross a process boundary; the pool must
        # degrade to the in-process loop rather than raise.
        assert parallel_map(lambda x: x + 1, [1, 2, 3], max_workers=4) == [
            2, 3, 4,
        ]

    def test_unpicklable_world_params_fall_back_to_serial(self):
        # A live callable in the params defeats pickling: the runtime
        # must degrade to the serial loop, not raise — and the trial
        # must still produce the exact serial result.
        def make_specs(probe):
            return [
                TrialSpec(
                    model="beta",
                    seed=seed,
                    rounds=2,
                    world="lenient-test-world",
                    world_params={**SMALL_WORLD, "_probe": probe},
                )
                for seed in (4, 5)
            ]

        report = run_trials(make_specs(lambda: None), max_workers=4)
        assert report.mode == SERIAL
        clean = run_trials(make_specs(None), max_workers=4)
        assert clean.mode == PROCESS_POOL
        assert_outcomes_equal(report.outcomes, clean.outcomes)

    def test_single_item_runs_in_process(self):
        specs = replication_specs(
            "beta", 1, base_seed=8, rounds=2, world_params=SMALL_WORLD
        )
        report = run_trials(specs, max_workers=4)
        assert report.mode == SERIAL  # nothing to fan out

    def test_run_sweep_and_grouping(self):
        report = run_sweep(
            ["beta"],
            "n_consumers",
            [4, 6],
            replications=2,
            base_seed=13,
            rounds=3,
            world_params=dict(n_providers=3, services_per_provider=1),
            max_workers=2,
        )
        grouped = group_sweep(report, "n_consumers")
        assert set(grouped) == {"beta"}
        assert set(grouped["beta"]) == {4, 6}
        assert all(len(v) == 2 for v in grouped["beta"].values())
        assert len(report.trial_ns) == 4
        assert report.ns_per_trial > 0


class TestJobsFromEnv:
    def test_default_when_unset(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert jobs_from_env() == 1
        assert jobs_from_env(3) == 3

    def test_explicit_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "6")
        assert jobs_from_env() == 6

    def test_auto_uses_cpu_count(self, monkeypatch):
        import os

        monkeypatch.setenv("REPRO_JOBS", "auto")
        assert jobs_from_env() == max(1, os.cpu_count() or 1)
        monkeypatch.setenv("REPRO_JOBS", "0")
        assert jobs_from_env() == max(1, os.cpu_count() or 1)

    def test_garbage_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(ConfigurationError):
            jobs_from_env()
