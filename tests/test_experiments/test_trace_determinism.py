"""Trace determinism: exported telemetry is byte-identical everywhere.

The observability subsystem inherits the runtime's ``parallel ==
serial`` contract and strengthens it to the byte level: the JSONL
export of a telemetry merge must be identical whether the trials ran
in a bare sequential loop, through the 1-worker serial fallback, or
fanned across a process pool — same bytes, same sha256, same file.
"""

from __future__ import annotations

import io

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.parallel import (
    PROCESS_POOL,
    SERIAL,
    replication_specs,
    run_replications,
    run_trial,
    run_trials,
)
from repro.obs.trace import TelemetrySnapshot, write_jsonl

#: Small worlds keep the pooled hypothesis examples fast.
SMALL_WORLD = dict(n_providers=3, services_per_provider=1, n_consumers=5)


def export_bytes(report) -> str:
    buffer = io.StringIO()
    write_jsonl(report.telemetry(), buffer)
    return buffer.getvalue()


class TestByteIdenticalTraces:
    @settings(max_examples=3, deadline=None)
    @given(
        base_seed=st.integers(min_value=0, max_value=2 ** 16),
        replications=st.integers(min_value=2, max_value=4),
        model=st.sampled_from(["beta", "eigentrust"]),
    )
    def test_pool_serial_and_bare_loop_export_same_bytes(
        self, base_seed, replications, model
    ):
        kwargs = dict(
            base_seed=base_seed,
            rounds=4,
            world_params=SMALL_WORLD,
            telemetry=True,
        )
        pooled = run_replications(
            model, replications, max_workers=4, **kwargs
        )
        serial = run_replications(
            model, replications, max_workers=1, **kwargs
        )
        assert pooled.mode == PROCESS_POOL
        assert serial.mode == SERIAL

        # A bare loop over run_trial, no pool machinery at all.
        specs = replication_specs(model, replications, **kwargs)
        bare = [run_trial(spec) for spec in specs]
        merged = TelemetrySnapshot.merge(
            [r.telemetry for r in bare],
            labels=[r.spec.label for r in bare],
        )
        buffer = io.StringIO()
        write_jsonl(merged, buffer)

        assert export_bytes(pooled) == export_bytes(serial)
        assert export_bytes(serial) == buffer.getvalue()

    def test_chunking_cannot_change_the_trace(self):
        specs = replication_specs(
            "beta",
            5,
            base_seed=11,
            rounds=3,
            world_params=SMALL_WORLD,
            telemetry=True,
        )
        fine = run_trials(specs, max_workers=3, chunksize=1)
        coarse = run_trials(specs, max_workers=3, chunksize=len(specs))
        assert export_bytes(fine) == export_bytes(coarse)

    def test_rerun_is_byte_identical(self):
        kwargs = dict(
            base_seed=29,
            rounds=3,
            world_params=SMALL_WORLD,
            telemetry=True,
            max_workers=2,
        )
        first = run_replications("beta", 3, **kwargs)
        second = run_replications("beta", 3, **kwargs)
        assert export_bytes(first) == export_bytes(second)


class TestTelemetryPlumbing:
    def test_telemetry_off_by_default(self):
        report = run_replications(
            "beta", 2, base_seed=1, rounds=2, world_params=SMALL_WORLD
        )
        assert all(r.telemetry is None for r in report.results)
        merged = report.telemetry()
        assert merged.events == [] and merged.meta["trials"] == 0

    def test_snapshot_crosses_process_boundary(self):
        report = run_replications(
            "beta",
            2,
            base_seed=2,
            rounds=2,
            world_params=SMALL_WORLD,
            telemetry=True,
            max_workers=2,
        )
        assert report.mode == PROCESS_POOL
        for result in report.results:
            assert result.telemetry is not None
            assert result.telemetry.metrics  # counters made it back

    def test_merged_events_carry_trial_labels(self):
        report = run_replications(
            "beta",
            2,
            base_seed=3,
            rounds=2,
            world_params=SMALL_WORLD,
            telemetry=True,
        )
        merged = report.telemetry()
        labels = {dict(e.attrs).get("trial") for e in merged.events}
        assert labels == {"beta/rep0", "beta/rep1"}

    def test_trace_contains_model_instrumentation(self):
        report = run_replications(
            "eigentrust",
            1,
            base_seed=4,
            rounds=3,
            world_params=SMALL_WORLD,
            telemetry=True,
        )
        merged = report.telemetry()
        names = set(merged.metrics)
        assert "model.rank.batch_size" in names
        assert "model.power_iterations" in names
