"""Per-rule behaviour on the per-rule fixture projects: each rule
fires on its positive cases, stays quiet on the blessed patterns, and
honours per-line suppression comments.

Every class scans only its own ``fixtures/rules/R0xx`` mini-project
(via the ``rule_findings`` factory), so fixtures added for one rule
can never shift another rule's expected counts.
"""

from __future__ import annotations

from tests.test_analysis.conftest import findings_for


class TestR001GlobalNondeterminism:
    def test_fires_on_every_ambient_source(self, rule_findings):
        hits = findings_for(
            rule_findings("R001"), "R001", "models/bad_determinism.py"
        )
        flagged = {f.content.split("#")[0].strip() for f in hits}
        assert "a = random.random()" in flagged
        assert "b = np.random.rand(3)" in flagged
        assert "np.random.seed(0)" in flagged
        assert "c = time.time()" in flagged
        assert "d = datetime.now()" in flagged
        assert "e = uuid.uuid4()" in flagged
        assert "f = os.urandom(8)" in flagged
        assert len(hits) == 7

    def test_suppression_comment_silences(self, rule_findings):
        hits = findings_for(
            rule_findings("R001"), "R001", "models/bad_determinism.py"
        )
        assert not any("suppressed" in f.content for f in hits)

    def test_seeded_constructors_allowed(self, rule_findings):
        hits = findings_for(
            rule_findings("R001"), "R001", "models/bad_determinism.py"
        )
        for blessed in ("default_rng", "SeedSequence", "random.Random",
                        "perf_counter"):
            assert not any(blessed in f.content for f in hits)

    def test_fires_in_serve_scope(self, rule_findings):
        """Wall-clock reads in the serve ingest path are flagged; the
        perf counters stay tolerated for client-side benchmarking."""
        hits = findings_for(
            rule_findings("R001"), "R001", "serve/bad_serve_clock.py"
        )
        flagged = {f.content.split("#")[0].strip() for f in hits}
        assert "now = time.time()" in flagged
        assert "return str(uuid.uuid4())" in flagged
        assert "return datetime.now().isoformat()" in flagged
        assert len(hits) == 3
        assert not any("perf_counter" in f.content for f in hits)
        assert not any("suppressed" in f.content for f in hits)


class TestR002UnorderedIteration:
    def test_fires_on_set_iterations(self, rule_findings):
        hits = findings_for(
            rule_findings("R002"), "R002", "models/bad_iteration.py"
        )
        lines = {f.content for f in hits}
        assert "for peer in self._peers:              # R002: set iteration" in lines
        assert any("shares = {p: 1.0 for p in self._peers}" in l
                   for l in lines)
        assert any("for tgt in targets:" in l for l in lines)
        assert any("set(own) & set(theirs)" in l for l in lines)
        assert any("for p in SEED_PEERS" in l for l in lines)
        assert len(hits) == 5

    def test_sorted_and_membership_not_flagged(self, rule_findings):
        hits = findings_for(
            rule_findings("R002"), "R002", "models/bad_iteration.py"
        )
        assert not any("sorted(" in f.content for f in hits)
        assert not any("len(self._peers)" in f.content for f in hits)
        assert not any('"a" in self._peers' in f.content for f in hits)

    def test_suppression_comment_silences(self, rule_findings):
        hits = findings_for(
            rule_findings("R002"), "R002", "models/bad_iteration.py"
        )
        assert not any("disable=R002" in f.content for f in hits)

    def test_fires_in_serve_scope(self, rule_findings):
        """serve/ is a scoring/ranking path: batch and per-tenant
        tables built off set iteration would put hash-salted order
        into the ingest log."""
        hits = findings_for(
            rule_findings("R002"), "R002", "serve/bad_serve_iteration.py"
        )
        lines = {f.content for f in hits}
        assert any("for tenant in self._tenants:" in l for l in lines)
        assert any("PENDING_TENANTS" in l for l in lines)
        assert len(hits) == 2
        assert not any("sorted(" in f.content for f in hits)
        assert not any("len(self._tenants)" in f.content for f in hits)


class TestR003CacheVersionBump:
    def test_fires_on_stale_record(self, rule_findings):
        hits = findings_for(
            rule_findings("R003"), "R003", "models/bad_record.py"
        )
        assert len(hits) == 1
        assert "StaleCacheModel" in hits[0].message
        assert hits[0].content.startswith("def record")

    def test_bump_paths_accepted(self, rule_findings):
        hits = findings_for(
            rule_findings("R003"), "R003", "models/bad_record.py"
        )
        messages = " ".join(f.message for f in hits)
        assert "DirectBumpModel" not in messages
        assert "HelperBumpModel" not in messages
        assert "DelegatingModel" not in messages
        assert "UnversionedModel" not in messages

    def test_suppression_comment_silences(self, rule_findings):
        hits = findings_for(rule_findings("R003"), "R003")
        assert not any(
            "SuppressedStaleModel" in f.message for f in hits
        )


class TestR004BatchParityRegistry:
    def test_fires_on_unregistered_kernel(self, rule_findings):
        hits = findings_for(
            rule_findings("R004"), "R004", "models/bad_batch.py"
        )
        assert len(hits) == 1
        assert "UnregisteredKernelModel" in hits[0].message

    def test_registered_and_scalar_models_pass(self, rule_findings):
        messages = " ".join(
            f.message
            for f in findings_for(rule_findings("R004"), "R004")
        )
        assert "RegisteredKernelModel" not in messages
        assert "ScalarOnlyModel" not in messages
        assert "ReputationModel overrides" not in messages

    def test_suppression_comment_silences(self, rule_findings):
        messages = " ".join(
            f.message
            for f in findings_for(rule_findings("R004"), "R004")
        )
        assert "SuppressedKernelModel" not in messages

    def test_registry_absent_stays_quiet(self, rule_findings):
        # R003's mini-project has model classes but no core/registry.py;
        # R004 must treat "no registry in tree" as nothing-to-check.
        assert findings_for(rule_findings("R003"), "R004") == []


class TestR005PicklableWorldBuilders:
    def test_fires_on_lambda_and_closure(self, rule_findings):
        hits = findings_for(
            rule_findings("R005"), "R005", "experiments/bad_builders.py"
        )
        assert len(hits) == 3
        messages = " ".join(f.message for f in hits)
        assert "lambda" in messages
        assert "local_builder" in messages

    def test_fires_on_shard_builder_lambda(self, rule_findings):
        hits = findings_for(
            rule_findings("R005"), "R005", "experiments/bad_builders.py"
        )
        assert any(
            "lambda-shard" in f.content for f in hits
        )

    def test_module_level_builder_passes(self, rule_findings):
        hits = findings_for(rule_findings("R005"), "R005")
        assert not any(
            "_module_level_builder" in f.message for f in hits
        )
        assert not any(
            "_module_level_shard_builder" in f.message for f in hits
        )

    def test_suppression_comment_silences(self, rule_findings):
        hits = findings_for(rule_findings("R005"), "R005")
        assert not any("quiet_builder" in f.message for f in hits)


class TestR006FloatEquality:
    def test_fires_on_bare_equality(self, rule_findings):
        hits = findings_for(
            rule_findings("R006"), "R006", "models/bad_floatcmp.py"
        )
        lines = {f.content.split("#")[0].strip() for f in hits}
        assert "if score == 0.5:" in lines
        assert "if trust != 1.0:" in lines
        assert "if rating == score:" in lines
        assert len(hits) == 3

    def test_counts_strings_and_tolerances_pass(self, rule_findings):
        hits = findings_for(
            rule_findings("R006"), "R006", "models/bad_floatcmp.py"
        )
        contents = " ".join(f.content for f in hits)
        assert "rating_count" not in contents
        assert "spam" not in contents
        assert "abs(" not in contents
        assert "score > 0.9" not in contents

    def test_suppression_comment_silences(self, rule_findings):
        hits = findings_for(
            rule_findings("R006"), "R006", "models/bad_floatcmp.py"
        )
        assert not any("disable=R006" in f.content for f in hits)


class TestR007ColumnarLoops:
    def test_fires_on_per_row_loops(self, rule_findings):
        hits = findings_for(
            rule_findings("R007"), "R007", "models/bad_columnar.py"
        )
        lines = {f.content.split("#")[0].strip() for f in hits}
        assert "for v in columns.value:" in lines
        assert "for row in store.iter_rows(0):" in lines
        assert any("zip(columns.value, columns.time)" in l for l in lines)
        assert "return [v * 2 for v in values]" in lines
        assert "for v in columns.value.tolist():" in lines
        assert len(hits) == 5

    def test_vectorized_and_plain_loops_pass(self, rule_findings):
        hits = findings_for(
            rule_findings("R007"), "R007", "models/bad_columnar.py"
        )
        contents = " ".join(f.content for f in hits)
        assert "bincount" not in contents
        assert "for item in items" not in contents

    def test_reference_replay_suppression_silences(self, rule_findings):
        hits = findings_for(
            rule_findings("R007"), "R007", "models/bad_columnar.py"
        )
        # blessed_reference's loop is identical to looped_rows' — only
        # the disable comment separates them, so exactly one survives.
        assert (
            sum("store.iter_rows(0)" in f.content for f in hits) == 1
        )

    def test_scoped_to_models(self, rule_findings):
        assert all(
            f.path.startswith("models/")
            for f in findings_for(rule_findings("R007"), "R007")
        )


class TestR008ShardDeltaOrder:
    def test_fires_on_set_ordered_merges(self, rule_findings):
        hits = findings_for(
            rule_findings("R008"), "R008", "experiments/sharded.py"
        )
        lines = {f.content for f in hits}
        assert any("for delta in pending" in l for l in lines)
        assert any(
            "store.merge_from(d) for d in dropped" in l for l in lines
        )
        assert any("merge_snapshots(set(snapshots))" in l for l in lines)
        assert len(hits) == 3

    def test_list_and_sorted_merges_pass(self, rule_findings):
        hits = findings_for(
            rule_findings("R008"), "R008", "experiments/sharded.py"
        )
        contents = " ".join(f.content for f in hits)
        assert "sorted(" not in contents
        assert "for delta in deltas:" not in contents

    def test_loop_without_merge_not_flagged(self, rule_findings):
        hits = findings_for(rule_findings("R008"), "R008")
        assert not any("total += delta" in f.content for f in hits)

    def test_suppression_comment_silences(self, rule_findings):
        hits = findings_for(rule_findings("R008"), "R008")
        assert not any("disable=R008" in f.content for f in hits)

    def test_scoped_to_merge_paths(self, rule_findings):
        assert all(
            f.path.startswith("experiments/sharded.py")
            for f in findings_for(rule_findings("R008"), "R008")
        )


class TestR009AmbientTaint:
    def test_direct_hit(self, rule_findings):
        hits = findings_for(
            rule_findings("R009"), "R009", "services/taint_feed.py"
        )
        assert any("time.monotonic()" in f.content for f in hits)

    def test_multi_hop_chain_hit(self, rule_findings):
        """source -> _jitter -> _laundered -> _relay -> sink: only the
        summary fixpoint sees it; no banned name is on the sink line."""
        hits = findings_for(
            rule_findings("R009"), "R009", "services/taint_feed.py"
        )
        assert any(
            "_relay(_laundered())" in f.content for f in hits
        )

    def test_set_order_taint_hits_sink(self, rule_findings):
        hits = findings_for(
            rule_findings("R009"), "R009", "services/taint_feed.py"
        )
        order = [
            f for f in hits if "set iteration order" in f.message
        ]
        assert len(order) == 1
        assert "peer" in order[0].content

    def test_telemetry_sink_hit(self, rule_findings):
        hits = findings_for(
            rule_findings("R009"), "R009", "services/taint_telemetry.py"
        )
        assert len(hits) == 1
        assert "recorder.gauge" in hits[0].message

    def test_serve_arrival_constructor_is_a_sink(self, rule_findings):
        """Wall clock directly into an Arrival's client tick."""
        hits = findings_for(
            rule_findings("R009"), "R009", "serve/taint_ingest.py"
        )
        arrivals = [f for f in hits if "Arrival fields" in f.message]
        assert len(arrivals) == 1
        assert "ingest log" in arrivals[0].message

    def test_serve_admit_laundered_hit(self, rule_findings):
        """source -> _wall_ticks -> _laundered_now -> admit: ingest
        tick assignment reached through two helper calls."""
        hits = findings_for(
            rule_findings("R009"), "R009", "serve/taint_ingest.py"
        )
        admits = [
            f for f in hits if "AdmissionController.admit" in f.message
        ]
        assert len(admits) == 1
        assert "_laundered_now()" in admits[0].content

    def test_serve_ingest_record_is_a_sink(self, rule_findings):
        hits = findings_for(
            rule_findings("R009"), "R009", "serve/taint_ingest.py"
        )
        assert any("IngestRecord fields" in f.message for f in hits)

    def test_exact_counts_and_clean_paths(self, rule_findings):
        hits = findings_for(rule_findings("R009"), "R009")
        assert len(hits) == 7
        assert len(findings_for(hits, "R009", "serve/")) == 3
        contents = " ".join(f.content for f in hits)
        assert "clean_path" not in contents
        assert "sorted(peers)" not in contents
        assert "bench_ok" not in contents
        assert "suppressed" not in contents
        assert "started" not in contents

    def test_suppression_comment_silences(self, rule_findings):
        hits = findings_for(rule_findings("R009"), "R009")
        assert not any("disable=R009" in f.content for f in hits)

    def test_no_r001_noise_in_fixture(self, rule_findings):
        # perf counters are R001-tolerated; every finding in the R009
        # project must belong to R009 alone.
        assert {f.rule for f in rule_findings("R009")} == {"R009"}


class TestR010FrozenViewMutation:
    def test_subscript_store_hit(self, rule_findings):
        hits = findings_for(
            rule_findings("R010"), "R010", "sim/frozen_abuse.py"
        )
        assert any("snap.value[0] = 1.0" in f.content for f in hits)

    def test_mutating_method_hit(self, rule_findings):
        hits = findings_for(
            rule_findings("R010"), "R010", "sim/frozen_abuse.py"
        )
        assert any("index.starts.fill(0)" in f.content for f in hits)

    def test_augmented_assignment_hit(self, rule_findings):
        hits = findings_for(
            rule_findings("R010"), "R010", "sim/frozen_abuse.py"
        )
        assert any("snap.value += 1.0" in f.content for f in hits)

    def test_annotated_parameter_hit(self, rule_findings):
        hits = findings_for(
            rule_findings("R010"), "R010", "sim/frozen_abuse.py"
        )
        assert any("view.value.fill(0.0)" in f.content for f in hits)

    def test_multi_hop_helper_hit(self, rule_findings):
        """snapshot -> _relay -> _clobber: the mutation is two calls
        away and the finding names the helper that does it."""
        hits = findings_for(
            rule_findings("R010"), "R010", "sim/frozen_abuse.py"
        )
        via = [f for f in hits if "_relay" in f.message]
        assert len(via) == 1
        assert "_relay(snap.value)" in via[0].content

    def test_copies_and_masks_pass(self, rule_findings):
        hits = findings_for(rule_findings("R010"), "R010")
        assert len(hits) == 5
        contents = " ".join(f.content for f in hits)
        assert "mine.sort()" not in contents
        assert "positive.sort()" not in contents

    def test_suppression_comment_silences(self, rule_findings):
        hits = findings_for(rule_findings("R010"), "R010")
        assert not any("disable=R010" in f.content for f in hits)


class TestR011SwallowedExceptions:
    def test_bare_and_broad_handlers_hit(self, rule_findings):
        hits = findings_for(
            rule_findings("R011"), "R011", "faults/swallow.py"
        )
        contents = [f.content for f in hits]
        assert any(c.startswith("except:") for c in contents)
        assert "except Exception:" in contents

    def test_inert_helper_chain_hit(self, rule_findings):
        """handler -> _indirect -> _black_hole is observably a no-op;
        the inert-function fixpoint must see through both calls."""
        hits = findings_for(
            rule_findings("R011"), "R011", "faults/swallow.py"
        )
        assert any(
            "except Exception as exc:" in f.content for f in hits
        )

    def test_exact_count_and_handled_paths_pass(self, rule_findings):
        hits = findings_for(rule_findings("R011"), "R011")
        assert len(hits) == 3
        lines = {f.line for f in hits}
        # sentinel return, re-raise, recorder call, narrow handler:
        # all handled, none flagged.
        assert all(f.path == "faults/swallow.py" for f in hits)
        assert len(lines) == 3

    def test_suppression_comment_silences(self, rule_findings):
        hits = findings_for(rule_findings("R011"), "R011")
        assert not any("disable=R011" in f.content for f in hits)

    def test_scoped_to_resilience_paths(self, tmp_path):
        from repro.analysis.core import run_analysis
        from repro.analysis.rules.taint import SwallowedExceptionRule

        source = (
            "def f(fn):\n"
            "    try:\n"
            "        return fn()\n"
            "    except Exception:\n"
            "        pass\n"
        )
        path = tmp_path / "repro" / "models" / "quiet.py"
        path.parent.mkdir(parents=True)
        path.write_text(source)
        assert run_analysis([path], [SwallowedExceptionRule()]) == []
