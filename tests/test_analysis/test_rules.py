"""Per-rule behaviour on the fixture project: each rule fires on its
positive cases, stays quiet on the blessed patterns, and honours
per-line suppression comments."""

from __future__ import annotations

from tests.test_analysis.conftest import findings_for


class TestR001GlobalNondeterminism:
    def test_fires_on_every_ambient_source(self, fixture_findings):
        hits = findings_for(
            fixture_findings, "R001", "models/bad_determinism.py"
        )
        flagged = {f.content.split("#")[0].strip() for f in hits}
        assert "a = random.random()" in flagged
        assert "b = np.random.rand(3)" in flagged
        assert "np.random.seed(0)" in flagged
        assert "c = time.time()" in flagged
        assert "d = datetime.now()" in flagged
        assert "e = uuid.uuid4()" in flagged
        assert "f = os.urandom(8)" in flagged
        assert len(hits) == 7

    def test_suppression_comment_silences(self, fixture_findings):
        hits = findings_for(
            fixture_findings, "R001", "models/bad_determinism.py"
        )
        assert not any("suppressed" in f.content for f in hits)

    def test_seeded_constructors_allowed(self, fixture_findings):
        hits = findings_for(
            fixture_findings, "R001", "models/bad_determinism.py"
        )
        for blessed in ("default_rng", "SeedSequence", "random.Random",
                        "perf_counter"):
            assert not any(blessed in f.content for f in hits)


class TestR002UnorderedIteration:
    def test_fires_on_set_iterations(self, fixture_findings):
        hits = findings_for(
            fixture_findings, "R002", "models/bad_iteration.py"
        )
        lines = {f.content for f in hits}
        assert "for peer in self._peers:              # R002: set iteration" in lines
        assert any("shares = {p: 1.0 for p in self._peers}" in l
                   for l in lines)
        assert any("for tgt in targets:" in l for l in lines)
        assert any("set(own) & set(theirs)" in l for l in lines)
        assert any("for p in SEED_PEERS" in l for l in lines)
        assert len(hits) == 5

    def test_sorted_and_membership_not_flagged(self, fixture_findings):
        hits = findings_for(
            fixture_findings, "R002", "models/bad_iteration.py"
        )
        assert not any("sorted(" in f.content for f in hits)
        assert not any("len(self._peers)" in f.content for f in hits)
        assert not any('"a" in self._peers' in f.content for f in hits)

    def test_suppression_comment_silences(self, fixture_findings):
        hits = findings_for(
            fixture_findings, "R002", "models/bad_iteration.py"
        )
        assert not any("disable=R002" in f.content for f in hits)


class TestR003CacheVersionBump:
    def test_fires_on_stale_record(self, fixture_findings):
        hits = findings_for(
            fixture_findings, "R003", "models/bad_record.py"
        )
        assert len(hits) == 1
        assert "StaleCacheModel" in hits[0].message
        assert "version, _trust_version" not in hits[0].message or True
        assert hits[0].content.startswith("def record")

    def test_bump_paths_accepted(self, fixture_findings):
        hits = findings_for(
            fixture_findings, "R003", "models/bad_record.py"
        )
        messages = " ".join(f.message for f in hits)
        assert "DirectBumpModel" not in messages
        assert "HelperBumpModel" not in messages
        assert "DelegatingModel" not in messages
        assert "UnversionedModel" not in messages

    def test_suppression_comment_silences(self, fixture_findings):
        hits = findings_for(fixture_findings, "R003")
        assert not any(
            "SuppressedStaleModel" in f.message for f in hits
        )


class TestR004BatchParityRegistry:
    def test_fires_on_unregistered_kernel(self, fixture_findings):
        hits = findings_for(
            fixture_findings, "R004", "models/bad_batch.py"
        )
        assert len(hits) == 1
        assert "UnregisteredKernelModel" in hits[0].message

    def test_registered_and_scalar_models_pass(self, fixture_findings):
        messages = " ".join(
            f.message for f in findings_for(fixture_findings, "R004")
        )
        assert "RegisteredKernelModel" not in messages
        assert "ScalarOnlyModel" not in messages
        assert "ReputationModel overrides" not in messages

    def test_suppression_comment_silences(self, fixture_findings):
        messages = " ".join(
            f.message for f in findings_for(fixture_findings, "R004")
        )
        assert "SuppressedKernelModel" not in messages


class TestR005PicklableWorldBuilders:
    def test_fires_on_lambda_and_closure(self, fixture_findings):
        hits = findings_for(
            fixture_findings, "R005", "experiments/bad_builders.py"
        )
        assert len(hits) == 3
        messages = " ".join(f.message for f in hits)
        assert "lambda" in messages
        assert "local_builder" in messages

    def test_fires_on_shard_builder_lambda(self, fixture_findings):
        hits = findings_for(
            fixture_findings, "R005", "experiments/bad_builders.py"
        )
        assert any(
            "lambda-shard" in f.content for f in hits
        )

    def test_module_level_builder_passes(self, fixture_findings):
        hits = findings_for(fixture_findings, "R005")
        assert not any(
            "_module_level_builder" in f.message for f in hits
        )
        assert not any(
            "_module_level_shard_builder" in f.message for f in hits
        )

    def test_suppression_comment_silences(self, fixture_findings):
        hits = findings_for(fixture_findings, "R005")
        assert not any("quiet_builder" in f.message for f in hits)


class TestR006FloatEquality:
    def test_fires_on_bare_equality(self, fixture_findings):
        hits = findings_for(
            fixture_findings, "R006", "models/bad_floatcmp.py"
        )
        lines = {f.content.split("#")[0].strip() for f in hits}
        assert "if score == 0.5:" in lines
        assert "if trust != 1.0:" in lines
        assert "if rating == score:" in lines
        assert len(hits) == 3

    def test_counts_strings_and_tolerances_pass(self, fixture_findings):
        hits = findings_for(
            fixture_findings, "R006", "models/bad_floatcmp.py"
        )
        contents = " ".join(f.content for f in hits)
        assert "rating_count" not in contents
        assert "spam" not in contents
        assert "abs(" not in contents
        assert "score > 0.9" not in contents

    def test_suppression_comment_silences(self, fixture_findings):
        hits = findings_for(
            fixture_findings, "R006", "models/bad_floatcmp.py"
        )
        assert not any("disable=R006" in f.content for f in hits)


class TestR007ColumnarLoops:
    def test_fires_on_per_row_loops(self, fixture_findings):
        hits = findings_for(
            fixture_findings, "R007", "models/bad_columnar.py"
        )
        lines = {f.content.split("#")[0].strip() for f in hits}
        assert "for v in columns.value:" in lines
        assert "for row in store.iter_rows(0):" in lines
        assert any("zip(columns.value, columns.time)" in l for l in lines)
        assert "return [v * 2 for v in values]" in lines
        assert "for v in columns.value.tolist():" in lines
        assert len(hits) == 5

    def test_vectorized_and_plain_loops_pass(self, fixture_findings):
        hits = findings_for(
            fixture_findings, "R007", "models/bad_columnar.py"
        )
        contents = " ".join(f.content for f in hits)
        assert "bincount" not in contents
        assert "for item in items" not in contents

    def test_reference_replay_suppression_silences(self, fixture_findings):
        hits = findings_for(
            fixture_findings, "R007", "models/bad_columnar.py"
        )
        # blessed_reference's loop is identical to looped_rows' — only
        # the disable comment separates them, so exactly one survives.
        assert (
            sum("store.iter_rows(0)" in f.content for f in hits) == 1
        )

    def test_scoped_to_models(self, fixture_findings):
        assert all(
            f.path.startswith("models/")
            for f in findings_for(fixture_findings, "R007")
        )


class TestR008ShardDeltaOrder:
    def test_fires_on_set_ordered_merges(self, fixture_findings):
        hits = findings_for(
            fixture_findings, "R008", "experiments/sharded.py"
        )
        lines = {f.content for f in hits}
        assert any("for delta in pending" in l for l in lines)
        assert any(
            "store.merge_from(d) for d in dropped" in l for l in lines
        )
        assert any("merge_snapshots(set(snapshots))" in l for l in lines)
        assert len(hits) == 3

    def test_list_and_sorted_merges_pass(self, fixture_findings):
        hits = findings_for(
            fixture_findings, "R008", "experiments/sharded.py"
        )
        contents = " ".join(f.content for f in hits)
        assert "sorted(" not in contents
        assert "for delta in deltas:" not in contents

    def test_loop_without_merge_not_flagged(self, fixture_findings):
        hits = findings_for(fixture_findings, "R008")
        assert not any("total += delta" in f.content for f in hits)

    def test_suppression_comment_silences(self, fixture_findings):
        hits = findings_for(fixture_findings, "R008")
        assert not any("disable=R008" in f.content for f in hits)

    def test_scoped_to_merge_paths(self, fixture_findings):
        assert all(
            f.path.startswith("experiments/sharded.py")
            for f in findings_for(fixture_findings, "R008")
        )
