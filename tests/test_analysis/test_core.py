"""Core mechanics: suppression parsing, path scoping, registry filters."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.core import (
    RuleRegistry,
    package_relpath,
    parse_module,
    run_analysis,
    suppressed_rules,
)
from repro.analysis.rules import default_registry
from repro.analysis.rules.determinism import GlobalNondeterminismRule


def _module(tmp_path: Path, source: str, name="repro/models/mod.py"):
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    return parse_module(path)


class TestSuppressions:
    def test_same_line_comment(self, tmp_path):
        module = _module(
            tmp_path,
            "import random\nx = random.random()  "
            "# reprolint: disable=R001\n",
        )
        assert suppressed_rules(module, 2) == {"R001"}

    def test_comment_line_above(self, tmp_path):
        module = _module(
            tmp_path,
            "import random\n# reprolint: disable=R001\n"
            "x = random.random()\n",
        )
        assert suppressed_rules(module, 3) == {"R001"}

    def test_multiple_rules_one_comment(self, tmp_path):
        module = _module(
            tmp_path, "x = 1  # reprolint: disable=R001, R006\n"
        )
        assert suppressed_rules(module, 1) == {"R001", "R006"}

    def test_disable_all(self, tmp_path):
        module = _module(
            tmp_path, "x = 1  # reprolint: disable=all\n"
        )
        assert suppressed_rules(module, 1) == {"all"}

    def test_disable_all_on_comment_line_above(self, tmp_path):
        module = _module(
            tmp_path,
            "import random\n# reprolint: disable=all\n"
            "x = random.random()\n",
        )
        assert suppressed_rules(module, 3) == {"all"}
        assert run_analysis(
            [module.path], [GlobalNondeterminismRule()]
        ) == []

    def test_multiple_ids_with_ragged_whitespace(self, tmp_path):
        module = _module(
            tmp_path,
            "x = 1  #  reprolint:  disable=R001 ,R006,  R009\n",
        )
        assert suppressed_rules(module, 1) == {
            "R001", "R006", "R009",
        }

    def test_suppression_matching_no_finding_is_inert(self, tmp_path):
        """A disable comment for a rule that never fires neither
        errors nor hides other rules' findings."""
        module = _module(
            tmp_path,
            "import random\n"
            "x = random.random()  # reprolint: disable=R008\n",
        )
        assert suppressed_rules(module, 2) == {"R008"}
        findings = run_analysis(
            [module.path], [GlobalNondeterminismRule()]
        )
        assert [f.rule for f in findings] == ["R001"]

    def test_code_line_above_does_not_leak(self, tmp_path):
        """A suppression on a *code* line only covers that line."""
        module = _module(
            tmp_path,
            "import random\n"
            "a = random.random()  # reprolint: disable=R001\n"
            "b = random.random()\n",
        )
        assert suppressed_rules(module, 3) == frozenset()
        findings = run_analysis(
            [module.path], [GlobalNondeterminismRule()]
        )
        assert [f.line for f in findings] == [3]


class TestPathScoping:
    def test_relpath_strips_to_package_root(self):
        assert (
            package_relpath(Path("src/repro/models/beta.py"))
            == "models/beta.py"
        )
        assert (
            package_relpath(
                Path("tests/fixtures/rules/R004/repro/core/selection.py")
            )
            == "core/selection.py"
        )

    def test_non_package_path_keeps_tail(self):
        assert package_relpath(Path("a/b/c.py")) == "b/c.py"

    def test_scoped_rule_skips_other_trees(self, tmp_path):
        # R006 is scoped to models/; the same comparison elsewhere
        # (services, experiments) must not fire.
        source = "def f(score):\n    return score == 0.5\n"
        in_models = _module(tmp_path, source, "repro/models/a.py")
        elsewhere = _module(tmp_path, source, "repro/services/a.py")
        rules = default_registry().rules(select=["R006"])
        assert len(run_analysis([in_models.path], rules)) == 1
        assert run_analysis([elsewhere.path], rules) == []

    def test_randomness_module_exempt_from_r001(self, tmp_path):
        source = "import numpy as np\nrng = np.random.rand(2)\n"
        blessed = _module(
            tmp_path, source, "repro/common/randomness.py"
        )
        other = _module(tmp_path, source, "repro/common/mathutils.py")
        rule = [GlobalNondeterminismRule()]
        assert run_analysis([blessed.path], rule) == []
        assert len(run_analysis([other.path], rule)) == 1


class TestRegistry:
    def test_eleven_rules_shipped(self):
        registry = default_registry()
        assert registry.ids() == [
            "R001", "R002", "R003", "R004", "R005", "R006", "R007",
            "R008", "R009", "R010", "R011",
        ]

    def test_duplicate_id_rejected(self):
        registry = RuleRegistry()
        registry.register(GlobalNondeterminismRule())
        with pytest.raises(ValueError):
            registry.register(GlobalNondeterminismRule())

    def test_unknown_select_raises(self):
        with pytest.raises(KeyError):
            default_registry().rules(select=["R404"])
