"""Shared fixtures for the reprolint test suite.

Fixtures live under ``fixtures/rules/R0xx`` — one mini-project per
rule, each mimicking the real package layout (``repro/models``,
``repro/faults``, ...) so path-scoped rules behave exactly as they do
on ``src/repro``.  Rule tests scan only their own directory, so adding
a fixture for one rule can never shift another rule's counts; CLI and
reporter tests scan the combined tree.  Fixture files are parsed by
the linter, never imported.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Dict, List

import pytest

from repro.analysis.core import Finding, run_analysis
from repro.analysis.rules import default_registry

RULES_ROOT = Path(__file__).parent / "fixtures" / "rules"
#: the combined tree (every per-rule mini-project), for CLI tests
FIXTURE_ROOT = RULES_ROOT
REPO_ROOT = Path(__file__).resolve().parents[2]
SRC_REPRO = REPO_ROOT / "src" / "repro"


@pytest.fixture(scope="session")
def fixture_findings() -> List[Finding]:
    """One analysis run over the combined fixture tree, shared by the
    CLI/reporter tests (the driver is deterministic, so sharing is
    safe)."""
    return run_analysis([RULES_ROOT], default_registry().rules())


@pytest.fixture(scope="session")
def rule_findings() -> Callable[[str], List[Finding]]:
    """Per-rule analysis runs: ``rule_findings("R009")`` scans only
    ``fixtures/rules/R009`` (with the full registry, so unexpected
    cross-rule hits in a fixture are visible)."""
    cache: Dict[str, List[Finding]] = {}

    def get(rule_id: str) -> List[Finding]:
        if rule_id not in cache:
            cache[rule_id] = run_analysis(
                [RULES_ROOT / rule_id], default_registry().rules()
            )
        return cache[rule_id]

    return get


def findings_for(
    findings: List[Finding], rule: str, relpath: str = ""
) -> List[Finding]:
    return [
        f
        for f in findings
        if f.rule == rule and f.path.startswith(relpath)
    ]
