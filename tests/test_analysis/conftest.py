"""Shared fixtures for the reprolint test suite.

The fixture project under ``fixtures/proj`` mimics the real package
layout (``repro/models``, ``repro/core``, ``repro/experiments``) so
path-scoped rules behave exactly as they do on ``src/repro``.  Fixture
files are parsed by the linter, never imported.
"""

from __future__ import annotations

from pathlib import Path
from typing import List

import pytest

from repro.analysis.core import Finding, run_analysis
from repro.analysis.rules import default_registry

FIXTURE_ROOT = Path(__file__).parent / "fixtures" / "proj"
REPO_ROOT = Path(__file__).resolve().parents[2]
SRC_REPRO = REPO_ROOT / "src" / "repro"


@pytest.fixture(scope="session")
def fixture_findings() -> List[Finding]:
    """One analysis run over the whole fixture project, shared by all
    rule tests (the driver is deterministic, so sharing is safe)."""
    return run_analysis([FIXTURE_ROOT], default_registry().rules())


def findings_for(
    findings: List[Finding], rule: str, relpath: str = ""
) -> List[Finding]:
    return [
        f
        for f in findings
        if f.rule == rule and f.path.startswith(relpath)
    ]
