"""R002 fixture: unordered iteration on the serve scoring path.

``serve/`` is in R002's scope: a set iterated while building a batch
or a per-tenant table puts hash-salted order into the ingest log.
Parsed, never imported.  No canonical sinks are called, so R009 stays
quiet and every finding here belongs to R002 alone.
"""

from typing import Dict, List, Set

PENDING_TENANTS: Set[str] = {"t0", "t1"}


class BatchBuilder:
    def __init__(self) -> None:
        self._tenants: Set[str] = set()

    def drain_bad(self) -> List[str]:
        out = []
        for tenant in self._tenants:      # R002: set iteration
            out.append(tenant)
        return out

    def table_bad(self) -> Dict[str, int]:
        return {tenant: 0 for tenant in PENDING_TENANTS}  # R002

    def drain_ok(self) -> List[str]:
        return [tenant for tenant in sorted(self._tenants)]

    def size_ok(self) -> int:
        return len(self._tenants)

    def member_ok(self, tenant: str) -> bool:
        return tenant in self._tenants
