"""R002 fixture: unordered iteration on scoring paths."""

from typing import Dict, Set

SEED_PEERS = {"alice", "bob"}


def seed_total(scores):
    return sum(scores[p] for p in SEED_PEERS)  # R002: module-level set


class TinyGraphModel:
    def __init__(self):
        self._peers: Set[str] = set()
        self._out: Dict[str, Set[str]] = {}

    def score_all(self):
        total = 0.0
        for peer in self._peers:              # R002: set iteration
            total += 1.0
        shares = {p: 1.0 for p in self._peers}  # R002: dict comp over set
        return total, shares

    def spread(self, rank, index):
        for node, targets in self._out.items():
            for tgt in targets:               # R002: Dict[_, Set] values
                rank[index[tgt]] += 1.0

    def overlap(self, own, theirs):
        return sum(own[t] for t in set(own) & set(theirs))  # R002

    def suppressed(self):
        return [p for p in self._peers]  # reprolint: disable=R002

    def sorted_is_fine(self):
        ranked = [p for p in sorted(self._peers)]
        count = len(self._peers)
        present = "a" in self._peers
        as_list = sorted(set(ranked) | {"z"})
        return ranked, count, present, as_list
