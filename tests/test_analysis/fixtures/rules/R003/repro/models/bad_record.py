"""R003 fixture: versioned caches and record() coherence."""

from repro.models.base import ReputationModel


class StaleCacheModel(ReputationModel):          # R003 fires on record()
    def __init__(self):
        self.version = 0
        self._trust_version = -1
        self._counts = {}

    def record(self, feedback):
        self._counts[feedback.target] = feedback.rating

    def score(self, target, perspective=None, now=None):
        return self._counts.get(target, 0.5)


class DirectBumpModel(ReputationModel):
    def __init__(self):
        self.version = 0
        self._counts = {}

    def record(self, feedback):
        self._counts[feedback.target] = feedback.rating
        self.version += 1

    def score(self, target, perspective=None, now=None):
        return self._counts.get(target, 0.5)


class HelperBumpModel(ReputationModel):
    def __init__(self):
        self.version = 0
        self._edges = {}

    def _add_edge(self, source, target):
        self._edges.setdefault(source, []).append(target)
        self.version += 1

    def record(self, feedback):
        self._add_edge(feedback.rater, feedback.target)

    def score(self, target, perspective=None, now=None):
        return 0.5


class DelegatingModel(DirectBumpModel):
    def record(self, feedback):
        super().record(feedback)


class SuppressedStaleModel(ReputationModel):
    def __init__(self):
        self.version = 0
        self._counts = {}

    def record(self, feedback):  # reprolint: disable=R003
        self._counts[feedback.target] = feedback.rating

    def score(self, target, perspective=None, now=None):
        return 0.5


class UnversionedModel(ReputationModel):
    """No cache version counter -> nothing to keep coherent."""

    def __init__(self):
        self._log = []

    def record(self, feedback):
        self._log.append(feedback)

    def score(self, target, perspective=None, now=None):
        return 0.5
