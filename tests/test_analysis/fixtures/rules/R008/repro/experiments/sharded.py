"""R008 fixture: cross-shard merges driven in unordered order.

Named ``experiments/sharded.py`` so the path-scoped rule runs on it;
parsed by the linter, never imported.
"""


class DeltaStore:
    def merge_from(self, other):
        return other


def merge_snapshots(snapshots):
    return list(snapshots)


def bad_loop_merge(store, deltas):
    pending = set(deltas)
    for delta in pending:                     # R008: set-ordered merge
        store.merge_from(delta)


def bad_comprehension_merge(store, deltas):
    dropped = {d for d in deltas}
    return [store.merge_from(d) for d in dropped]  # R008


def bad_direct_arg(snapshots):
    return merge_snapshots(set(snapshots))    # R008: set into merge


def good_list_merge(store, deltas):
    for delta in deltas:                      # spec-ordered list: fine
        store.merge_from(delta)


def good_sorted_merge(store, deltas):
    for delta in sorted(set(deltas)):         # sorted(...) neutralizes
        store.merge_from(delta)


def loop_without_merge(deltas):
    total = 0
    for delta in sorted(set(deltas)):
        total += delta
    return total


def suppressed_merge(store, deltas):
    ordered = set(deltas)  # reprolint: disable=R002
    for delta in ordered:  # reprolint: disable=R002,R008
        store.merge_from(delta)
