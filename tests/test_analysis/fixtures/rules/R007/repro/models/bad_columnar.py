"""R007 fixtures: per-row python loops over store columns.

Parsed by the linter, never imported — `store` is an implicit
EventStore-shaped object.
"""


def make_store():
    return None


store = make_store()


def looped_kernel():
    columns = store.snapshot()
    total = 0.0
    for v in columns.value:                 # R007: column iteration
        total += v
    return total


def looped_rows():
    for row in store.iter_rows(0):          # R007: row iteration
        print(row)


def zipped_columns():
    columns = store.snapshot()
    pairs = [
        (v, t) for v, t in zip(columns.value, columns.time)  # R007
    ]
    return pairs


def sliced_column():
    columns = store.snapshot()
    values = columns.value[:10]
    return [v * 2 for v in values]          # R007: sliced column


def materialized_column():
    columns = store.snapshot()
    for v in columns.value.tolist():        # R007: tolist loop
        print(v)


def blessed_reference():
    # reprolint: disable=R007 — scalar reference is the per-row replay
    for row in store.iter_rows(0):
        print(row)


def vectorized_kernel(np):
    columns = store.snapshot()
    sums = np.bincount(columns.target, weights=columns.value)
    gathered = columns.value[columns.target >= 0]
    return sums, gathered


def plain_loop(items):
    for item in items:                      # not a store column
        print(item)
