"""R004 fixture: score_many overrides and the batch-parity registry."""

from repro.models.base import ReputationModel


class UnregisteredKernelModel(ReputationModel):   # R004 fires
    def record(self, feedback):
        pass

    def score(self, target, perspective=None, now=None):
        return 0.5

    def score_many(self, targets, perspective=None, now=None):
        return [0.5 for _ in targets]


class RegisteredKernelModel(ReputationModel):
    def record(self, feedback):
        pass

    def score(self, target, perspective=None, now=None):
        return 0.5

    def score_many(self, targets, perspective=None, now=None):
        return [0.5 for _ in targets]


class ScalarOnlyModel(ReputationModel):
    """No override -> the base loop is already covered by the gate."""

    def record(self, feedback):
        pass

    def score(self, target, perspective=None, now=None):
        return 0.5


class SuppressedKernelModel(ReputationModel):  # reprolint: disable=R004
    def record(self, feedback):
        pass

    def score(self, target, perspective=None, now=None):
        return 0.5

    def score_many(self, targets, perspective=None, now=None):
        return [0.5 for _ in targets]
