"""Fixture stand-in for repro.models.base (never imported, only parsed)."""


class ReputationModel:
    def record(self, feedback):
        raise NotImplementedError

    def score(self, target, perspective=None, now=None):
        raise NotImplementedError

    def score_many(self, targets, perspective=None, now=None):
        return [self.score(t, perspective, now) for t in targets]
