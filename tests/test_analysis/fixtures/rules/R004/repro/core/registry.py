"""Fixture stand-in for repro.core.registry (never imported, only parsed)."""

from repro.models.bad_batch import RegisteredKernelModel
from repro.models.bad_record import DirectBumpModel


def default_registry(rng_seed=None):
    registry = {}
    entries = [
        (RegisteredKernelModel, "Registered kernel", True),
        (DirectBumpModel, "Direct bump", False),
    ]
    for cls, label, in_fig4 in entries:
        registry[cls.__name__] = (cls, label, in_fig4)
    return registry
