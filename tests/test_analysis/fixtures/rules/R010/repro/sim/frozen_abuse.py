"""R010 fixture: mutation of epoch-frozen snapshot/index views.

Parsed, never imported.
"""

from repro.store import ColumnSet, EventStore


def _clobber(rows) -> None:
    rows.sort()


def _relay(rows) -> None:
    _clobber(rows)


def annotated_hit(view: ColumnSet) -> None:
    view.value.fill(0.0)


class SnapshotUser:
    def __init__(self) -> None:
        self._store = EventStore()

    def assign_hit(self) -> None:
        snap = self._store.snapshot()
        snap.value[0] = 1.0

    def method_hit(self) -> None:
        index = self._store.by_target()
        index.starts.fill(0)

    def helper_hit(self) -> None:
        # snapshot -> _relay -> _clobber: the mutation is two calls
        # away, visible only through composed summaries.
        snap = self._store.snapshot()
        _relay(snap.value)

    def aug_hit(self) -> None:
        snap = self._store.snapshot()
        snap.value += 1.0

    def suppressed_hit(self) -> None:
        snap = self._store.snapshot()
        snap.value[0] = 2.0  # reprolint: disable=R010

    def copy_ok(self) -> None:
        snap = self._store.snapshot()
        mine = list(snap.value)
        mine.sort()

    def mask_ok(self) -> None:
        # Boolean-mask indexing copies; mutating the copy is fine.
        snap = self._store.snapshot()
        positive = snap.value[snap.value > 0]
        positive.sort()
