"""R011 fixture: exception swallowing on a resilience path.

Parsed, never imported.
"""


def _black_hole(exc) -> None:
    pass


def _indirect(exc) -> None:
    _black_hole(exc)


def bare_hit(fn):
    try:
        return fn()
    except:  # noqa: E722
        pass


def broad_hit(fn):
    try:
        return fn()
    except Exception:
        pass


def laundered_hit(fn):
    # The handler "does something", but the helper chain is inert —
    # only the interprocedural inert-function fixpoint catches this.
    try:
        return fn()
    except Exception as exc:
        _indirect(exc)


def suppressed_hit(fn):
    try:
        return fn()
    except Exception:  # reprolint: disable=R011
        pass


def sentinel_ok(fn):
    try:
        return fn()
    except Exception:
        return None


def reraise_ok(fn):
    try:
        return fn()
    except Exception:
        raise


def recorded_ok(fn, recorder):
    try:
        return fn()
    except Exception:
        recorder.event("call-failed")


def narrow_ok(fn):
    try:
        return fn()
    except KeyError:
        pass
