"""R009 fixture: ambient nondeterminism flowing into canonical sinks.

Uses ``time.perf_counter``/``time.monotonic`` (tolerated by R001 for
benchmarking) so every finding in this file belongs to R009 alone.
Parsed, never imported.
"""

import time
from typing import Set

from repro.store import EventStore


def _jitter() -> float:
    return time.perf_counter()


def _laundered() -> float:
    return _jitter() * 0.5


def _relay(value: float) -> float:
    return value


class FeedbackFeed:
    def __init__(self) -> None:
        self._store = EventStore()

    def direct_hit(self) -> None:
        self._store.append("r", "t", time.monotonic(), 1)

    def multi_hop_hit(self) -> None:
        # source -> _jitter -> _laundered -> _relay -> sink: only the
        # interprocedural fixpoint sees this one.
        self._store.append("r", "t", _relay(_laundered()), 2)

    def suppressed_hit(self) -> None:
        self._store.append("r", "t", _laundered(), 3)  # reprolint: disable=R009

    def clean_path(self, value: float, now: int) -> None:
        self._store.append("r", "t", value, now)

    def order_hit(self, peers: Set[str]) -> None:
        for peer in peers:
            self._store.append(peer, "t", 1.0, 4)

    def order_sorted_ok(self, peers: Set[str]) -> None:
        for peer in sorted(peers):
            self._store.append(peer, "t", 1.0, 5)

    def bench_ok(self) -> float:
        # Wall time for reporting only — never reaches a sink.
        started = time.perf_counter()
        return time.perf_counter() - started
