"""R009 fixture: tainted values reaching telemetry records.

Parsed, never imported.
"""

import time

from repro.obs.recorder import get_recorder


def _stamp() -> float:
    return time.monotonic()


def gauge_hit() -> None:
    rec = get_recorder()
    rec.gauge("rank_latency", _stamp())


def gauge_ok(now: float) -> None:
    rec = get_recorder()
    rec.gauge("rank_latency", now)
