"""R009 fixture: wall-clock laundering into serve ingest sinks.

The serve determinism contract says ingest tick assignment and the
ingest log are pure functions of caller-supplied sim time.  This
mini-project launders ``time.perf_counter``/``time.monotonic``
(tolerated by R001 for benchmarking, so every finding here belongs to
R009 alone) through helpers into the three serve sinks: an ``Arrival``
constructor, an ``IngestRecord`` constructor, and
``AdmissionController.admit``.  Parsed, never imported.
"""

import time

from repro.serve.ingest import AdmissionController
from repro.serve.protocol import Arrival, IngestRecord


def _wall_ticks() -> int:
    return int(time.perf_counter() * 1024)


def _laundered_now() -> int:
    return _wall_ticks() + 1


class BadIngest:
    def __init__(self) -> None:
        self._admission = AdmissionController()

    def direct_arrival_hit(self) -> Arrival:
        return Arrival(
            client_tick=int(time.monotonic()),  # -> ingest log
            client_id="c0",
            client_seq=0,
            tenant="t0",
            kind="rank",
            ttl_ticks=1,
            payload=(),
        )

    def laundered_admit_hit(self, arrival: Arrival) -> None:
        # source -> _wall_ticks -> _laundered_now -> admit: only the
        # interprocedural fixpoint sees this one.
        self._admission.admit(arrival, _laundered_now())

    def record_hit(self, arrival: Arrival) -> IngestRecord:
        return IngestRecord(
            tick=_wall_ticks(),
            batch=0,
            decision="admitted",
            wait_ticks=0,
            exec_tick=1,
            arrival=arrival,
        )

    def suppressed_hit(self, arrival: Arrival) -> None:
        self._admission.admit(arrival, _wall_ticks())  # reprolint: disable=R009

    def clean_path(self, arrival: Arrival, batch: int) -> None:
        # Caller-supplied sim time: exactly what the contract wants.
        self._admission.admit(arrival, batch)

    def bench_ok(self) -> float:
        # Wall time for reporting only — never reaches a sink.
        started = time.perf_counter_ns()
        return (time.perf_counter_ns() - started) / 1e9
