"""R005 fixture: world-builder registrations that cannot pickle."""


def register_world_builder(name, builder, overwrite=False):
    """Fixture stand-in so the module parses like the real one."""


def make_world(seed, **params):
    return {"seed": seed, **params}


def _module_level_builder(seed, **params):
    return make_world(seed, **params)


register_world_builder("ok-world", _module_level_builder)

register_world_builder(
    "lambda-world", lambda seed, **params: make_world(seed)  # R005
)


def _register_locally():
    def local_builder(seed, **params):                        # closure
        return make_world(seed, **params)

    register_world_builder("local-world", local_builder)      # R005 (x2)


def _register_suppressed():
    def quiet_builder(seed, **params):
        return make_world(seed, **params)

    # both the closure and the in-function registration, silenced:
    register_world_builder("quiet", quiet_builder)  # reprolint: disable=R005


def register_shard_world_builder(name, builder, overwrite=False):
    """Fixture stand-in for the sharded runner's registry."""


def _module_level_shard_builder(seed, consumer_indices=None, **params):
    return make_world(seed, **params)


register_shard_world_builder("ok-shard", _module_level_shard_builder)

register_shard_world_builder(
    "lambda-shard", lambda seed, **params: make_world(seed)  # R005
)
