"""R006 fixture: bare float equality on score/trust values."""


def classify(score, trust, rating, rating_count, label):
    if score == 0.5:                      # R006
        return "prior"
    if trust != 1.0:                      # R006
        return "imperfect"
    if rating == score:                   # R006
        return "agreement"
    if rating_count == 0:                 # integer count: fine
        return "no evidence"
    if label == "spam":                   # string equality: fine
        return "spam"
    if score > 0.9:                       # ordering: fine
        return "excellent"
    if abs(rating - score) <= 1e-9:       # explicit tolerance: fine
        return "close"
    if score == 1.0:  # reprolint: disable=R006
        return "suppressed exact check"
    return "other"
