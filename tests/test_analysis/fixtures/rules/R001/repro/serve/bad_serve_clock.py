"""R001 fixture: syntactic wall-clock reads in the serve layer.

The serve ingest path stamps arrivals with *caller-supplied* sim time;
reading the wall clock here is exactly the bug the deterministic-replay
gate exists to prevent.  Parsed, never imported.

Values never flow into a canonical sink, so every finding in this file
belongs to R001 alone (R009 stays quiet).
"""

import time
from datetime import datetime


def stamp_arrival() -> float:
    now = time.time()              # R001: wall clock in serve path
    return now


def arrival_id() -> str:
    import uuid

    return str(uuid.uuid4())       # R001: nondeterministic id


def log_line() -> str:
    return datetime.now().isoformat()  # R001: wall clock in serve path


def suppressed_stamp() -> float:
    return time.time()  # reprolint: disable=R001 - ops-only log banner


def bench_ok() -> float:
    # perf counters are tolerated by R001 (benchmarking only).
    started = time.perf_counter()
    return time.perf_counter() - started
