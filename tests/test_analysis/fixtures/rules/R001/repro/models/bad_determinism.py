"""R001 fixture: every ambient-nondeterminism source the rule bans."""

import os
import random
import time
import uuid
from datetime import datetime

import numpy as np


def ambient_draws():
    a = random.random()                       # R001: global random state
    b = np.random.rand(3)                     # R001: numpy global singleton
    np.random.seed(0)                         # R001: reseeding the singleton
    c = time.time()                           # R001: wall-clock read
    d = datetime.now()                        # R001: wall-clock read
    e = uuid.uuid4()                          # R001: nondeterministic id
    f = os.urandom(8)                         # R001: OS entropy
    return a, b, c, d, e, f


def suppressed_draw():
    return random.random()  # reprolint: disable=R001


def blessed_constructions(seed):
    rng = np.random.default_rng(seed)
    seq = np.random.SeedSequence(seed)
    instance = random.Random(seed)
    stamp = time.perf_counter()
    return rng, seq, instance, stamp
