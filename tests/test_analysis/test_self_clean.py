"""The shipped tree must lint clean — the CI gate's exact invocation.

These tests are the acceptance criterion for the linter itself: every
invariant rule passes on ``src/repro`` with an *empty* baseline, so a
regression in any model/runtime file (or an over-eager new rule) shows
up here before it reaches CI.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

from repro.analysis.core import run_analysis
from repro.analysis.rules import default_registry
from tests.test_analysis.conftest import REPO_ROOT, SRC_REPRO


def test_src_repro_lints_clean_in_process():
    findings = run_analysis([SRC_REPRO], default_registry().rules())
    assert findings == [], "\n".join(
        f"{f.path}:{f.line}: {f.rule} {f.message}" for f in findings
    )


def test_cli_smoke_exits_zero():
    """``python -m repro.analysis src/repro`` — the CI lint gate."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    result = subprocess.run(
        [sys.executable, "-m", "repro.analysis", "src/repro",
         "--format", "json"],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, result.stdout + result.stderr
    payload = json.loads(result.stdout)
    assert payload["total"] == 0
    assert payload["files_scanned"] > 80


def test_shipped_baseline_is_empty():
    """Day-one strictness: nothing is grandfathered in the repo."""
    baseline = REPO_ROOT / "reprolint-baseline.json"
    payload = json.loads(baseline.read_text())
    assert payload == {"version": 1, "findings": []}


def test_list_rules_names_the_catalogue():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    result = subprocess.run(
        [sys.executable, "-m", "repro.analysis", "--list-rules"],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert result.returncode == 0
    for rule_id in ("R001", "R002", "R003", "R004", "R005", "R006",
                    "R007", "R008", "R009", "R010", "R011"):
        assert rule_id in result.stdout
