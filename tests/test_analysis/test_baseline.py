"""Baseline semantics: exclusion, counting, drift tolerance, round-trip."""

from __future__ import annotations

import json

import pytest

from repro.analysis.baseline import Baseline, BaselineError, describe_unused
from repro.analysis.core import Finding


def _finding(path="models/m.py", line=3, rule="R002",
             content="for p in peers:") -> Finding:
    return Finding(
        path=path, line=line, col=0, rule=rule,
        message="msg", content=content,
    )


class TestBaselineMatching:
    def test_entry_excludes_matching_finding(self, tmp_path):
        finding = _finding()
        path = tmp_path / "baseline.json"
        Baseline.empty().write(path, [finding])
        loaded = Baseline.load(path)
        fresh, grandfathered = loaded.filter([finding])
        assert fresh == []
        assert grandfathered == 1

    def test_line_drift_still_matches(self, tmp_path):
        """Content-keyed matching survives unrelated edits above."""
        path = tmp_path / "baseline.json"
        Baseline.empty().write(path, [_finding(line=3)])
        drifted = _finding(line=41)
        fresh, grandfathered = Baseline.load(path).filter([drifted])
        assert fresh == []
        assert grandfathered == 1

    def test_each_entry_absorbs_exactly_one(self, tmp_path):
        path = tmp_path / "baseline.json"
        Baseline.empty().write(path, [_finding(line=3)])
        duplicate_violations = [_finding(line=3), _finding(line=9)]
        fresh, grandfathered = Baseline.load(path).filter(
            duplicate_violations
        )
        assert grandfathered == 1
        assert [f.line for f in fresh] == [9]

    def test_different_rule_not_absorbed(self, tmp_path):
        path = tmp_path / "baseline.json"
        Baseline.empty().write(path, [_finding(rule="R002")])
        fresh, grandfathered = Baseline.load(path).filter(
            [_finding(rule="R006")]
        )
        assert grandfathered == 0
        assert len(fresh) == 1

    def test_unused_entries_reported(self):
        baseline = Baseline.from_findings([_finding(), _finding(line=9)])
        unused = describe_unused(baseline, [_finding()])
        assert len(unused) == 1
        assert unused[0]["rule"] == "R002"


class TestBaselineFile:
    def test_round_trip_is_sorted_and_stable(self, tmp_path):
        findings = [
            _finding(path="models/z.py", line=9),
            _finding(path="models/a.py", line=2),
            _finding(path="models/a.py", line=1, rule="R001"),
        ]
        path = tmp_path / "baseline.json"
        Baseline.empty().write(path, findings)
        first = path.read_text()
        Baseline.empty().write(path, list(reversed(findings)))
        assert path.read_text() == first  # input order never leaks
        order = [
            (e["path"], e["line"])
            for e in json.loads(first)["findings"]
        ]
        assert order == sorted(order)

    def test_malformed_json_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("{not json")
        with pytest.raises(BaselineError):
            Baseline.load(path)

    def test_wrong_shape_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "findings": []}))
        with pytest.raises(BaselineError):
            Baseline.load(path)

    def test_missing_keys_raise(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(
            json.dumps({"version": 1, "findings": [{"path": "x"}]})
        )
        with pytest.raises(BaselineError):
            Baseline.load(path)
