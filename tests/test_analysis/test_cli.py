"""CLI behaviour: exit codes, reporters, baseline wiring, determinism."""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.baseline import Baseline
from repro.analysis.cli import (
    EXIT_CLEAN,
    EXIT_FINDINGS,
    EXIT_USAGE,
    run,
)
from repro.analysis.config import AnalysisConfig
from repro.analysis.core import run_analysis
from repro.analysis.rules import default_registry
from tests.test_analysis.conftest import FIXTURE_ROOT


def _config(**overrides) -> AnalysisConfig:
    base = dict(paths=[FIXTURE_ROOT])
    base.update(overrides)
    return AnalysisConfig(**base)


class TestExitCodes:
    def test_findings_exit_one(self, capsys):
        assert run(_config()) == EXIT_FINDINGS
        out = capsys.readouterr().out
        assert "R001" in out and "finding(s)" in out

    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        (tmp_path / "clean.py").write_text("x = 1\n")
        assert run(_config(paths=[tmp_path])) == EXIT_CLEAN
        assert "clean" in capsys.readouterr().out

    def test_unknown_rule_is_usage_error(self, capsys):
        assert run(_config(select=["R999"])) == EXIT_USAGE
        assert "unknown rule" in capsys.readouterr().err

    def test_missing_path_is_usage_error(self, capsys):
        assert (
            run(_config(paths=[Path("/nonexistent/nowhere")]))
            == EXIT_USAGE
        )

    def test_select_narrows_rules(self, capsys):
        assert run(_config(select=["R005"])) == EXIT_FINDINGS
        out = capsys.readouterr().out
        assert "R005" in out
        assert "R001" not in out

    def test_ignore_drops_rules(self, capsys):
        code = run(
            _config(ignore=["R001", "R002", "R003", "R004", "R005",
                            "R006", "R007", "R008", "R009", "R010",
                            "R011"])
        )
        assert code == EXIT_CLEAN
        capsys.readouterr()


class TestJsonReport:
    def test_json_payload_shape(self, tmp_path, capsys):
        out_file = tmp_path / "report.json"
        code = run(
            _config(output_format="json", output_file=out_file)
        )
        assert code == EXIT_FINDINGS
        payload = json.loads(out_file.read_text())
        assert payload["total"] == len(payload["findings"])
        assert payload["by_rule"]["R001"] == 10
        assert set(payload["findings"][0]) == {
            "path", "line", "col", "rule", "message", "content",
        }
        # stdout carries the same report
        assert json.loads(capsys.readouterr().out) == payload

    def test_report_is_deterministic_across_runs(self, capsys):
        rules = default_registry().rules()
        first = run_analysis([FIXTURE_ROOT], rules)
        second = run_analysis([FIXTURE_ROOT], rules)
        assert first == second
        keys = [(f.path, f.line, f.col, f.rule) for f in first]
        assert keys == sorted(keys)
        capsys.readouterr()


class TestSarifReport:
    def test_sarif_payload_shape(self, tmp_path, capsys):
        out_file = tmp_path / "report.sarif"
        code = run(
            _config(output_format="sarif", output_file=out_file)
        )
        assert code == EXIT_FINDINGS
        payload = json.loads(out_file.read_text())
        assert payload["version"] == "2.1.0"
        assert "sarif-schema-2.1.0" in payload["$schema"]
        (sarif_run,) = payload["runs"]
        driver = sarif_run["tool"]["driver"]
        assert driver["name"] == "reprolint"
        rule_ids = [r["id"] for r in driver["rules"]]
        assert rule_ids == sorted(rule_ids)
        assert {"R001", "R009", "R010", "R011"} <= set(rule_ids)
        assert sarif_run["originalUriBaseIds"]["PACKAGEROOT"] == {
            "uri": "src/repro/"
        }
        capsys.readouterr()

    def test_sarif_results_match_findings(self, tmp_path, capsys):
        out_file = tmp_path / "report.sarif"
        run(_config(output_format="sarif", output_file=out_file))
        capsys.readouterr()
        payload = json.loads(out_file.read_text())
        sarif_run = payload["runs"][0]
        findings = run_analysis(
            [FIXTURE_ROOT], default_registry().rules()
        )
        results = sarif_run["results"]
        assert len(results) == len(findings)
        for result, finding in zip(results, findings):
            assert result["ruleId"] == finding.rule
            assert result["level"] == "error"
            assert result["message"]["text"] == finding.message
            (loc,) = result["locations"]
            phys = loc["physicalLocation"]
            assert phys["artifactLocation"] == {
                "uri": finding.path,
                "uriBaseId": "PACKAGEROOT",
            }
            assert phys["region"]["startLine"] == finding.line
            assert phys["region"]["startColumn"] == finding.col + 1
        props = sarif_run["properties"]
        assert props["filesScanned"] > 0
        assert props["grandfathered"] == 0

    def test_clean_tree_emits_empty_results(self, tmp_path, capsys):
        (tmp_path / "clean.py").write_text("x = 1\n")
        out_file = tmp_path / "report.sarif"
        code = run(
            _config(
                paths=[tmp_path],
                output_format="sarif",
                output_file=out_file,
            )
        )
        assert code == EXIT_CLEAN
        payload = json.loads(out_file.read_text())
        assert payload["runs"][0]["results"] == []
        capsys.readouterr()


class TestUpdateBaseline:
    def test_update_rewrites_baseline_and_exits_clean(
        self, tmp_path, capsys
    ):
        baseline = tmp_path / "baseline.json"
        code = run(_config(baseline=baseline, update_baseline=True))
        assert code == EXIT_CLEAN
        assert "baseline updated" in capsys.readouterr().out
        # the refreshed baseline grandfathers the whole tree
        assert run(_config(baseline=baseline)) == EXIT_CLEAN
        capsys.readouterr()

    def test_update_defaults_to_cwd(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        assert run(_config(update_baseline=True)) == EXIT_CLEAN
        capsys.readouterr()
        written = tmp_path / "reprolint-baseline.json"
        assert written.exists()
        payload = json.loads(written.read_text())
        assert payload["version"] == 1
        assert len(payload["findings"]) > 0

    def test_update_prunes_stale_entries(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        proj = tmp_path / "proj" / "repro" / "models"
        proj.mkdir(parents=True)
        bad = proj / "fresh.py"
        bad.write_text(
            "import random\n\n\ndef draw():\n    return random.random()\n"
        )
        run(
            _config(
                paths=[tmp_path / "proj"],
                baseline=baseline,
                update_baseline=True,
            )
        )
        bad.write_text("x = 1\n")
        run(
            _config(
                paths=[tmp_path / "proj"],
                baseline=baseline,
                update_baseline=True,
            )
        )
        capsys.readouterr()
        payload = json.loads(baseline.read_text())
        assert payload["findings"] == []


class TestBaselineWorkflow:
    def test_write_then_lint_is_clean(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        assert (
            run(_config(baseline=baseline, write_baseline=True))
            == EXIT_CLEAN
        )
        code = run(_config(baseline=baseline))
        assert code == EXIT_CLEAN
        assert "grandfathered" in capsys.readouterr().out

    def test_new_violation_beats_stale_baseline(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        run(_config(baseline=baseline, write_baseline=True))
        extra = tmp_path / "proj" / "repro" / "models"
        extra.mkdir(parents=True)
        (extra / "fresh.py").write_text(
            "import random\n\n\ndef draw():\n    return random.random()\n"
        )
        code = run(
            _config(
                paths=[FIXTURE_ROOT, tmp_path / "proj"],
                baseline=baseline,
            )
        )
        assert code == EXIT_FINDINGS
        out = capsys.readouterr().out
        assert "fresh.py" in out

    def test_write_baseline_without_path_is_usage_error(self, capsys):
        assert run(_config(write_baseline=True)) == EXIT_USAGE
        assert "--write-baseline" in capsys.readouterr().err

    def test_empty_baseline_grandfathers_nothing(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        Baseline.empty().write(baseline, [])
        assert run(_config(baseline=baseline)) == EXIT_FINDINGS
        capsys.readouterr()
