"""Flow-engine unit tests: symbol resolution, summary fixpoints, and
cross-module taint propagation — the machinery under R009/R010/R011.

The rule fixtures under ``fixtures/rules`` are single-module; these
tests build tiny multi-module projects in ``tmp_path`` to check that
summaries compose across imports.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict

from repro.analysis.core import build_project
from repro.analysis.flow import RNG, FlowAnalysis
from repro.analysis.rules.taint import ReproFlowPolicy


def _analyze(tmp_path: Path, files: Dict[str, str]) -> FlowAnalysis:
    for relpath, source in files.items():
        path = tmp_path / "repro" / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
    project = build_project([tmp_path])
    return FlowAnalysis(project, ReproFlowPolicy())


class TestSummaries:
    def test_source_return_summary(self, tmp_path):
        flow = _analyze(
            tmp_path,
            {
                "services/h.py": (
                    "import time\n\n\n"
                    "def jitter() -> float:\n"
                    "    return time.perf_counter()\n"
                ),
            },
        )
        summary = flow.summaries["services/h.py::jitter"]
        assert summary.returns_kinds() == frozenset({RNG})

    def test_identity_function_returns_its_param(self, tmp_path):
        flow = _analyze(
            tmp_path,
            {
                "services/h.py": (
                    "def relay(value):\n    return value\n"
                ),
            },
        )
        summary = flow.summaries["services/h.py::relay"]
        assert summary.return_params() == frozenset({0})

    def test_mutating_helper_summary(self, tmp_path):
        flow = _analyze(
            tmp_path,
            {
                "services/h.py": (
                    "def clobber(rows):\n    rows.sort()\n"
                ),
            },
        )
        summary = flow.summaries["services/h.py::clobber"]
        assert summary.mutated_params == frozenset({0})

    def test_fixpoint_converges_quickly(self, tmp_path):
        # Mutually recursive pair: the fixpoint must still terminate
        # well inside the safety valve, with both returns tainted.
        flow = _analyze(
            tmp_path,
            {
                "services/h.py": (
                    "import time\n\n\n"
                    "def ping(n):\n"
                    "    if n:\n"
                    "        return pong(n - 1)\n"
                    "    return time.perf_counter()\n\n\n"
                    "def pong(n):\n"
                    "    return ping(n)\n"
                ),
            },
        )
        assert flow.rounds < FlowAnalysis.MAX_ROUNDS
        for name in ("ping", "pong"):
            summary = flow.summaries[f"services/h.py::{name}"]
            assert RNG in summary.returns_kinds()


class TestCrossModuleTaint:
    def test_taint_crosses_an_import(self, tmp_path):
        flow = _analyze(
            tmp_path,
            {
                "services/clock.py": (
                    "import time\n\n\n"
                    "def jitter() -> float:\n"
                    "    return time.perf_counter()\n"
                ),
                "services/feed.py": (
                    "from repro.services.clock import jitter\n"
                    "from repro.store import EventStore\n\n\n"
                    "def publish(store: EventStore) -> None:\n"
                    "    store.append('r', 't', jitter(), 1)\n"
                ),
            },
        )
        module = flow.project.module("services/feed.py")
        events = flow.taint_events(module)
        assert len(events) == 1
        assert events[0].sink == "EventStore.append"
        assert RNG in events[0].kinds

    def test_sorted_sanitizes_order_not_rng(self, tmp_path):
        flow = _analyze(
            tmp_path,
            {
                "services/feed.py": (
                    "import time\n"
                    "from repro.store import EventStore\n\n\n"
                    "def by_peer(store: EventStore, peers: set) -> None:\n"
                    "    for peer in sorted(peers):\n"
                    "        store.append(peer, 't', 1.0, 1)\n\n\n"
                    "def stamped(store: EventStore) -> None:\n"
                    "    value = sorted([time.perf_counter()])[0]\n"
                    "    store.append('r', 't', value, 1)\n"
                ),
            },
        )
        module = flow.project.module("services/feed.py")
        events = flow.taint_events(module)
        # sorting launders iteration order but not clock values
        assert len(events) == 1
        assert events[0].kinds == frozenset({RNG})

    def test_sink_reached_through_param_forwarding(self, tmp_path):
        # The helper never names a source; it *is* the sink for its
        # caller's tainted argument (sink_params composition).
        flow = _analyze(
            tmp_path,
            {
                "services/feed.py": (
                    "import time\n"
                    "from repro.store import EventStore\n\n\n"
                    "def record(store: EventStore, value) -> None:\n"
                    "    store.append('r', 't', value, 1)\n\n\n"
                    "def publish(store: EventStore) -> None:\n"
                    "    record(store, time.perf_counter())\n"
                ),
            },
        )
        module = flow.project.module("services/feed.py")
        events = flow.taint_events(module)
        lines = {e.lineno for e in events}
        # one event at the forwarding call site, attributed via record
        assert any(e.via and "record" in e.via for e in events)
        assert 10 in lines


class TestFrozenPropagation:
    def test_snapshot_frozen_through_helper_return(self, tmp_path):
        flow = _analyze(
            tmp_path,
            {
                "sim/view.py": (
                    "from repro.store import EventStore\n\n\n"
                    "def grab(store: EventStore):\n"
                    "    return store.snapshot()\n\n\n"
                    "def clobber(store: EventStore) -> None:\n"
                    "    snap = grab(store)\n"
                    "    snap.value[0] = 1.0\n"
                ),
            },
        )
        summary = flow.summaries["sim/view.py::grab"]
        assert summary.returns_frozen
        module = flow.project.module("sim/view.py")
        events = flow.mutation_events(module)
        assert len(events) == 1
        assert events[0].lineno == 10
