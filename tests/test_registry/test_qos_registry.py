"""Tests for the central QoS registry and feedback store."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import RegistryError
from repro.common.records import Feedback
from repro.registry.qos_registry import CentralQoSRegistry, FeedbackStore
from repro.sim.network import Network


def fb(rater="c0", target="s0", time=0.0, rating=0.8):
    return Feedback(rater=rater, target=target, time=time, rating=rating)


class TestFeedbackStore:
    def test_add_and_lookup(self):
        store = FeedbackStore()
        store.add(fb())
        store.add(fb(rater="c1"))
        assert len(store.for_target("s0")) == 2
        assert len(store.by_rater("c0")) == 1
        assert len(store) == 2

    def test_ordering_is_insertion(self):
        store = FeedbackStore()
        store.add(fb(time=5.0, rating=0.1))
        store.add(fb(time=1.0, rating=0.9))
        ratings = [f.rating for f in store.for_target("s0")]
        assert ratings == [0.1, 0.9]

    def test_all_sorted_by_time(self):
        store = FeedbackStore()
        store.add(fb(time=5.0, target="a"))
        store.add(fb(time=1.0, target="b"))
        assert [f.time for f in store.all()] == [1.0, 5.0]

    def test_prune_before(self):
        store = FeedbackStore()
        store.extend([fb(time=float(t)) for t in range(10)])
        dropped = store.prune_before(5.0)
        assert dropped == 5
        assert len(store) == 5
        assert all(f.time >= 5.0 for f in store.for_target("s0"))

    def test_prune_clears_empty_targets(self):
        store = FeedbackStore()
        store.add(fb(time=0.0))
        store.prune_before(1.0)
        assert store.targets() == []

    def test_targets_and_raters(self):
        store = FeedbackStore()
        store.add(fb(rater="a", target="x"))
        store.add(fb(rater="b", target="y"))
        assert set(store.targets()) == {"x", "y"}
        assert set(store.raters()) == {"a", "b"}

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["r1", "r2", "r3"]),
                st.sampled_from(["t1", "t2"]),
                st.floats(0.0, 100.0),
            ),
            max_size=40,
        ),
        st.floats(0.0, 100.0),
    )
    def test_property_prune_consistency(self, entries, cutoff):
        store = FeedbackStore()
        for rater, target, time in entries:
            store.add(Feedback(rater=rater, target=target, time=time,
                               rating=0.5))
        expected_kept = sum(1 for _, _, t in entries if t >= cutoff)
        dropped = store.prune_before(cutoff)
        assert dropped == len(entries) - expected_kept
        assert len(store) == expected_kept
        # Both indexes agree after pruning.
        by_target = sum(len(store.for_target(t)) for t in ["t1", "t2"])
        by_rater = sum(len(store.by_rater(r)) for r in ["r1", "r2", "r3"])
        assert by_target == by_rater == expected_kept


class TestCentralQoSRegistry:
    def test_report_and_query(self):
        reg = CentralQoSRegistry()
        assert reg.report(fb())
        results = reg.query("c1", "s0")
        assert len(results) == 1
        assert reg.reports_received == 1
        assert reg.queries_served == 1

    def test_messages_accounted(self):
        net = Network(rng=0)
        reg = CentralQoSRegistry(network=net)
        reg.report(fb())
        reg.query("c1", "s0")
        # 1 report + 1 query + 1 response
        assert net.stats.total_messages == 3
        assert net.stats.received_by["qos-registry"] == 2

    def test_failed_registry_drops_reports(self):
        reg = CentralQoSRegistry()
        reg.fail()
        assert not reg.report(fb())
        assert len(reg.store) == 0

    def test_failed_registry_raises_on_query(self):
        reg = CentralQoSRegistry()
        reg.fail()
        with pytest.raises(RegistryError):
            reg.query("c0", "s0")

    def test_network_failure_loses_report(self):
        net = Network(rng=0)
        reg = CentralQoSRegistry(network=net)
        net.fail_node(reg.registry_id)
        assert not reg.report(fb())

    def test_score_with(self):
        reg = CentralQoSRegistry()
        reg.report(fb(rating=0.4))
        reg.report(fb(rater="c1", rating=0.8))
        mean = reg.score_with(
            lambda fbs: sum(f.rating for f in fbs) / len(fbs), "s0"
        )
        assert mean == pytest.approx(0.6)

    def test_query_many(self):
        reg = CentralQoSRegistry()
        reg.report(fb(target="a"))
        reg.report(fb(target="b"))
        result = reg.query_many("c0", ["a", "b", "c"])
        assert len(result["a"]) == 1
        assert result["c"] == []


# ---------------------------------------------------------------------------
# Resilient client: retry + breaker + stale fallback
# ---------------------------------------------------------------------------

from repro.faults.degradation import StaleCache  # noqa: E402
from repro.faults.resilience import (  # noqa: E402
    BreakerBoard,
    BreakerState,
    RetryPolicy,
)
from repro.registry.qos_registry import (  # noqa: E402
    FRESH,
    STALE,
    UNAVAILABLE,
    ResilientQoSClient,
)


def make_client(registry=None, **kwargs):
    registry = registry or CentralQoSRegistry()
    kwargs.setdefault("retry", RetryPolicy(max_attempts=2, rng=0))
    return registry, ResilientQoSClient(registry, **kwargs)


class TestResilientQoSClient:
    def test_fresh_query_passes_through(self):
        reg, client = make_client()
        reg.report(fb(rating=0.7))
        result = client.query("c0", "s0", now=0.0)
        assert result.source == FRESH
        assert result.confidence == 1.0
        assert [f.rating for f in result.feedback] == [0.7]
        assert client.fresh_queries == 1

    def test_outage_serves_stale_with_discounted_confidence(self):
        reg, client = make_client()
        reg.report(fb(rating=0.7))
        client.query("c0", "s0", now=0.0)  # primes the cache
        reg.fail()
        result = client.query("c0", "s0", now=10.0)
        assert result.source == STALE
        assert 0.0 < result.confidence < 1.0
        assert [f.rating for f in result.feedback] == [0.7]
        assert client.stale_queries == 1

    def test_outage_with_cold_cache_is_unavailable(self):
        reg, client = make_client()
        reg.fail()
        result = client.query("c0", "s0", now=0.0)
        assert result.source == UNAVAILABLE
        assert result.confidence == 0.0
        assert result.feedback == []
        assert client.unavailable_queries == 1

    def test_cache_none_disables_fallback(self):
        reg, client = make_client(cache=None)
        reg.report(fb())
        client.query("c0", "s0", now=0.0)
        reg.fail()
        assert client.query("c0", "s0", now=1.0).source == UNAVAILABLE

    def test_retry_recovers_from_transient_message_loss(self):
        net = Network(rng=0)
        reg = CentralQoSRegistry(network=net)
        reg.report(fb())

        class FlakyOnce:
            """Drop exactly the first qos-query, then behave."""

            def __init__(self):
                self.fired = False

            def perturb(self, kind):
                from repro.faults.plan import MessagePerturbation

                if kind == "qos-query" and not self.fired:
                    self.fired = True
                    return MessagePerturbation(drop=True)
                return MessagePerturbation()

        net.faults = FlakyOnce()
        _, client = make_client(registry=reg)
        result = client.query("c0", "s0", now=0.0)
        assert result.source == FRESH
        assert client.retry.retries_used == 1

    def test_breaker_opens_after_repeated_failures(self):
        reg, client = make_client(
            breakers=BreakerBoard(min_calls=4, window=10, recovery_timeout=5.0)
        )
        reg.fail()
        for i in range(4):
            client.query("c0", "s0", now=float(i))
        assert client.breaker.state is BreakerState.OPEN
        # while open, the registry is not even contacted
        served_before = reg.queries_served
        client.query("c0", "s0", now=4.5)
        assert reg.queries_served == served_before

    def test_breaker_half_open_probe_closes_after_heal(self):
        reg, client = make_client(
            breakers=BreakerBoard(min_calls=2, window=4, recovery_timeout=2.0)
        )
        reg.report(fb())
        reg.fail()
        client.query("c0", "s0", now=0.0)
        client.query("c0", "s0", now=0.0)
        assert client.breaker.state is BreakerState.OPEN
        reg.heal()
        result = client.query("c0", "s0", now=3.0)  # half-open trial
        assert result.source == FRESH
        assert client.breaker.state is BreakerState.CLOSED
        assert client.breaker.saw_states(
            BreakerState.OPEN, BreakerState.HALF_OPEN, BreakerState.CLOSED
        )

    def test_report_is_single_shot_and_breaker_gated(self):
        reg, client = make_client(
            breakers=BreakerBoard(min_calls=2, window=4, recovery_timeout=9.0)
        )
        reg.fail()
        assert not client.report(fb(), now=0.0)
        assert not client.report(fb(), now=0.0)
        assert client.reports_lost == 2
        # breaker now open: reports are refused without touching the wire
        assert not client.report(fb(), now=1.0)
        assert client.reports_lost == 3
        reg.heal()
        assert client.breaker.state is BreakerState.OPEN
        assert not client.report(fb(), now=2.0)  # still within recovery

    def test_successful_report_counts(self):
        reg, client = make_client()
        assert client.report(fb(), now=0.0)
        assert client.reports_sent == 1
        assert len(reg.store) == 1

    def test_stale_confidence_decays_with_cache_age(self):
        reg, client = make_client(
            cache=StaleCache()  # default half-life 20
        )
        reg.report(fb())
        client.query("c0", "s0", now=0.0)
        reg.fail()
        early = client.query("c0", "s0", now=5.0).confidence
        late = client.query("c0", "s0", now=40.0).confidence
        assert early > late > 0.0
