"""Tests for the central QoS registry and feedback store."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import RegistryError
from repro.common.records import Feedback
from repro.registry.qos_registry import CentralQoSRegistry, FeedbackStore
from repro.sim.network import Network


def fb(rater="c0", target="s0", time=0.0, rating=0.8):
    return Feedback(rater=rater, target=target, time=time, rating=rating)


class TestFeedbackStore:
    def test_add_and_lookup(self):
        store = FeedbackStore()
        store.add(fb())
        store.add(fb(rater="c1"))
        assert len(store.for_target("s0")) == 2
        assert len(store.by_rater("c0")) == 1
        assert len(store) == 2

    def test_ordering_is_insertion(self):
        store = FeedbackStore()
        store.add(fb(time=5.0, rating=0.1))
        store.add(fb(time=1.0, rating=0.9))
        ratings = [f.rating for f in store.for_target("s0")]
        assert ratings == [0.1, 0.9]

    def test_all_sorted_by_time(self):
        store = FeedbackStore()
        store.add(fb(time=5.0, target="a"))
        store.add(fb(time=1.0, target="b"))
        assert [f.time for f in store.all()] == [1.0, 5.0]

    def test_prune_before(self):
        store = FeedbackStore()
        store.extend([fb(time=float(t)) for t in range(10)])
        dropped = store.prune_before(5.0)
        assert dropped == 5
        assert len(store) == 5
        assert all(f.time >= 5.0 for f in store.for_target("s0"))

    def test_prune_clears_empty_targets(self):
        store = FeedbackStore()
        store.add(fb(time=0.0))
        store.prune_before(1.0)
        assert store.targets() == []

    def test_targets_and_raters(self):
        store = FeedbackStore()
        store.add(fb(rater="a", target="x"))
        store.add(fb(rater="b", target="y"))
        assert set(store.targets()) == {"x", "y"}
        assert set(store.raters()) == {"a", "b"}

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["r1", "r2", "r3"]),
                st.sampled_from(["t1", "t2"]),
                st.floats(0.0, 100.0),
            ),
            max_size=40,
        ),
        st.floats(0.0, 100.0),
    )
    def test_property_prune_consistency(self, entries, cutoff):
        store = FeedbackStore()
        for rater, target, time in entries:
            store.add(Feedback(rater=rater, target=target, time=time,
                               rating=0.5))
        expected_kept = sum(1 for _, _, t in entries if t >= cutoff)
        dropped = store.prune_before(cutoff)
        assert dropped == len(entries) - expected_kept
        assert len(store) == expected_kept
        # Both indexes agree after pruning.
        by_target = sum(len(store.for_target(t)) for t in ["t1", "t2"])
        by_rater = sum(len(store.by_rater(r)) for r in ["r1", "r2", "r3"])
        assert by_target == by_rater == expected_kept


class TestCentralQoSRegistry:
    def test_report_and_query(self):
        reg = CentralQoSRegistry()
        assert reg.report(fb())
        results = reg.query("c1", "s0")
        assert len(results) == 1
        assert reg.reports_received == 1
        assert reg.queries_served == 1

    def test_messages_accounted(self):
        net = Network(rng=0)
        reg = CentralQoSRegistry(network=net)
        reg.report(fb())
        reg.query("c1", "s0")
        # 1 report + 1 query + 1 response
        assert net.stats.total_messages == 3
        assert net.stats.received_by["qos-registry"] == 2

    def test_failed_registry_drops_reports(self):
        reg = CentralQoSRegistry()
        reg.fail()
        assert not reg.report(fb())
        assert len(reg.store) == 0

    def test_failed_registry_raises_on_query(self):
        reg = CentralQoSRegistry()
        reg.fail()
        with pytest.raises(RegistryError):
            reg.query("c0", "s0")

    def test_network_failure_loses_report(self):
        net = Network(rng=0)
        reg = CentralQoSRegistry(network=net)
        net.fail_node(reg.registry_id)
        assert not reg.report(fb())

    def test_score_with(self):
        reg = CentralQoSRegistry()
        reg.report(fb(rating=0.4))
        reg.report(fb(rater="c1", rating=0.8))
        mean = reg.score_with(
            lambda fbs: sum(f.rating for f in fbs) / len(fbs), "s0"
        )
        assert mean == pytest.approx(0.6)

    def test_query_many(self):
        reg = CentralQoSRegistry()
        reg.report(fb(target="a"))
        reg.report(fb(target="b"))
        result = reg.query_many("c0", ["a", "b", "c"])
        assert len(result["a"]) == 1
        assert result["c"] == []
