"""Tests for the UDDI-style functional registry."""

import pytest

from repro.common.errors import RegistryError, UnknownEntityError
from repro.registry.uddi import UDDIRegistry
from repro.services.description import QoSAdvertisement, ServiceDescription


def desc(service="s0", category="weather", version=1):
    return ServiceDescription(
        service=service, provider="p0", category=category, version=version
    )


class TestPublish:
    def test_publish_and_search(self):
        reg = UDDIRegistry()
        reg.publish(desc("s0"))
        reg.publish(desc("s1"))
        reg.publish(desc("s2", category="flights"))
        found = reg.search("weather")
        assert [d.service for d in found] == ["s0", "s1"]

    def test_republish_higher_version(self):
        reg = UDDIRegistry()
        reg.publish(desc(version=1))
        reg.publish(desc(version=2))
        assert reg.describe("s0").version == 2

    def test_stale_republish_rejected(self):
        reg = UDDIRegistry()
        reg.publish(desc(version=2))
        with pytest.raises(RegistryError):
            reg.publish(desc(version=1))

    def test_publish_with_advertisement(self):
        reg = UDDIRegistry()
        ad = QoSAdvertisement(service="s0", claimed={"availability": 0.99})
        reg.publish(desc(), advertisement=ad)
        assert reg.advertisement("s0").claimed["availability"] == 0.99

    def test_mismatched_advertisement_rejected(self):
        reg = UDDIRegistry()
        ad = QoSAdvertisement(service="other", claimed={})
        with pytest.raises(RegistryError):
            reg.publish(desc(), advertisement=ad)

    def test_unpublish(self):
        reg = UDDIRegistry()
        reg.publish(desc())
        reg.unpublish("s0")
        assert "s0" not in reg
        with pytest.raises(UnknownEntityError):
            reg.unpublish("s0")


class TestLookup:
    def test_describe_unknown(self):
        with pytest.raises(UnknownEntityError):
            UDDIRegistry().describe("nope")

    def test_categories(self):
        reg = UDDIRegistry()
        reg.publish(desc("a", category="x"))
        reg.publish(desc("b", category="y"))
        reg.publish(desc("c", category="x"))
        assert reg.categories() == ["x", "y"]

    def test_len_and_contains(self):
        reg = UDDIRegistry()
        reg.publish(desc())
        assert len(reg) == 1
        assert "s0" in reg

    def test_search_counts(self):
        reg = UDDIRegistry()
        reg.publish(desc())
        reg.search("weather")
        reg.search("weather")
        assert reg.search_count == 2
        assert reg.publish_count == 1


class TestFaultInjection:
    def test_failed_registry_raises_everywhere(self):
        reg = UDDIRegistry()
        reg.publish(desc())
        reg.fail()
        assert reg.is_failed
        with pytest.raises(RegistryError):
            reg.search("weather")
        with pytest.raises(RegistryError):
            reg.publish(desc("s9"))
        with pytest.raises(RegistryError):
            reg.describe("s0")

    def test_heal_restores(self):
        reg = UDDIRegistry()
        reg.publish(desc())
        reg.fail()
        reg.heal()
        assert reg.describe("s0").service == "s0"
