"""Tests for repro.common.ids."""

import pytest

from repro.common.ids import IdFactory


class TestIdFactory:
    def test_sequential_ids(self):
        ids = IdFactory()
        assert ids.next("svc") == "svc-0000"
        assert ids.next("svc") == "svc-0001"
        assert ids.next("svc") == "svc-0002"

    def test_prefixes_are_independent(self):
        ids = IdFactory()
        ids.next("svc")
        assert ids.next("provider") == "provider-0000"
        assert ids.next("svc") == "svc-0001"

    def test_count(self):
        ids = IdFactory()
        assert ids.count("svc") == 0
        ids.next("svc")
        ids.next("svc")
        assert ids.count("svc") == 2

    def test_custom_width(self):
        ids = IdFactory(width=2)
        assert ids.next("p") == "p-00"

    def test_width_must_be_positive(self):
        with pytest.raises(ValueError):
            IdFactory(width=0)

    def test_reset(self):
        ids = IdFactory()
        ids.next("svc")
        ids.reset()
        assert ids.next("svc") == "svc-0000"

    def test_ids_sort_in_creation_order(self):
        ids = IdFactory()
        issued = [ids.next("x") for _ in range(20)]
        assert issued == sorted(issued)
