"""Tests for repro.common.randomness."""

import numpy as np

from repro.common.randomness import SeedSequenceFactory, make_rng


class TestMakeRng:
    def test_from_int_is_deterministic(self):
        a = make_rng(42).random()
        b = make_rng(42).random()
        assert a == b

    def test_passthrough_generator(self):
        gen = np.random.default_rng(1)
        assert make_rng(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)


class TestSeedSequenceFactory:
    def test_same_label_same_call_same_stream(self):
        a = SeedSequenceFactory(7).rng("x").random()
        b = SeedSequenceFactory(7).rng("x").random()
        assert a == b

    def test_repeated_calls_differ(self):
        factory = SeedSequenceFactory(7)
        a = factory.rng("x").random()
        b = factory.rng("x").random()
        assert a != b

    def test_labels_are_independent(self):
        factory = SeedSequenceFactory(7)
        a = factory.rng("x").random()
        factory2 = SeedSequenceFactory(7)
        factory2.rng("y")  # consuming another label...
        b = factory2.rng("x").random()
        assert a == b  # ...does not perturb label "x"

    def test_different_seeds_differ(self):
        a = SeedSequenceFactory(1).rng("x").random()
        b = SeedSequenceFactory(2).rng("x").random()
        assert a != b

    def test_cross_process_stability_reference_value(self):
        # Guards against salted-hash regressions: this value must be
        # identical in every process and on every platform.
        gen = SeedSequenceFactory(0).rng("reference")
        first = float(gen.random())
        gen2 = SeedSequenceFactory(0).rng("reference")
        assert float(gen2.random()) == first


class TestSpawn:
    def test_same_label_same_seed(self):
        assert SeedSequenceFactory(7).spawn("trial/0") == (
            SeedSequenceFactory(7).spawn("trial/0")
        )

    def test_distinct_labels_distinct_seeds(self):
        factory = SeedSequenceFactory(7)
        seeds = {factory.spawn(f"trial/{i}") for i in range(64)}
        assert len(seeds) == 64

    def test_stateless_under_any_call_order(self):
        # The property the parallel runtime rests on: spawn must not
        # care how many generators or seeds were issued before.
        clean = SeedSequenceFactory(3).spawn("trial/5")
        busy = SeedSequenceFactory(3)
        busy.rng("consumers")
        busy.rng("consumers")
        busy.spawn("trial/0")
        busy.spawn("trial/9")
        assert busy.spawn("trial/5") == clean

    def test_different_roots_differ(self):
        assert SeedSequenceFactory(1).spawn("x") != (
            SeedSequenceFactory(2).spawn("x")
        )

    def test_spawned_seed_roots_independent_streams(self):
        child = SeedSequenceFactory(0).spawn("a")
        other = SeedSequenceFactory(0).spawn("b")
        a = SeedSequenceFactory(child).rng("w").random()
        b = SeedSequenceFactory(other).rng("w").random()
        assert a != b
