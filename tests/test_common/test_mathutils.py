"""Tests for repro.common.mathutils, incl. hypothesis properties."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.mathutils import (
    clamp,
    cosine_similarity,
    exponential_decay,
    normalize_weights,
    pearson_correlation,
    safe_mean,
    weighted_mean,
)


class TestClamp:
    def test_inside(self):
        assert clamp(0.5, 0.0, 1.0) == 0.5

    def test_below(self):
        assert clamp(-1.0, 0.0, 1.0) == 0.0

    def test_above(self):
        assert clamp(2.0, 0.0, 1.0) == 1.0

    def test_empty_interval_raises(self):
        with pytest.raises(ValueError):
            clamp(0.5, 1.0, 0.0)

    @given(
        st.floats(-1e6, 1e6),
        st.floats(-100, 100),
        st.floats(0.001, 100),
    )
    def test_result_always_in_interval(self, value, low, width):
        high = low + width
        result = clamp(value, low, high)
        assert low <= result <= high


class TestSafeMean:
    def test_mean(self):
        assert safe_mean([1.0, 2.0, 3.0]) == 2.0

    def test_empty_default(self):
        assert safe_mean([], default=0.7) == 0.7

    def test_generator_input(self):
        assert safe_mean(x for x in [2.0, 4.0]) == 3.0


class TestWeightedMean:
    def test_basic(self):
        assert weighted_mean([1.0, 3.0], [1.0, 1.0]) == 2.0

    def test_weighting(self):
        assert weighted_mean([0.0, 1.0], [1.0, 3.0]) == 0.75

    def test_zero_weights_default(self):
        assert weighted_mean([1.0, 2.0], [0.0, 0.0], default=9.0) == 9.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            weighted_mean([1.0], [1.0, 2.0])

    def test_negative_weight_raises(self):
        with pytest.raises(ValueError):
            weighted_mean([1.0], [-1.0])


class TestNormalizeWeights:
    def test_sums_to_one(self):
        out = normalize_weights({"a": 2.0, "b": 2.0})
        assert out == {"a": 0.5, "b": 0.5}

    def test_all_zero_becomes_uniform(self):
        out = normalize_weights({"a": 0.0, "b": 0.0})
        assert out == {"a": 0.5, "b": 0.5}

    def test_empty(self):
        assert normalize_weights({}) == {}

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            normalize_weights({"a": -1.0})

    @given(
        st.dictionaries(
            st.text(min_size=1, max_size=5),
            st.floats(0.0, 100.0),
            min_size=1,
            max_size=8,
        )
    )
    def test_property_sums_to_one(self, weights):
        out = normalize_weights(weights)
        assert math.isclose(sum(out.values()), 1.0, rel_tol=1e-9)


class TestExponentialDecay:
    def test_zero_age_is_one(self):
        assert exponential_decay(0.0, 10.0) == 1.0

    def test_half_life(self):
        assert math.isclose(exponential_decay(10.0, 10.0), 0.5)

    def test_monotone_decreasing(self):
        w = [exponential_decay(a, 5.0) for a in [0, 1, 2, 5, 10, 100]]
        assert w == sorted(w, reverse=True)

    def test_negative_age_is_one(self):
        assert exponential_decay(-5.0, 10.0) == 1.0

    def test_bad_half_life(self):
        with pytest.raises(ValueError):
            exponential_decay(1.0, 0.0)

    @given(st.floats(0, 1e4), st.floats(0.01, 1e4))
    def test_property_in_unit_interval(self, age, half_life):
        # Extreme age/half_life ratios may underflow to exactly 0.0.
        w = exponential_decay(age, half_life)
        assert 0.0 <= w <= 1.0


class TestPearson:
    def test_perfect_positive(self):
        assert math.isclose(
            pearson_correlation([1, 2, 3], [2, 4, 6]), 1.0
        )

    def test_perfect_negative(self):
        assert math.isclose(
            pearson_correlation([1, 2, 3], [6, 4, 2]), -1.0
        )

    def test_no_variance_is_none(self):
        assert pearson_correlation([1, 1, 1], [1, 2, 3]) is None

    def test_too_few_points(self):
        assert pearson_correlation([1], [2]) is None

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            pearson_correlation([1, 2], [1])

    @given(
        st.lists(st.floats(-100, 100), min_size=2, max_size=20),
    )
    def test_property_bounded(self, xs):
        ys = [x * 0.5 + 1 for x in xs]
        r = pearson_correlation(xs, ys)
        if r is not None:
            assert -1.0 <= r <= 1.0


class TestCosine:
    def test_identical_direction(self):
        assert math.isclose(cosine_similarity([1, 2], [2, 4]), 1.0)

    def test_orthogonal(self):
        assert math.isclose(cosine_similarity([1, 0], [0, 1]), 0.0)

    def test_zero_vector_is_none(self):
        assert cosine_similarity([0, 0], [1, 2]) is None

    def test_empty_is_none(self):
        assert cosine_similarity([], []) is None

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            cosine_similarity([1], [1, 2])
