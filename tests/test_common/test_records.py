"""Tests for repro.common.records."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.records import (
    Feedback,
    Interaction,
    RatingScale,
    positive,
    ratings_by_rater,
)


class TestRatingScale:
    def test_midpoint(self):
        assert RatingScale(0.0, 1.0).midpoint == 0.5
        assert RatingScale(1.0, 5.0).midpoint == 3.0

    def test_contains(self):
        scale = RatingScale(1.0, 5.0)
        assert scale.contains(3.0)
        assert not scale.contains(0.5)

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            RatingScale(1.0, 1.0)

    def test_to_unit_roundtrip(self):
        scale = RatingScale(1.0, 5.0)
        assert scale.to_unit(5.0) == 1.0
        assert scale.to_unit(1.0) == 0.0
        assert scale.from_unit(scale.to_unit(3.0)) == 3.0

    @given(st.floats(0.0, 1.0))
    def test_property_unit_roundtrip(self, u):
        scale = RatingScale(-3.0, 7.0)
        assert abs(scale.to_unit(scale.from_unit(u)) - u) < 1e-12


class TestInteraction:
    def test_observation_lookup(self):
        inter = Interaction(
            consumer="c0",
            service="s0",
            provider="p0",
            time=1.0,
            success=True,
            observations={"response_time": 0.3},
        )
        assert inter.observation("response_time") == 0.3
        assert inter.observation("missing", default=9.0) == 9.0


class TestFeedback:
    def test_rating_bounds(self):
        with pytest.raises(ValueError):
            Feedback(rater="a", target="b", time=0.0, rating=1.5)
        with pytest.raises(ValueError):
            Feedback(rater="a", target="b", time=0.0, rating=-0.1)

    def test_facet_bounds(self):
        with pytest.raises(ValueError):
            Feedback(
                rater="a",
                target="b",
                time=0.0,
                rating=0.5,
                facet_ratings={"x": 2.0},
            )

    def test_facet_defaults_to_overall(self):
        fb = Feedback(rater="a", target="b", time=0.0, rating=0.7)
        assert fb.facet("anything") == 0.7

    def test_facet_explicit(self):
        fb = Feedback(
            rater="a",
            target="b",
            time=0.0,
            rating=0.7,
            facet_ratings={"speed": 0.9},
        )
        assert fb.facet("speed") == 0.9

    def test_with_rating(self):
        fb = Feedback(rater="a", target="b", time=2.0, rating=0.7,
                      facet_ratings={"speed": 0.9})
        fb2 = fb.with_rating(0.1)
        assert fb2.rating == 0.1
        assert fb2.rater == "a" and fb2.time == 2.0
        assert fb2.facet_ratings == {"speed": 0.9}
        assert fb.rating == 0.7  # original untouched

    def test_positive_helper(self):
        good = Feedback(rater="a", target="b", time=0.0, rating=0.8)
        bad = Feedback(rater="a", target="b", time=0.0, rating=0.2)
        assert positive(good)
        assert not positive(bad)


class TestRatingsByRater:
    def test_pivot_shape(self):
        fbs = [
            Feedback(rater="u1", target="i1", time=0.0, rating=0.5),
            Feedback(rater="u1", target="i2", time=0.0, rating=0.6),
            Feedback(rater="u2", target="i1", time=0.0, rating=0.7),
        ]
        table = ratings_by_rater(fbs)
        assert table == {
            "u1": {"i1": 0.5, "i2": 0.6},
            "u2": {"i1": 0.7},
        }

    def test_latest_rating_wins(self):
        fbs = [
            Feedback(rater="u", target="i", time=0.0, rating=0.2),
            Feedback(rater="u", target="i", time=5.0, rating=0.9),
            Feedback(rater="u", target="i", time=3.0, rating=0.4),
        ]
        assert ratings_by_rater(fbs) == {"u": {"i": 0.9}}

    def test_empty(self):
        assert ratings_by_rater([]) == {}
