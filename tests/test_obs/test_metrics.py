"""Tests for the deterministic metrics registry."""

import pytest

from repro.common.errors import ConfigurationError
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_increments(self):
        c = Counter("c")
        c.inc()
        c.inc(2.5)
        assert c.value() == 3.5

    def test_labeled_series_are_independent(self):
        c = Counter("c", labels=("kind",))
        c.inc(1, labels=("a",))
        c.inc(5, labels=("b",))
        assert c.value(labels=("a",)) == 1
        assert c.value(labels=("b",)) == 5
        assert c.total() == 6

    def test_negative_increment_rejected(self):
        with pytest.raises(ConfigurationError):
            Counter("c").inc(-1)

    def test_label_arity_enforced(self):
        c = Counter("c", labels=("kind",))
        with pytest.raises(ConfigurationError):
            c.inc(1, labels=())

    def test_snapshot_integral_values_render_as_ints(self):
        c = Counter("c")
        c.inc(2.0)
        assert c.snapshot()["series"] == [[[], 2]]


class TestGauge:
    def test_last_write_wins(self):
        g = Gauge("g")
        g.set(1.0)
        g.set(0.25)
        assert g.value() == 0.25

    def test_default_when_unset(self):
        assert Gauge("g").value(default=7.0) == 7.0


class TestHistogram:
    def test_bucketing(self):
        h = Histogram("h", buckets=(1.0, 10.0))
        for v in (0.5, 1.0, 5.0, 100.0):
            h.observe(v)
        snap = h.snapshot()["series"][0][1]
        # 0.5 and 1.0 land at or below the first boundary, 5.0 in the
        # second bucket, 100.0 in the overflow bucket.
        assert snap["counts"] == [2, 1, 1]
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(106.5)

    def test_mean(self):
        h = Histogram("h")
        h.observe(2)
        h.observe(4)
        assert h.mean() == pytest.approx(3.0)
        assert Histogram("empty").mean() == 0.0

    def test_buckets_must_increase(self):
        with pytest.raises(ConfigurationError):
            Histogram("h", buckets=(5.0, 1.0))
        with pytest.raises(ConfigurationError):
            Histogram("h", buckets=())

    def test_default_buckets(self):
        assert Histogram("h").buckets == DEFAULT_BUCKETS


class TestRegistry:
    def test_get_or_create_returns_same_metric(self):
        reg = MetricsRegistry()
        assert reg.counter("c") is reg.counter("c")

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("m")
        with pytest.raises(ConfigurationError):
            reg.gauge("m")

    def test_label_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("m", labels=("a",))
        with pytest.raises(ConfigurationError):
            reg.counter("m", labels=("b",))

    def test_reset_clears_series_keeps_registrations(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        reg.reset()
        assert reg.counter("c").value() == 0
        assert reg.names() == ["c"]

    def test_snapshot_sorted_and_json_safe(self):
        import json

        reg = MetricsRegistry()
        reg.counter("z.last", labels=("k",)).inc(1, labels=("b",))
        reg.counter("z.last", labels=("k",)).inc(1, labels=("a",))
        reg.gauge("a.first").set(0.5)
        snap = reg.snapshot()
        assert list(snap) == ["a.first", "z.last"]
        # series sorted by label tuple regardless of insertion order
        assert [key for key, _ in snap["z.last"]["series"]] == [["a"], ["b"]]
        json.dumps(snap)  # must be JSON-able as-is


class TestMergeSnapshots:
    def test_counters_add(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c", labels=("k",)).inc(1, labels=("x",))
        b.counter("c", labels=("k",)).inc(2, labels=("x",))
        b.counter("c", labels=("k",)).inc(5, labels=("y",))
        merged = MetricsRegistry.merge_snapshots(
            [a.snapshot(), b.snapshot()]
        )
        assert merged["c"]["series"] == [[["x"], 3], [["y"], 5]]

    def test_gauges_last_wins(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("g").set(1.0)
        b.gauge("g").set(2.0)
        merged = MetricsRegistry.merge_snapshots(
            [a.snapshot(), b.snapshot()]
        )
        assert merged["g"]["series"] == [[[], 2]]

    def test_histograms_sum_bucketwise(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", buckets=(1.0, 2.0)).observe(0.5)
        b.histogram("h", buckets=(1.0, 2.0)).observe(1.5)
        b.histogram("h", buckets=(1.0, 2.0)).observe(9.0)
        merged = MetricsRegistry.merge_snapshots(
            [a.snapshot(), b.snapshot()]
        )
        series = merged["h"]["series"][0][1]
        assert series["counts"] == [1, 1, 1]
        assert series["count"] == 3
        assert series["sum"] == pytest.approx(11.0)

    def test_bucket_mismatch_rejected(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", buckets=(1.0,)).observe(0.5)
        b.histogram("h", buckets=(2.0,)).observe(0.5)
        with pytest.raises(ConfigurationError):
            MetricsRegistry.merge_snapshots([a.snapshot(), b.snapshot()])

    def test_kind_mismatch_rejected(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("m").inc()
        b.gauge("m").set(1.0)
        with pytest.raises(ConfigurationError):
            MetricsRegistry.merge_snapshots([a.snapshot(), b.snapshot()])

    def test_merge_order_independent_for_counters(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(1)
        b.counter("c").inc(2)
        ab = MetricsRegistry.merge_snapshots([a.snapshot(), b.snapshot()])
        ba = MetricsRegistry.merge_snapshots([b.snapshot(), a.snapshot()])
        assert ab == ba
