"""Tests for the trace summarizer CLI and ApproachReport parity.

The acceptance check for the cost ledger: a trace captured while the
Figure-2 experiment runs, summarized with ``python -m repro.obs
summarize``, must reproduce the setup/running/message numbers each
:class:`ApproachReport` computed independently.
"""

import json
import os

import pytest

from repro.experiments.activities import run_activities_comparison
from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import Recorder
from repro.obs.summarize import main, render_text, summarize
from repro.obs.trace import TelemetrySnapshot, dump_jsonl


@pytest.fixture(scope="module")
def fig2_run(tmp_path_factory):
    """One traced Figure-2 run plus its exported JSONL."""
    trace_dir = tmp_path_factory.mktemp("traces")
    recorder = Recorder()
    reports = run_activities_comparison(
        n_providers=3,
        services_per_provider=1,
        n_consumers=5,
        rounds=5,
        seed=0,
        recorder=recorder,
    )
    path = os.path.join(str(trace_dir), "fig2.jsonl")
    dump_jsonl(recorder.snapshot(meta={"experiment": "fig2"}), path)
    return reports, path


class TestApproachReportParity:
    def test_ledger_rows_match_reports(self, fig2_run, capsys):
        reports, path = fig2_run
        assert main(["summarize", path, "--format", "json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        rows = {row["activity"]: row for row in summary["fig2_costs"]}
        assert set(rows) == {r.name for r in reports}
        for report in reports:
            row = rows[report.name]
            assert row["setup_cost"] == pytest.approx(report.setup_cost), (
                report.name
            )
            assert row["running_cost"] == pytest.approx(
                report.running_cost
            ), report.name
            assert row["total_cost"] == pytest.approx(report.total_cost), (
                report.name
            )
            assert row["messages"] == report.messages, report.name

    def test_trace_env_var_exports_automatically(
        self, tmp_path, monkeypatch
    ):
        trace_dir = tmp_path / "auto"
        monkeypatch.setenv("REPRO_TRACE_DIR", str(trace_dir))
        run_activities_comparison(
            n_providers=2,
            services_per_provider=1,
            n_consumers=3,
            rounds=2,
            seed=1,
            approaches=["advertised", "feedback"],
        )
        files = sorted(os.listdir(trace_dir))
        assert files == ["fig2_activities_s1_p2x1_c3_r2.jsonl"]
        assert main(["summarize", str(trace_dir / files[0])]) == 0


class TestCli:
    def test_missing_file_exits_2(self, capsys):
        assert main(["summarize", "/nonexistent/trace.jsonl"]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_text_report(self, fig2_run, capsys):
        _, path = fig2_run
        assert main(["summarize", path]) == 0
        out = capsys.readouterr().out
        assert "fig2 cost ledger:" in out
        assert "feedback" in out

    def test_output_file(self, fig2_run, tmp_path):
        _, path = fig2_run
        report = tmp_path / "summary.json"
        assert main(
            ["summarize", path, "--format", "json", "--output", str(report)]
        ) == 0
        payload = json.loads(report.read_text())
        assert payload["traces"] == 1

    def test_multiple_traces_aggregate(self, fig2_run, capsys):
        _, path = fig2_run
        assert main(["summarize", path, path, "--format", "json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["traces"] == 2

    def test_summary_is_deterministic(self, fig2_run, capsys):
        _, path = fig2_run
        main(["summarize", path, "--format", "json"])
        first = capsys.readouterr().out
        main(["summarize", path, "--format", "json"])
        assert capsys.readouterr().out == first


class TestSummarize:
    def test_counts_events_and_span_time(self):
        recorder = Recorder()
        recorder.event("tick", time=1.0)
        recorder.event("tick", time=2.0)
        recorder.span("work", duration=3.0, time=0.0)
        summary = summarize([recorder.snapshot()])
        assert summary["events"]["total"] == 3
        assert summary["events"]["by_name"] == {"tick": 2, "work": 1}
        assert summary["events"]["span_sim_time"] == {"work": 3.0}

    def test_metric_totals(self):
        registry = MetricsRegistry()
        registry.counter("c", labels=("k",)).inc(2, labels=("a",))
        registry.counter("c", labels=("k",)).inc(3, labels=("b",))
        registry.histogram("h", buckets=(10.0,)).observe(4.0)
        summary = summarize(
            [TelemetrySnapshot(metrics=registry.snapshot())]
        )
        assert summary["metric_totals"]["c"] == 5
        assert summary["metric_totals"]["h"]["mean"] == pytest.approx(4.0)

    def test_render_text_empty(self):
        out = render_text(summarize([]))
        assert out.startswith("traces: 0")
