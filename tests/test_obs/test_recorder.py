"""Tests for the ambient recorder facade."""

from repro.obs.recorder import (
    NoOpRecorder,
    Recorder,
    get_recorder,
    set_recorder,
    use_recorder,
)


class TestDefault:
    def test_ambient_default_is_disabled(self):
        rec = get_recorder()
        assert isinstance(rec, NoOpRecorder)
        assert rec.enabled is False

    def test_noop_operations_return_nothing_and_record_nothing(self):
        rec = NoOpRecorder()
        rec.count("c")
        rec.gauge("g", 1.0)
        rec.observe("h", 1.0)
        assert rec.event("e") is None
        assert rec.span("s", duration=1.0) is None
        rec.advance(99.0)
        assert rec.now == 0.0
        snap = rec.snapshot(meta={"k": "v"})
        assert snap.events == [] and snap.metrics == {}


class TestAmbientSlot:
    def test_use_recorder_installs_and_restores(self):
        live = Recorder()
        assert get_recorder().enabled is False
        with use_recorder(live) as active:
            assert active is live
            assert get_recorder() is live
        assert get_recorder().enabled is False

    def test_use_recorder_restores_on_exception(self):
        live = Recorder()
        try:
            with use_recorder(live):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert get_recorder().enabled is False

    def test_set_recorder_returns_previous(self):
        live = Recorder()
        previous = set_recorder(live)
        try:
            assert get_recorder() is live
        finally:
            assert set_recorder(previous) is live
        assert get_recorder() is previous

    def test_nested_use_recorder(self):
        outer, inner = Recorder(), Recorder()
        with use_recorder(outer):
            with use_recorder(inner):
                assert get_recorder() is inner
            assert get_recorder() is outer


class TestRecorder:
    def test_advance_is_monotone(self):
        rec = Recorder()
        rec.advance(5.0)
        rec.advance(2.0)
        assert rec.now == 5.0

    def test_count_and_observe_land_in_registry(self):
        rec = Recorder()
        rec.count("net.sent", labels=("fb",), label_names=("kind",))
        rec.count("net.sent", 2, labels=("fb",), label_names=("kind",))
        rec.observe("batch", 4.0)
        assert rec.registry.counter(
            "net.sent", labels=("kind",)
        ).value(labels=("fb",)) == 3
        assert rec.registry.histogram("batch").mean() == 4.0

    def test_event_defaults_to_current_sim_time(self):
        rec = Recorder()
        rec.advance(3.0)
        event = rec.event("e")
        assert event.time == 3.0

    def test_event_with_explicit_time_advances_clock(self):
        rec = Recorder()
        rec.event("e", time=7.0)
        assert rec.now == 7.0

    def test_span_advances_clock_past_duration(self):
        rec = Recorder()
        span = rec.span("s", duration=2.5, time=1.0)
        assert span.time == 1.0 and span.duration == 2.5
        assert rec.now == 3.5

    def test_snapshot_and_reset(self):
        rec = Recorder()
        rec.count("c")
        rec.event("e", time=1.0)
        snap = rec.snapshot(meta={"label": "t"})
        assert len(snap.events) == 1
        assert snap.metrics["c"]["series"] == [[[], 1]]
        assert snap.meta == {"label": "t"}
        rec.reset()
        assert rec.now == 0.0
        assert rec.snapshot().events == []
