"""Tests for the Figure-2 activity cost ledger."""

import pytest

from repro.obs.ledger import (
    COST_DRIVERS,
    MESSAGE_COST,
    NEGOTIATION_COST,
    PROBE_COST,
    SENSOR_COST,
    ActivityLedger,
    ledger_table,
    merged_ledger_table,
)
from repro.obs.metrics import MetricsRegistry


class TestActivityLedger:
    def test_charge_accumulates(self):
        ledger = ActivityLedger()
        ledger.charge("sensors", sensors=3, probes=10)
        ledger.charge("sensors", probes=5, reports=15)
        assert ledger.totals("sensors") == {
            "probes": 15,
            "reports": 15,
            "feedback": 0,
            "negotiations": 0,
            "checks": 0,
            "sensors": 3,
        }

    def test_touch_registers_zero_cost_activity(self):
        ledger = ActivityLedger()
        ledger.touch("advertised")
        assert ledger.activities() == ["advertised"]
        assert all(v == 0 for v in ledger.totals("advertised").values())

    def test_activities_sorted(self):
        ledger = ActivityLedger()
        ledger.charge("feedback", feedback=1)
        ledger.charge("advertised", probes=0)
        ledger.touch("advertised")
        assert ledger.activities() == ["advertised", "feedback"]

    def test_shared_registry(self):
        registry = MetricsRegistry()
        ledger = ActivityLedger(registry)
        ledger.charge("sla", negotiations=2)
        assert registry.counter(
            "fig2.negotiations", labels=("activity",)
        ).value(labels=("sla",)) == 2


class TestLedgerTable:
    def test_cost_decomposition(self):
        ledger = ActivityLedger()
        ledger.charge(
            "sensors", sensors=2, probes=30, reports=30
        )
        ledger.charge("sla", negotiations=4, checks=100)
        ledger.charge("feedback", feedback=50)
        rows = {row["activity"]: row for row in ledger.table()}

        sensors = rows["sensors"]
        assert sensors["setup_cost"] == pytest.approx(2 * SENSOR_COST)
        assert sensors["running_cost"] == pytest.approx(
            30 * PROBE_COST + 30 * MESSAGE_COST
        )
        assert sensors["messages"] == 30

        sla = rows["sla"]
        assert sla["setup_cost"] == pytest.approx(4 * NEGOTIATION_COST)
        assert sla["running_cost"] == pytest.approx(100 * MESSAGE_COST)
        assert sla["messages"] == 100

        feedback = rows["feedback"]
        assert feedback["setup_cost"] == 0.0
        assert feedback["running_cost"] == pytest.approx(50 * MESSAGE_COST)
        assert feedback["total_cost"] == pytest.approx(50 * MESSAGE_COST)

    def test_rows_sorted_by_activity(self):
        ledger = ActivityLedger()
        for activity in ("zeta", "alpha", "mid"):
            ledger.charge(activity, probes=1)
        assert [r["activity"] for r in ledger.table()] == [
            "alpha", "mid", "zeta",
        ]

    def test_empty_snapshot_prices_to_nothing(self):
        assert ledger_table(MetricsRegistry().snapshot()) == []

    def test_every_driver_surfaces_in_rows(self):
        ledger = ActivityLedger()
        ledger.charge(
            "all",
            probes=1, reports=2, feedback=3,
            negotiations=4, checks=5, sensors=6,
        )
        (row,) = ledger.table()
        for driver in COST_DRIVERS:
            assert isinstance(row[driver], int)
        assert row["messages"] == 2 + 3 + 5
        assert row["total_cost"] == pytest.approx(
            6 * SENSOR_COST
            + 4 * NEGOTIATION_COST
            + 1 * PROBE_COST
            + 10 * MESSAGE_COST
        )


class TestMergedLedgerTable:
    def test_sums_across_shard_registries(self):
        shard_a = ActivityLedger()
        shard_b = ActivityLedger()
        shard_a.charge("feedback", feedback=3)
        shard_b.charge("feedback", feedback=5)
        merged = merged_ledger_table(
            [shard_a.registry.snapshot(), shard_b.registry.snapshot()]
        )
        row = {r["activity"]: r for r in merged}["feedback"]
        assert row["feedback"] == 8
        assert row["running_cost"] == pytest.approx(8 * MESSAGE_COST)

    def test_touch_only_shard_still_listed(self):
        # A shard that ran but charged nothing must not vanish from the
        # merged table — its zero series are the proof it participated.
        busy = ActivityLedger()
        quiet = ActivityLedger()
        busy.charge("feedback", feedback=2)
        quiet.touch("sensors")
        merged = merged_ledger_table(
            [busy.registry.snapshot(), quiet.registry.snapshot()]
        )
        activities = [r["activity"] for r in merged]
        assert activities == ["feedback", "sensors"]

    def test_empty_input_gives_empty_table(self):
        assert merged_ledger_table([]) == []
