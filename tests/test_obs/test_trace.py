"""Tests for the sim-time tracer and canonical JSONL codec."""

import io

import pytest

from repro.common.errors import ConfigurationError
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import (
    TelemetrySnapshot,
    TraceEvent,
    Tracer,
    canonical_json,
    read_jsonl,
    write_jsonl,
)


def _render(snapshot):
    buffer = io.StringIO()
    write_jsonl(snapshot, buffer)
    return buffer.getvalue()


class TestTracer:
    def test_seq_breaks_ties_at_same_instant(self):
        tracer = Tracer()
        a = tracer.emit("a", time=1.0)
        b = tracer.emit("b", time=1.0)
        assert a.sort_key() < b.sort_key()

    def test_attrs_sorted_and_coerced(self):
        import numpy as np

        tracer = Tracer()
        event = tracer.emit(
            "e", time=0.0, attrs={"z": np.int64(3), "a": "x", "m": None}
        )
        assert event.attrs == (("a", "x"), ("m", None), ("z", 3))
        assert type(event.attrs[2][1]) is int

    def test_non_scalar_attr_becomes_str(self):
        tracer = Tracer()
        event = tracer.emit("e", time=0.0, attrs={"obj": ["not", "scalar"]})
        assert event.attrs == (("obj", "['not', 'scalar']"),)

    def test_negative_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            Tracer().emit("s", time=0.0, kind="span", duration=-1.0)

    def test_reset(self):
        tracer = Tracer()
        tracer.emit("a", time=0.0)
        tracer.reset()
        assert tracer.events == []
        assert tracer.emit("b", time=0.0).seq == 0


class TestJsonl:
    def _snapshot(self):
        tracer = Tracer()
        tracer.emit("later", time=2.0, kind="span", duration=0.5)
        tracer.emit("earlier", time=1.0, attrs={"k": "v"})
        registry = MetricsRegistry()
        registry.counter("c", labels=("kind",)).inc(2, labels=("x",))
        return TelemetrySnapshot.capture(
            tracer, registry, meta={"seed": 7, "label": "t"}
        )

    def test_roundtrip_is_byte_identical(self):
        snapshot = self._snapshot()
        first = _render(snapshot)
        second = _render(read_jsonl(first.splitlines()))
        assert first == second

    def test_events_written_in_time_seq_order(self):
        lines = _render(self._snapshot()).splitlines()
        assert '"record":"meta"' in lines[0]
        assert '"name":"earlier"' in lines[1]
        assert '"name":"later"' in lines[2]
        assert '"record":"metrics"' in lines[3]

    def test_meta_preserved(self):
        snapshot = read_jsonl(_render(self._snapshot()).splitlines())
        assert snapshot.meta == {"seed": 7, "label": "t"}

    def test_unknown_record_rejected(self):
        with pytest.raises(ConfigurationError):
            read_jsonl(['{"record":"mystery"}'])

    def test_canonical_json_sorted_compact(self):
        assert canonical_json({"b": 1, "a": [1.5]}) == '{"a":[1.5],"b":1}'

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            canonical_json({"x": float("nan")})


class TestMerge:
    def _trial(self, label, value):
        tracer = Tracer()
        tracer.emit("work", time=1.0, attrs={"who": label})
        registry = MetricsRegistry()
        registry.counter("c").inc(value)
        return TelemetrySnapshot.capture(tracer, registry)

    def test_events_relabeled_and_resequenced(self):
        merged = TelemetrySnapshot.merge(
            [self._trial("a", 1), self._trial("b", 2)], labels=["a", "b"]
        )
        assert [e.seq for e in merged.events] == [0, 1]
        assert dict(merged.events[0].attrs)["trial"] == "a"
        assert dict(merged.events[1].attrs)["trial"] == "b"

    def test_metrics_summed(self):
        merged = TelemetrySnapshot.merge(
            [self._trial("a", 1), self._trial("b", 2)]
        )
        assert merged.metrics["c"]["series"] == [[[], 3]]

    def test_meta_counts_trials(self):
        merged = TelemetrySnapshot.merge(
            [self._trial("a", 1), self._trial("b", 2)], labels=["a", "b"]
        )
        assert merged.meta["trials"] == 2
        assert merged.meta["labels"] == "a,b"

    def test_label_count_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            TelemetrySnapshot.merge([self._trial("a", 1)], labels=["a", "b"])

    def test_merged_export_independent_of_input_grouping(self):
        # Merging [t0, t1] must equal merging them after they were
        # produced separately — the property the parallel runtime
        # relies on for byte-identical exports across worker counts.
        trials = [self._trial("a", 1), self._trial("b", 2)]
        once = _render(TelemetrySnapshot.merge(trials, labels=["a", "b"]))
        again = _render(
            TelemetrySnapshot.merge(
                [self._trial("a", 1), self._trial("b", 2)],
                labels=["a", "b"],
            )
        )
        assert once == again


class TestTraceEvent:
    def test_from_dict_defaults(self):
        event = TraceEvent.from_dict({"t": 1.0, "seq": 0, "name": "e"})
        assert event.kind == "event"
        assert event.duration == 0.0
        assert event.attrs == ()
