"""Tests for consumers: preferences and rating behaviour."""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.records import Interaction
from repro.services.consumer import (
    Consumer,
    PreferenceProfile,
    quality_scores,
)
from repro.services.qos import DEFAULT_METRICS


def make_interaction(success=True, observations=None, time=1.0):
    if observations is None and success:
        observations = {
            "response_time": 0.2,  # quality ~0.9 (lower better, 0.01-2)
            "availability": 0.95,
        }
    return Interaction(
        consumer="c0",
        service="s0",
        provider="p0",
        time=time,
        success=success,
        observations=observations or {},
    )


class TestPreferenceProfile:
    def test_weights_normalized(self):
        profile = PreferenceProfile({"a": 2.0, "b": 2.0})
        assert profile.weight("a") == 0.5

    def test_overall_weighted(self):
        profile = PreferenceProfile({"a": 3.0, "b": 1.0})
        assert profile.overall({"a": 1.0, "b": 0.0}) == 0.75

    def test_overall_missing_facets_renormalized(self):
        profile = PreferenceProfile({"a": 1.0, "b": 1.0, "c": 2.0})
        # Only "a" present: it carries all the weight.
        assert profile.overall({"a": 0.8}) == 0.8

    def test_overall_no_overlap_falls_back_to_mean(self):
        profile = PreferenceProfile({"a": 1.0})
        assert profile.overall({"x": 0.2, "y": 0.4}) == pytest.approx(0.3)

    def test_overall_empty_scores(self):
        assert PreferenceProfile({"a": 1.0}).overall({}) == 0.0

    def test_uniform_constructor(self):
        profile = PreferenceProfile.uniform(["a", "b"], segment=2)
        assert profile.weight("a") == 0.5
        assert profile.segment == 2


class TestQualityScores:
    def test_normalizes_via_taxonomy(self):
        scores = quality_scores(make_interaction(), DEFAULT_METRICS)
        assert scores["availability"] == pytest.approx(0.95)
        assert scores["response_time"] > 0.85  # fast response = good

    def test_ignores_unknown_metrics(self):
        inter = make_interaction(observations={"weird_metric": 1.0})
        assert quality_scores(inter, DEFAULT_METRICS) == {}


class TestConsumer:
    def test_honest_rating_reflects_quality(self):
        consumer = Consumer("c0", rating_noise=0.0, rng=0)
        fb = consumer.rate(make_interaction(), DEFAULT_METRICS)
        assert fb.rater == "c0"
        assert fb.target == "s0"
        assert fb.rating > 0.8
        assert "availability" in fb.facet_ratings

    def test_failed_invocation_rated_zero(self):
        consumer = Consumer("c0", rating_noise=0.0, rng=0)
        fb = consumer.rate(make_interaction(success=False), DEFAULT_METRICS)
        assert fb.rating == 0.0
        assert fb.facet_ratings == {}

    def test_rating_noise_is_bounded(self):
        consumer = Consumer("c0", rating_noise=0.5, rng=1)
        for _ in range(20):
            fb = consumer.rate(make_interaction(), DEFAULT_METRICS)
            assert 0.0 <= fb.rating <= 1.0
            for v in fb.facet_ratings.values():
                assert 0.0 <= v <= 1.0

    def test_preferences_shape_overall(self):
        fast_lover = Consumer(
            "c0",
            preferences=PreferenceProfile({"response_time": 1.0}),
            rating_noise=0.0,
            rng=0,
        )
        avail_lover = Consumer(
            "c1",
            preferences=PreferenceProfile({"availability": 1.0}),
            rating_noise=0.0,
            rng=0,
        )
        inter = make_interaction(
            observations={"response_time": 0.05, "availability": 0.5}
        )
        fast_fb = fast_lover.rate(inter, DEFAULT_METRICS)
        avail_fb = avail_lover.rate(inter, DEFAULT_METRICS)
        assert fast_fb.rating > avail_fb.rating

    def test_dishonest_strategy_plugs_in(self):
        def liar(consumer, interaction, facet_scores):
            return {f: 0.0 for f in facet_scores}

        consumer = Consumer("c0", rating_strategy=liar, rating_noise=0.0,
                            rng=0)
        fb = consumer.rate(make_interaction(), DEFAULT_METRICS)
        assert fb.rating == 0.0

    def test_rate_provider_retargets(self):
        consumer = Consumer("c0", rating_noise=0.0, rng=0)
        fb = consumer.rate(make_interaction(), DEFAULT_METRICS)
        pfb = consumer.rate_provider(fb, "p0")
        assert pfb.target == "p0"
        assert pfb.rating == fb.rating

    def test_negative_noise_rejected(self):
        with pytest.raises(ConfigurationError):
            Consumer("c0", rating_noise=-0.1)

    def test_feedback_carries_interaction(self):
        consumer = Consumer("c0", rating_noise=0.0, rng=0)
        inter = make_interaction()
        fb = consumer.rate(inter, DEFAULT_METRICS)
        assert fb.interaction is inter
