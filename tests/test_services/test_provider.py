"""Tests for providers, services and quality behaviours."""

import pytest

from repro.common.errors import ConfigurationError
from repro.services.description import ServiceDescription
from repro.services.provider import (
    DegradingBehavior,
    ExaggerationPolicy,
    ImprovingBehavior,
    OscillatingBehavior,
    Provider,
    Service,
    StaticBehavior,
)
from repro.services.qos import QoSProfile


def make_service(service_id="s0", provider_id="p0", quality=0.7,
                 behavior=None):
    return Service(
        description=ServiceDescription(
            service=service_id, provider=provider_id, category="cat"
        ),
        profile=QoSProfile(quality={"a": quality, "b": quality}, noise=0.0),
        behavior=behavior or StaticBehavior(),
    )


class TestBehaviors:
    def test_static_is_constant(self):
        svc = make_service()
        assert svc.profile_at(0.0).quality == svc.profile_at(1000.0).quality

    def test_improving_starts_low_and_recovers(self):
        svc = make_service(
            behavior=ImprovingBehavior(initial_deficit=0.4, ramp_duration=100)
        )
        assert svc.profile_at(0.0).quality["a"] == pytest.approx(0.3)
        assert svc.profile_at(50.0).quality["a"] == pytest.approx(0.5)
        assert svc.profile_at(100.0).quality["a"] == pytest.approx(0.7)
        assert svc.profile_at(500.0).quality["a"] == pytest.approx(0.7)

    def test_degrading_drops_at_onset(self):
        svc = make_service(behavior=DegradingBehavior(drop=0.4, onset=50))
        assert svc.profile_at(49.9).quality["a"] == pytest.approx(0.7)
        assert svc.profile_at(50.0).quality["a"] == pytest.approx(0.3)

    def test_oscillating_phases(self):
        svc = make_service(
            behavior=OscillatingBehavior(drop=0.4, good_duration=10,
                                         bad_duration=10)
        )
        assert svc.profile_at(5.0).quality["a"] == pytest.approx(0.7)
        assert svc.profile_at(15.0).quality["a"] == pytest.approx(0.3)
        assert svc.profile_at(25.0).quality["a"] == pytest.approx(0.7)

    def test_behavior_validation(self):
        with pytest.raises(ConfigurationError):
            ImprovingBehavior(ramp_duration=0)
        with pytest.raises(ConfigurationError):
            OscillatingBehavior(good_duration=0)
        with pytest.raises(ConfigurationError):
            DegradingBehavior(drop=-1)


class TestExaggerationPolicy:
    def test_honest_advertises_truth(self):
        policy = ExaggerationPolicy(inflation=0.0)
        ad = policy.advertise("s0", {"a": 0.6})
        assert ad.claimed["a"] == 0.6
        assert ad.exaggeration({"a": 0.6}) == 0.0

    def test_inflated_claims(self):
        policy = ExaggerationPolicy(inflation=0.3)
        ad = policy.advertise("s0", {"a": 0.6, "b": 0.9})
        assert ad.claimed["a"] == pytest.approx(0.9)
        assert ad.claimed["b"] == 1.0  # clamped
        assert ad.exaggeration({"a": 0.6, "b": 0.9}) > 0


class TestProvider:
    def test_add_and_lookup(self):
        provider = Provider("p0")
        svc = make_service()
        provider.add_service(svc)
        assert provider.service("s0") is svc
        assert provider.services == [svc]

    def test_wrong_provider_rejected(self):
        provider = Provider("p1")
        with pytest.raises(ConfigurationError):
            provider.add_service(make_service(provider_id="p0"))

    def test_duplicate_service_rejected(self):
        provider = Provider("p0")
        provider.add_service(make_service())
        with pytest.raises(ConfigurationError):
            provider.add_service(make_service())

    def test_advertisement_uses_base_profile(self):
        provider = Provider("p0", ExaggerationPolicy(inflation=0.1))
        provider.add_service(
            make_service(behavior=DegradingBehavior(drop=0.5, onset=0))
        )
        ad = provider.advertisement_for("s0", time=100.0)
        # Advertises intent (0.7 + 0.1), not the degraded truth.
        assert ad.claimed["a"] == pytest.approx(0.8)

    def test_quality_tendency_validated(self):
        with pytest.raises(ConfigurationError):
            Provider("p0", quality_tendency=1.5)

    def test_remove_service(self):
        provider = Provider("p0")
        provider.add_service(make_service())
        provider.remove_service("s0")
        assert provider.services == []
