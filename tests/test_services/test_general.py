"""Tests for general services and intermediaries (Figure 1B)."""

import pytest

from repro.common.errors import ConfigurationError, UnknownEntityError
from repro.services.consumer import Consumer, PreferenceProfile
from repro.services.description import ServiceDescription
from repro.services.general import GeneralService, IntermediaryService
from repro.services.invocation import InvocationEngine
from repro.services.provider import Service
from repro.services.qos import DEFAULT_METRICS, QoSProfile


def make_intermediary(web_quality=0.8, general_qualities=(0.3, 0.9),
                      weight=0.2, success_rate=1.0):
    svc = Service(
        description=ServiceDescription(
            service="booker", provider="p0", category="flight_booking"
        ),
        profile=QoSProfile(
            quality={m.name: web_quality for m in DEFAULT_METRICS},
            noise=0.0,
            success_rate=success_rate,
        ),
    )
    catalog = [
        GeneralService(
            general_id=f"flight-{i}",
            domain="flight",
            quality={"comfort": q, "punctuality": q},
            noise=0.0,
        )
        for i, q in enumerate(general_qualities)
    ]
    return IntermediaryService(svc, catalog, intermediary_weight=weight, rng=0)


class TestGeneralService:
    def test_quality_bounds(self):
        with pytest.raises(ConfigurationError):
            GeneralService(general_id="g", domain="d", quality={"x": 2.0})

    def test_overall(self):
        g = GeneralService(
            general_id="g", domain="d", quality={"a": 0.4, "b": 0.8}
        )
        assert g.overall() == pytest.approx(0.6)

    def test_segment_offsets(self):
        g = GeneralService(
            general_id="g",
            domain="d",
            quality={"comfort": 0.5},
            segment_offsets={"comfort": {1: 0.3}},
        )
        assert g.true_quality("comfort", segment=1) == 0.8
        assert g.true_quality("comfort", segment=0) == 0.5

    def test_experience_noise_free(self):
        g = GeneralService(
            general_id="g", domain="d", quality={"comfort": 0.7}, noise=0.0
        )
        assert g.experience(rng=0) == {"comfort": 0.7}


class TestIntermediaryService:
    def test_needs_catalog(self):
        svc = Service(
            description=ServiceDescription(
                service="b", provider="p", category="c"
            ),
            profile=QoSProfile(quality={"cost": 0.5}),
        )
        with pytest.raises(ConfigurationError):
            IntermediaryService(svc, [])

    def test_best_general(self):
        inter = make_intermediary(general_qualities=(0.3, 0.9, 0.6))
        assert inter.best_general().general_id == "flight-1"

    def test_unknown_general_raises(self):
        inter = make_intermediary()
        engine = InvocationEngine(DEFAULT_METRICS, rng=0)
        with pytest.raises(UnknownEntityError):
            inter.book(Consumer("c0", rng=0), "flight-99", engine, 0.0)

    def test_general_quality_dominates_outcome(self):
        # Same web service, very different general services: the
        # perceived outcome must follow the general service (paper: the
        # intermediary "only plays a small part").
        engine = InvocationEngine(DEFAULT_METRICS, rng=0)
        consumer = Consumer("c0", rating_noise=0.0, rng=0)
        good = make_intermediary(general_qualities=(0.95,))
        bad = make_intermediary(general_qualities=(0.05,))
        out_good = good.book(consumer, "flight-0", engine, 0.0)
        out_bad = bad.book(consumer, "flight-0", engine, 0.0)
        assert out_good.perceived_quality - out_bad.perceived_quality > 0.5

    def test_intermediary_weight_bounds_web_influence(self):
        engine = InvocationEngine(DEFAULT_METRICS, rng=0)
        consumer = Consumer("c0", rating_noise=0.0, rng=0)
        # Terrible web service, great flight, weight 0.2:
        inter = make_intermediary(web_quality=0.0, general_qualities=(1.0,),
                                  weight=0.2)
        outcome = inter.book(consumer, "flight-0", engine, 0.0)
        assert outcome.perceived_quality == pytest.approx(0.8, abs=0.05)

    def test_failed_web_service_means_no_booking(self):
        engine = InvocationEngine(DEFAULT_METRICS, rng=0)
        consumer = Consumer("c0", rating_noise=0.0, rng=0)
        inter = make_intermediary(success_rate=0.0)
        outcome = inter.book(consumer, "flight-0", engine, 0.0)
        assert outcome.perceived_quality == 0.0
        assert outcome.general_facets == {}

    def test_weight_validation(self):
        with pytest.raises(ConfigurationError):
            make_intermediary(weight=1.5)
