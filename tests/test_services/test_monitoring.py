"""Tests for sensors, third-party monitors and explorer agents."""

import pytest

from repro.common.errors import ConfigurationError
from repro.services.description import ServiceDescription
from repro.services.invocation import InvocationEngine
from repro.services.monitoring import (
    ExplorerAgentPool,
    SensorDeployment,
    ThirdPartyMonitor,
)
from repro.services.provider import ImprovingBehavior, Service, StaticBehavior
from repro.services.qos import DEFAULT_METRICS, QoSProfile


def make_service(service_id="s0", quality=0.7, behavior=None):
    q = {m.name: quality for m in DEFAULT_METRICS}
    return Service(
        description=ServiceDescription(
            service=service_id, provider="p0", category="cat"
        ),
        profile=QoSProfile(quality=q, noise=0.0, success_rate=1.0),
        behavior=behavior or StaticBehavior(),
    )


class TestSensorDeployment:
    def test_probe_requires_deployment(self):
        sensors = SensorDeployment(InvocationEngine(DEFAULT_METRICS, rng=0))
        with pytest.raises(ConfigurationError):
            sensors.probe(make_service(), time=0.0)

    def test_probe_builds_report(self):
        sensors = SensorDeployment(InvocationEngine(DEFAULT_METRICS, rng=0))
        svc = make_service(quality=0.8)
        sensors.deploy(svc)
        for t in range(5):
            sensors.probe(svc, time=float(t))
        report = sensors.report_for("s0")
        assert report.samples == 5
        assert report.facet_quality("availability") == pytest.approx(0.8)

    def test_subjective_metrics_invisible_to_sensors(self):
        sensors = SensorDeployment(InvocationEngine(DEFAULT_METRICS, rng=0))
        svc = make_service()
        sensors.deploy(svc)
        sensors.probe(svc, time=0.0)
        report = sensors.report_for("s0")
        # "accuracy" is subjective: monitoring cannot measure it.
        assert "accuracy" not in report.facet_estimates()
        assert "response_time" in report.facet_estimates()

    def test_cost_scales_with_sensors(self):
        engine = InvocationEngine(DEFAULT_METRICS, rng=0)
        small = SensorDeployment(engine)
        large = SensorDeployment(engine)
        small.deploy(make_service("a"))
        for i in range(10):
            large.deploy(make_service(f"svc-{i}"))
        assert large.total_cost() > small.total_cost()
        assert large.sensors_deployed == 10

    def test_deploy_idempotent(self):
        sensors = SensorDeployment(InvocationEngine(DEFAULT_METRICS, rng=0))
        svc = make_service()
        sensors.deploy(svc)
        sensors.deploy(svc)
        assert sensors.sensors_deployed == 1

    def test_report_sink_called(self):
        seen = []
        sensors = SensorDeployment(
            InvocationEngine(DEFAULT_METRICS, rng=0),
            report_sink=lambda sid, rep: seen.append(sid),
        )
        svc = make_service()
        sensors.deploy(svc)
        sensors.probe(svc, time=0.0)
        assert seen == ["s0"]


class TestThirdPartyMonitor:
    def test_sweep_covers_all(self):
        monitor = ThirdPartyMonitor(InvocationEngine(DEFAULT_METRICS, rng=0))
        services = [make_service(f"s{i}", quality=0.5 + i * 0.1) for i in range(3)]
        monitor.sweep(services, time=0.0)
        assert monitor.probe_count == 3
        assert monitor.report_for("s2").overall() > monitor.report_for("s0").overall()


class TestExplorerAgentPool:
    def test_only_negative_reputation_probed(self):
        filed = []
        pool = ExplorerAgentPool(
            InvocationEngine(DEFAULT_METRICS, rng=0),
            feedback_sink=filed.append,
            reputation_threshold=0.4,
            rng=0,
        )
        services = [make_service("good"), make_service("bad")]
        reputations = {"good": 0.8, "bad": 0.2}
        pool.explore(services, reputations, time=0.0)
        assert [fb.target for fb in filed] == ["bad"]

    def test_improved_service_rehabilitated(self):
        filed = []
        pool = ExplorerAgentPool(
            InvocationEngine(DEFAULT_METRICS, rng=0),
            feedback_sink=filed.append,
            reputation_threshold=0.4,
            rng=0,
        )
        # Service has recovered to 0.7 but reputation still says 0.2.
        improved = make_service(
            "s0", quality=0.7,
            behavior=ImprovingBehavior(initial_deficit=0.5, ramp_duration=10),
        )
        pool.explore([improved], {"s0": 0.2}, time=100.0)
        assert pool.rehabilitations == 1
        assert filed[0].rating > 0.4

    def test_unimproved_service_stays_down(self):
        filed = []
        pool = ExplorerAgentPool(
            InvocationEngine(DEFAULT_METRICS, rng=0),
            feedback_sink=filed.append,
            reputation_threshold=0.4,
            rng=0,
        )
        still_bad = make_service("s0", quality=0.2)
        pool.explore([still_bad], {"s0": 0.2}, time=0.0)
        assert pool.rehabilitations == 0
        assert filed[0].rating < 0.4

    def test_continued_support_until_reputation_catches_up(self):
        filed = []
        pool = ExplorerAgentPool(
            InvocationEngine(DEFAULT_METRICS, rng=0),
            feedback_sink=filed.append,
            reputation_threshold=0.4,
            support_margin=0.05,
            rng=0,
        )
        improved = make_service("s0", quality=0.9)
        # Round 1: negative reputation triggers the probe.
        pool.explore([improved], {"s0": 0.2}, time=0.0)
        assert len(filed) == 1
        # Round 2: reputation recovered above the threshold but is
        # still far below the measured 0.9 -> keep supporting.
        pool.explore([improved], {"s0": 0.55}, time=1.0)
        assert len(filed) == 2
        # Round 3: reputation has caught up -> stop.
        pool.explore([improved], {"s0": 0.88}, time=2.0)
        assert len(filed) == 2

    def test_unknown_reputation_not_probed(self):
        pool = ExplorerAgentPool(
            InvocationEngine(DEFAULT_METRICS, rng=0),
            feedback_sink=lambda fb: None,
            rng=0,
        )
        pool.explore([make_service("s0")], {}, time=0.0)
        assert pool.probe_count == 0


class TestThirdPartyMonitorRetry:
    @staticmethod
    def failing_service(service_id="flaky"):
        q = {m.name: 0.7 for m in DEFAULT_METRICS}
        return Service(
            description=ServiceDescription(
                service=service_id, provider="p0", category="cat"
            ),
            profile=QoSProfile(quality=q, noise=0.0, success_rate=0.0),
        )

    def test_retry_charges_every_probe(self):
        from repro.faults.resilience import RetryPolicy

        monitor = ThirdPartyMonitor(
            InvocationEngine(DEFAULT_METRICS, rng=0),
            retry=RetryPolicy(max_attempts=3, rng=0),
        )
        report = monitor.probe(self.failing_service(), time=0.0)
        assert monitor.probe_count == 3  # initial + 2 retries, all billed
        assert monitor.retried_probes == 2
        assert report.samples == 1  # only the final outcome is recorded
        assert report.success_rate == 0.0

    def test_no_retry_without_policy(self):
        monitor = ThirdPartyMonitor(InvocationEngine(DEFAULT_METRICS, rng=0))
        monitor.probe(self.failing_service(), time=0.0)
        assert monitor.probe_count == 1
        assert monitor.retried_probes == 0

    def test_successful_probe_never_retries(self):
        from repro.faults.resilience import RetryPolicy

        monitor = ThirdPartyMonitor(
            InvocationEngine(DEFAULT_METRICS, rng=0),
            retry=RetryPolicy(max_attempts=3, rng=0),
        )
        monitor.probe(make_service(), time=0.0)
        assert monitor.probe_count == 1
        assert monitor.retried_probes == 0
