"""Tests for SLAs and third-party supervision."""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.records import Interaction
from repro.services.qos import DEFAULT_METRICS
from repro.services.sla import SLA, SLAMonitor, negotiate_sla


def interaction(rt=0.2, availability=0.95, success=True, time=1.0):
    obs = {"response_time": rt, "availability": availability} if success else {}
    return Interaction(
        consumer="c0", service="s0", provider="p0", time=time,
        success=success, observations=obs,
    )


class TestSLA:
    def test_floor_validation(self):
        with pytest.raises(ConfigurationError):
            SLA(consumer="c", service="s", floors={"x": 1.5})

    def test_negative_penalty_rejected(self):
        with pytest.raises(ConfigurationError):
            SLA(consumer="c", service="s", penalty=-1.0)


class TestNegotiateSLA:
    def test_floors_below_claims(self):
        sla = negotiate_sla("c0", "s0", {"availability": 0.9}, slack=0.1)
        assert sla.floors["availability"] == pytest.approx(0.8)

    def test_floor_never_negative(self):
        sla = negotiate_sla("c0", "s0", {"x": 0.05}, slack=0.1)
        assert sla.floors["x"] == 0.0

    def test_negative_slack_rejected(self):
        with pytest.raises(ConfigurationError):
            negotiate_sla("c0", "s0", {}, slack=-0.1)


class TestSLAMonitor:
    def make_monitor(self, floors=None):
        monitor = SLAMonitor(DEFAULT_METRICS)
        sla = SLA(
            consumer="c0",
            service="s0",
            floors=floors or {"availability": 0.9, "response_time": 0.8},
            penalty=2.0,
            negotiation_cost=1.5,
        )
        monitor.register(sla)
        return monitor, sla

    def test_meeting_floors_no_violation(self):
        monitor, _ = self.make_monitor()
        # availability 0.95 >= 0.9; response_time 0.1s -> quality ~0.955
        assert monitor.check(interaction(rt=0.1)) == []

    def test_breach_detected(self):
        monitor, _ = self.make_monitor()
        violations = monitor.check(interaction(availability=0.5))
        assert len(violations) == 1
        v = violations[0]
        assert v.metric == "availability"
        assert v.shortfall == pytest.approx(0.4)

    def test_failure_violates_every_floor(self):
        monitor, _ = self.make_monitor()
        violations = monitor.check(interaction(success=False))
        assert {v.metric for v in violations} == {
            "availability", "response_time",
        }

    def test_unregistered_pair_ignored(self):
        monitor, _ = self.make_monitor()
        other = Interaction(
            consumer="c9", service="s0", provider="p0", time=0.0,
            success=True, observations={"availability": 0.1},
        )
        assert monitor.check(other) == []
        assert monitor.checks == 0

    def test_penalties_owed(self):
        monitor, sla = self.make_monitor()
        monitor.check(interaction(availability=0.5))
        monitor.check(interaction(availability=0.4))
        assert monitor.penalties_owed() == {"s0": 4.0}

    def test_negotiation_cost_accumulates(self):
        monitor, _ = self.make_monitor()
        assert monitor.total_negotiation_cost == 1.5

    def test_agreement_lookup(self):
        monitor, sla = self.make_monitor()
        assert monitor.agreement("c0", "s0") is sla
        assert monitor.agreement("c0", "s1") is None

    def test_metrics_not_observed_are_skipped(self):
        monitor, _ = self.make_monitor(floors={"accuracy": 0.9})
        # accuracy not in the observations: cannot be judged
        assert monitor.check(interaction()) == []
