"""Tests for the invocation engine."""

import pytest

from repro.services.consumer import Consumer, PreferenceProfile
from repro.services.description import ServiceDescription
from repro.services.invocation import InvocationEngine
from repro.services.provider import Service
from repro.services.qos import DEFAULT_METRICS, QoSProfile


def make_service(quality=0.7, success_rate=1.0, segment_offsets=None):
    q = {m.name: quality for m in DEFAULT_METRICS}
    return Service(
        description=ServiceDescription(
            service="s0", provider="p0", category="cat"
        ),
        profile=QoSProfile(
            quality=q,
            noise=0.0,
            success_rate=success_rate,
            segment_offsets=segment_offsets or {},
        ),
    )


class TestInvocationEngine:
    def test_successful_invocation_has_observations(self):
        engine = InvocationEngine(DEFAULT_METRICS, rng=0)
        consumer = Consumer("c0", rng=0)
        inter = engine.invoke(consumer, make_service(), time=1.0)
        assert inter.success
        assert set(inter.observations) == set(DEFAULT_METRICS.names())
        assert inter.time == 1.0
        assert inter.provider == "p0"

    def test_always_failing_service(self):
        engine = InvocationEngine(DEFAULT_METRICS, rng=0)
        consumer = Consumer("c0", rng=0)
        inter = engine.invoke(
            consumer, make_service(success_rate=0.0), time=0.0
        )
        assert not inter.success
        assert inter.observations == {}

    def test_observations_match_true_quality_without_noise(self):
        engine = InvocationEngine(DEFAULT_METRICS, rng=0)
        consumer = Consumer("c0", rng=0)
        inter = engine.invoke(consumer, make_service(quality=0.6), time=0.0)
        for name, raw in inter.observations.items():
            assert DEFAULT_METRICS.get(name).normalize(raw) == pytest.approx(0.6)

    def test_segment_affects_subjective_observation(self):
        offsets = {"accuracy": {0: 0.2, 1: -0.2}}
        svc = make_service(quality=0.5, segment_offsets=offsets)
        engine = InvocationEngine(DEFAULT_METRICS, rng=0)
        c_seg0 = Consumer("c0", preferences=PreferenceProfile(segment=0), rng=0)
        c_seg1 = Consumer("c1", preferences=PreferenceProfile(segment=1), rng=0)
        i0 = engine.invoke(c_seg0, svc, time=0.0)
        i1 = engine.invoke(c_seg1, svc, time=0.0)
        q0 = DEFAULT_METRICS.get("accuracy").normalize(i0.observations["accuracy"])
        q1 = DEFAULT_METRICS.get("accuracy").normalize(i1.observations["accuracy"])
        assert q0 == pytest.approx(0.7)
        assert q1 == pytest.approx(0.3)

    def test_anonymous_invocation_uses_base_segment(self):
        offsets = {"accuracy": {0: 0.2}}
        svc = make_service(quality=0.5, segment_offsets=offsets)
        engine = InvocationEngine(DEFAULT_METRICS, rng=0)
        inter = engine.invoke_anonymous("monitor", svc, time=0.0)
        q = DEFAULT_METRICS.get("accuracy").normalize(inter.observations["accuracy"])
        assert q == pytest.approx(0.5)
        assert inter.consumer == "monitor"

    def test_invocation_count(self):
        engine = InvocationEngine(DEFAULT_METRICS, rng=0)
        consumer = Consumer("c0", rng=0)
        for _ in range(3):
            engine.invoke(consumer, make_service(), time=0.0)
        assert engine.invocation_count == 3


# ---------------------------------------------------------------------------
# Fault-plan and timeout hooks
# ---------------------------------------------------------------------------

from repro.faults.plan import FaultPlan, OutageWindow  # noqa: E402
from repro.faults.resilience import Timeout  # noqa: E402


def slow_plan(service_id="s0", start=0.0, end=10.0, factor=10.0):
    return FaultPlan(
        slow_services={service_id: [OutageWindow(start, end)]},
        slowdown_factor=factor,
    )


class TestInvocationFaults:
    def test_slow_window_inflates_time_metrics_only(self):
        svc = make_service(quality=0.5)
        baseline = InvocationEngine(DEFAULT_METRICS, rng=0)
        faulty = InvocationEngine(
            DEFAULT_METRICS, rng=0, fault_plan=slow_plan(factor=10.0)
        )
        consumer = Consumer("c0", rng=0)
        normal = baseline.invoke(consumer, svc, time=1.0)
        slowed = faulty.invoke(Consumer("c0", rng=0), svc, time=1.0)
        for name in normal.observations:
            unit = DEFAULT_METRICS.get(name).unit
            if unit == "s":
                assert slowed.observations[name] == pytest.approx(
                    10.0 * normal.observations[name]
                )
            else:
                assert slowed.observations[name] == pytest.approx(
                    normal.observations[name]
                )

    def test_outside_window_no_slowdown(self):
        svc = make_service()
        engine = InvocationEngine(
            DEFAULT_METRICS, rng=0,
            fault_plan=slow_plan(start=5.0, end=10.0),
        )
        inter = engine.invoke(Consumer("c0", rng=0), svc, time=0.0)
        assert inter.success

    def test_timeout_fails_slowed_invocation(self):
        # normal response_time tops out at 2s, so a 3s budget only fires
        # when the slowdown window is active
        svc = make_service()
        engine = InvocationEngine(
            DEFAULT_METRICS, rng=0,
            fault_plan=slow_plan(start=5.0, end=10.0),
            timeout=Timeout(3.0),
        )
        ok = engine.invoke(Consumer("c0", rng=0), svc, time=0.0)
        assert ok.success
        timed_out = engine.invoke(Consumer("c1", rng=0), svc, time=7.0)
        assert not timed_out.success
        assert timed_out.observations == {}
        assert engine.timeout_count == 1

    def test_timeout_without_plan_uses_raw_observation(self):
        svc = make_service()
        engine = InvocationEngine(
            DEFAULT_METRICS, rng=0, timeout=Timeout(0.001)
        )
        inter = engine.invoke(Consumer("c0", rng=0), svc, time=0.0)
        assert not inter.success  # any realistic response_time > 1ms
        assert engine.timeout_count == 1

    def test_anonymous_invocations_share_fault_path(self):
        svc = make_service()
        engine = InvocationEngine(
            DEFAULT_METRICS, rng=0,
            fault_plan=slow_plan(),
            timeout=Timeout(3.0),
        )
        inter = engine.invoke_anonymous("monitor", svc, time=1.0)
        assert not inter.success
        assert engine.timeout_count == 1
