"""Tests for service descriptions and QoS advertisements."""

import pytest

from repro.services.description import (
    QoSAdvertisement,
    ServiceDescription,
    advertisement_table,
)


class TestServiceDescription:
    def test_matches_category(self):
        desc = ServiceDescription(service="s", provider="p",
                                  category="weather")
        assert desc.matches("weather")
        assert not desc.matches("flights")

    def test_defaults(self):
        desc = ServiceDescription(service="s", provider="p", category="c")
        assert desc.operations == ("invoke",)
        assert desc.version == 1

    def test_frozen(self):
        desc = ServiceDescription(service="s", provider="p", category="c")
        with pytest.raises(AttributeError):
            desc.category = "other"


class TestQoSAdvertisement:
    def test_claim_lookup(self):
        ad = QoSAdvertisement(service="s", claimed={"availability": 0.95})
        assert ad.claim("availability") == 0.95
        assert ad.claim("missing", default=0.4) == 0.4

    def test_claim_bounds(self):
        with pytest.raises(ValueError):
            QoSAdvertisement(service="s", claimed={"x": 1.2})

    def test_exaggeration_signed_gap(self):
        ad = QoSAdvertisement(service="s",
                              claimed={"a": 0.9, "b": 0.5})
        truth = {"a": 0.6, "b": 0.5}
        assert ad.exaggeration(truth) == pytest.approx(0.15)

    def test_exaggeration_no_overlap(self):
        ad = QoSAdvertisement(service="s", claimed={"a": 0.9})
        assert ad.exaggeration({"z": 0.1}) == 0.0

    def test_advertisement_table(self):
        ads = [
            QoSAdvertisement(service="s1", claimed={"a": 0.5}),
            QoSAdvertisement(service="s2", claimed={"b": 0.7}),
        ]
        table = advertisement_table(ads)
        assert table == {"s1": {"a": 0.5}, "s2": {"b": 0.7}}
