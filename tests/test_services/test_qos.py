"""Tests for the QoS ontology (Figure 3)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError, UnknownEntityError
from repro.services.qos import (
    DEFAULT_METRICS,
    Direction,
    MetricDef,
    QoSProfile,
    metric,
    random_profile,
    w3c_taxonomy,
)


class TestMetricDef:
    def test_higher_is_better_normalization(self):
        m = metric("throughput", "perf", Direction.HIGHER_IS_BETTER, 0, 100)
        assert m.normalize(100) == 1.0
        assert m.normalize(0) == 0.0
        assert m.normalize(50) == 0.5

    def test_lower_is_better_normalization(self):
        m = metric("rt", "perf", Direction.LOWER_IS_BETTER, 0, 2)
        assert m.normalize(0) == 1.0
        assert m.normalize(2) == 0.0

    def test_normalize_clamps_out_of_range(self):
        m = metric("x", "c", Direction.HIGHER_IS_BETTER, 0, 1)
        assert m.normalize(5.0) == 1.0
        assert m.normalize(-5.0) == 0.0

    def test_denormalize_roundtrip(self):
        m = metric("rt", "perf", Direction.LOWER_IS_BETTER, 0.5, 2.5)
        for q in [0.0, 0.25, 0.5, 1.0]:
            assert abs(m.normalize(m.denormalize(q)) - q) < 1e-12

    def test_invalid_range(self):
        with pytest.raises(ConfigurationError):
            metric("x", "c", Direction.HIGHER_IS_BETTER, 1.0, 1.0)

    @given(st.floats(0.0, 1.0))
    def test_property_roundtrip(self, q):
        m = metric("x", "c", Direction.HIGHER_IS_BETTER, -3.0, 9.0)
        assert abs(m.normalize(m.denormalize(q)) - q) < 1e-9


class TestW3CTaxonomy:
    def test_figure3_metric_count(self):
        # 4 performance + 8 dependability + 3 integrity + 7 security
        # + 1 application-specific (cost) = 23
        assert len(w3c_taxonomy()) == 23

    def test_figure3_top_categories(self):
        cats = w3c_taxonomy().categories()
        assert cats == [
            "performance",
            "dependability",
            "integrity",
            "security",
            "application_specific",
        ]

    def test_figure3_key_metrics_present(self):
        tax = w3c_taxonomy()
        for name in [
            "processing_time", "throughput", "response_time", "latency",
            "availability", "accessibility", "accuracy", "reliability",
            "capacity", "scalability", "stability", "robustness",
            "data_integrity", "transactional_integrity", "interoperability",
            "accountability", "authentication", "authorization",
            "auditability", "non_repudiation", "confidentiality",
            "encryption", "cost",
        ]:
            assert name in tax

    def test_accuracy_is_subjective(self):
        # The paper: facets like accuracy "can not be acquired through
        # execution monitoring".
        tax = w3c_taxonomy()
        assert not tax.get("accuracy").observable
        assert tax.get("response_time").observable

    def test_unknown_metric_raises(self):
        with pytest.raises(UnknownEntityError):
            w3c_taxonomy().get("nonexistent")

    def test_tree_render_contains_leaves(self):
        lines = w3c_taxonomy().tree_lines()
        text = "\n".join(lines)
        assert "performance" in text
        assert "- response_time" in text

    def test_observable_plus_subjective_is_all(self):
        tax = w3c_taxonomy()
        assert len(tax.observable_metrics()) + len(tax.subjective_metrics()) == len(tax)


class TestQoSProfile:
    def test_quality_bounds_validated(self):
        with pytest.raises(ConfigurationError):
            QoSProfile(quality={"x": 1.5})

    def test_overall_uniform(self):
        p = QoSProfile(quality={"a": 0.2, "b": 0.8}, noise=0.0)
        assert p.overall() == 0.5

    def test_overall_weighted(self):
        p = QoSProfile(quality={"a": 0.0, "b": 1.0}, noise=0.0)
        assert p.overall({"a": 1.0, "b": 3.0}) == 0.75

    def test_segment_offsets(self):
        p = QoSProfile(
            quality={"accuracy": 0.5},
            segment_offsets={"accuracy": {0: 0.3, 1: -0.3}},
        )
        assert p.true_quality("accuracy", segment=0) == 0.8
        assert p.true_quality("accuracy", segment=1) == pytest.approx(0.2)
        assert p.true_quality("accuracy") == 0.5

    def test_sample_respects_zero_noise(self, taxonomy):
        quality = {m.name: 0.6 for m in taxonomy}
        p = QoSProfile(quality=quality, noise=0.0)
        obs = p.sample(taxonomy, rng=np.random.default_rng(0))
        for name, raw in obs.items():
            assert abs(taxonomy.get(name).normalize(raw) - 0.6) < 1e-9

    def test_sample_deterministic_with_seed(self, taxonomy):
        quality = {m.name: 0.6 for m in taxonomy}
        p = QoSProfile(quality=quality, noise=0.1)
        a = p.sample(taxonomy, rng=np.random.default_rng(5))
        b = p.sample(taxonomy, rng=np.random.default_rng(5))
        assert a == b

    def test_shifted_clamps(self):
        p = QoSProfile(quality={"a": 0.9}, noise=0.0)
        assert p.shifted(0.5).quality["a"] == 1.0
        assert p.shifted(-2.0).quality["a"] == 0.0

    def test_shifted_preserves_other_fields(self):
        p = QoSProfile(
            quality={"a": 0.5},
            noise=0.07,
            segment_offsets={"a": {0: 0.1}},
            success_rate=0.9,
        )
        q = p.shifted(0.1)
        assert q.noise == 0.07
        assert q.segment_offsets == {"a": {0: 0.1}}
        assert q.success_rate == 0.9


class TestRandomProfile:
    def test_deterministic(self, taxonomy):
        a = random_profile(taxonomy, rng=np.random.default_rng(3))
        b = random_profile(taxonomy, rng=np.random.default_rng(3))
        assert a.quality == b.quality

    def test_covers_all_metrics(self, taxonomy):
        p = random_profile(taxonomy, rng=np.random.default_rng(3))
        assert set(p.quality) == set(taxonomy.names())

    def test_segments_only_on_subjective_metrics(self, taxonomy):
        p = random_profile(
            taxonomy, rng=np.random.default_rng(3), n_segments=3,
            segment_spread=0.2,
        )
        subjective = {m.name for m in taxonomy.subjective_metrics()}
        assert set(p.segment_offsets) == subjective

    def test_mean_quality_controls_centre(self, taxonomy):
        p = random_profile(
            taxonomy, rng=np.random.default_rng(3), mean_quality=0.9,
            spread=0.05,
        )
        assert p.overall() > 0.8
