"""Tests for metric vocabulary alignment (the common-ontology caveat)."""

import pytest

from repro.common.errors import ConfigurationError, UnknownEntityError
from repro.common.records import Interaction
from repro.services.ontology import MetricAlias, MetricVocabulary
from repro.services.qos import DEFAULT_METRICS
from repro.services.sla import SLA, SLAMonitor


class TestMetricAlias:
    def test_unit_conversion_roundtrip(self):
        ms_to_s = MetricAlias(canonical="response_time", scale=0.001)
        assert ms_to_s.to_canonical(250.0) == pytest.approx(0.25)
        assert ms_to_s.from_canonical(0.25) == pytest.approx(250.0)

    def test_zero_scale_rejected(self):
        with pytest.raises(ConfigurationError):
            MetricAlias(canonical="response_time", scale=0.0)


class TestMetricVocabulary:
    def build(self):
        return MetricVocabulary(
            DEFAULT_METRICS,
            aliases={
                "responseTime_ms": MetricAlias("response_time",
                                               scale=0.001),
                "uptime": MetricAlias("availability"),
            },
        )

    def test_canonical_names_resolve_to_themselves(self):
        vocab = self.build()
        assert vocab.resolve("availability") == "availability"

    def test_alias_resolution(self):
        vocab = self.build()
        assert vocab.resolve("uptime") == "availability"

    def test_unknown_name_raises(self):
        with pytest.raises(UnknownEntityError):
            self.build().resolve("wat")

    def test_alias_must_target_taxonomy(self):
        with pytest.raises(UnknownEntityError):
            MetricVocabulary(
                DEFAULT_METRICS,
                aliases={"x": MetricAlias("not_a_metric")},
            )

    def test_translate_observations_converts_units(self):
        vocab = self.build()
        out = vocab.translate_observations(
            {"responseTime_ms": 250.0, "uptime": 0.99}
        )
        assert out == {
            "response_time": pytest.approx(0.25),
            "availability": 0.99,
        }

    def test_unknown_observations_dropped_or_strict(self):
        vocab = self.build()
        assert vocab.translate_observations({"mystery": 1.0}) == {}
        with pytest.raises(UnknownEntityError):
            vocab.translate_observations({"mystery": 1.0}, strict=True)

    def test_alignment_coverage(self):
        vocab = self.build()
        assert vocab.alignment_coverage(
            ["uptime", "cost", "mystery"]
        ) == pytest.approx(2 / 3)


class TestOntologyMismatchFailureMode:
    """The paper's caveat, demonstrated: SLA supervision silently
    misses violations when the parties' vocabularies differ."""

    def provider_interaction(self, rt_ms=1500.0):
        # The provider reports response time in *milliseconds* under
        # its own metric name.
        return Interaction(
            consumer="c0", service="s0", provider="p0", time=0.0,
            success=True, observations={"responseTime_ms": rt_ms},
        )

    def test_without_alignment_violation_goes_undetected(self):
        monitor = SLAMonitor(DEFAULT_METRICS)
        monitor.register(SLA(
            consumer="c0", service="s0",
            floors={"response_time": 0.8},  # wants quality >= 0.8
        ))
        # 1500 ms is terrible, but the observation's name doesn't match
        # the canonical taxonomy: nothing is checked.
        violations = monitor.check(self.provider_interaction())
        assert violations == []  # silent miss!

    def test_with_alignment_violation_detected(self):
        vocab = MetricVocabulary(
            DEFAULT_METRICS,
            aliases={"responseTime_ms": MetricAlias("response_time",
                                                    scale=0.001)},
        )
        monitor = SLAMonitor(DEFAULT_METRICS)
        monitor.register(SLA(
            consumer="c0", service="s0",
            floors={"response_time": 0.8},
        ))
        raw = self.provider_interaction()
        aligned = Interaction(
            consumer=raw.consumer, service=raw.service,
            provider=raw.provider, time=raw.time, success=raw.success,
            observations=vocab.translate_observations(raw.observations),
        )
        violations = monitor.check(aligned)
        assert len(violations) == 1
        assert violations[0].metric == "response_time"
