"""The serve determinism contract, property-checked.

The same timestamped operations must produce byte-identical rankings,
final scores, and telemetry traces no matter how their submissions
interleave on the event loop, how many workers drain the execution
queue, or which ``global_random_seed`` builds the world — and a replay
of the recorded ingest log must re-derive all of it exactly.
"""

import asyncio
from typing import Dict, List, Tuple

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.serve.core import ServiceCore
from repro.serve.loadgen import LoadSpec, make_core
from repro.serve.protocol import (
    Arrival,
    feedback_arrival,
    rank_arrival,
)
from repro.serve.replay import (
    replay_log,
    scores_sha256,
    snapshot_sha256,
)
from repro.serve.protocol import responses_sha256
from repro.obs.recorder import Recorder, use_recorder
from repro.serve.service import SelectionService

N_OPS = 10


def _operations(seed: int) -> List[Arrival]:
    """A fixed, seed-parameterised set of timestamped operations."""
    ops: List[Arrival] = []
    seqs: Dict[str, int] = {}
    for i in range(N_OPS):
        client = f"c{i % 3}"
        seq = seqs.get(client, 0)
        seqs[client] = seq + 1
        now = 0.25 + i / 8.0 + (seed % 7) / 64.0
        if i % 3 == 2:
            ops.append(
                feedback_arrival(
                    now=now,
                    client_id=client,
                    client_seq=seq,
                    tenant=f"t{i % 2}",
                    rater=client,
                    target=f"svc_p0_s{i % 2}",
                    rating=(seed % 10) / 10.0,
                )
            )
        else:
            ops.append(
                rank_arrival(
                    now=now,
                    client_id=client,
                    client_seq=seq,
                    tenant=f"t{i % 2}",
                    category="weather_report",
                    perspective=client,
                )
            )
    return ops


def _identity(core: ServiceCore, snapshot) -> Tuple[str, str, str, str]:
    return (
        core.log.sha256(),
        responses_sha256(core.responses),
        scores_sha256(core.final_scores()),
        snapshot_sha256(snapshot),
    )


def _run_interleaved(
    seed: int, order: List[int], workers: int
) -> Tuple[str, str, str, str]:
    """Submit the op set in *order* over *workers* and hash the run."""
    ops = _operations(seed)

    async def drive(core: ServiceCore) -> None:
        async with SelectionService(core, workers=workers) as service:
            await asyncio.gather(
                *(service.submit(ops[index]) for index in order)
            )

    core = make_core(LoadSpec(seed=seed))
    with use_recorder(Recorder()) as rec:
        asyncio.run(drive(core))
        snapshot = rec.snapshot(meta={"seed": seed})
    return _identity(core, snapshot)


def _run_sync_baseline(seed: int) -> Tuple[str, str, str, str]:
    """The reference semantics: one canonical batch, no asyncio."""
    core = make_core(LoadSpec(seed=seed))
    with use_recorder(Recorder()) as rec:
        core.ingest(_operations(seed))
        snapshot = rec.snapshot(meta={"seed": seed})
    return _identity(core, snapshot)


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[
        HealthCheck.too_slow,
        HealthCheck.function_scoped_fixture,
    ],
)
@given(
    order=st.permutations(list(range(N_OPS))),
    workers=st.sampled_from([1, 2, 4]),
)
def test_interleaving_and_worker_invariance(
    global_random_seed, order, workers
):
    """Shuffled submission order x worker count x rotating seed ⇒ the
    same four canonical hashes as the synchronous reference run."""
    assert (
        _run_interleaved(global_random_seed, order, workers)
        == _run_sync_baseline(global_random_seed)
    )


@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[
        HealthCheck.too_slow,
        HealthCheck.function_scoped_fixture,
    ],
)
@given(order=st.permutations(list(range(N_OPS))))
def test_replayed_log_rederives_everything(global_random_seed, order):
    """Whatever the interleaving, replaying the recorded log on a
    fresh core reproduces responses, scores, and trace bytes."""
    seed = global_random_seed
    ops = _operations(seed)

    async def drive(core: ServiceCore) -> None:
        async with SelectionService(core, workers=2) as service:
            await asyncio.gather(
                *(service.submit(ops[index]) for index in order)
            )

    core = make_core(LoadSpec(seed=seed))
    with use_recorder(Recorder()) as rec:
        asyncio.run(drive(core))
        snapshot = rec.snapshot(meta={"seed": seed})

    result = replay_log(
        lambda: make_core(LoadSpec(seed=seed)),
        core.log,
        meta={"seed": seed},
    )
    assert result.responses == tuple(core.responses)
    assert result.final_scores == core.final_scores()
    assert result.trace_sha256 == snapshot_sha256(snapshot)


def test_loadgen_identity_stable_across_seeds(global_random_seed):
    """The full closed-loop generator is deterministic for any seed in
    [0, 99]: run twice, byte-identical; replayed, byte-identical."""
    from repro.serve.loadgen import replay_report, run_loadgen

    spec = LoadSpec(
        tenants=2,
        clients_per_tenant=2,
        requests_per_client=4,
        seed=global_random_seed,
    )
    first = run_loadgen(spec)
    second = run_loadgen(spec)
    assert first.identity() == second.identity()
    replay = replay_report(spec, first.log)
    assert replay.responses_sha256 == first.responses_sha256
    assert replay.scores_sha256 == first.scores_sha256
    assert replay.trace_sha256 == first.trace_sha256
