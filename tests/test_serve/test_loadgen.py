"""Closed-loop load generator: canonical outputs, independent tally,
and the ``python -m repro.obs summarize`` serve section."""

import io
import json

import pytest

from repro.obs.summarize import render_json, render_text, summarize
from repro.obs.trace import load_jsonl, write_jsonl
from repro.serve.core import ServeConfig
from repro.serve.loadgen import LoadSpec, replay_report, run_loadgen
from repro.serve.sla import sla_counts

SMALL = LoadSpec(
    tenants=2, clients_per_tenant=2, requests_per_client=5, seed=3
)

CHAOS = LoadSpec(
    tenants=2,
    clients_per_tenant=2,
    requests_per_client=6,
    seed=4,
    outage_rounds=(1, 3),
    rebuild_rounds=(4, 5),
)

TIGHT = LoadSpec(
    tenants=2,
    clients_per_tenant=3,
    requests_per_client=6,
    seed=5,
    think_time=0.002,
    config=ServeConfig(
        drain_rate=64.0, max_depth=4, tenant_rate=16.0, tenant_burst=4
    ),
)


@pytest.fixture(scope="module")
def small_report():
    return run_loadgen(SMALL)


@pytest.fixture(scope="module")
def chaos_report():
    return run_loadgen(CHAOS)


@pytest.fixture(scope="module")
def tight_report():
    return run_loadgen(TIGHT)


class TestLoadgenCanonical:
    def test_same_spec_same_identity(self, small_report):
        again = run_loadgen(SMALL)
        assert again.identity() == small_report.identity()

    def test_worker_count_invariance(self, small_report):
        for workers in (1, 3):
            assert (
                run_loadgen(SMALL, workers=workers).identity()
                == small_report.identity()
            )

    def test_replay_matches_live(self, chaos_report):
        result = replay_report(CHAOS, chaos_report.log)
        assert result.responses == chaos_report.responses
        assert result.final_scores == chaos_report.final_scores
        assert result.trace_sha256 == chaos_report.trace_sha256
        assert result.responses_sha256 == chaos_report.responses_sha256

    def test_different_seed_different_identity(self, small_report):
        other = run_loadgen(
            LoadSpec(
                tenants=2,
                clients_per_tenant=2,
                requests_per_client=5,
                seed=77,
            )
        )
        assert other.identity() != small_report.identity()


class TestClientSideTally:
    def test_tally_matches_server_sla(
        self, small_report, chaos_report, tight_report
    ):
        for report in (small_report, chaos_report, tight_report):
            assert report.tally_matches_sla()

    def test_chaos_run_sees_degraded_service(self, chaos_report):
        degraded = sum(
            row["degraded"] for row in chaos_report.sla
        )
        assert degraded > 0

    def test_tight_config_sheds_and_throttles(self, tight_report):
        counts = sla_counts(tight_report.sla)
        rejected = sum(
            c["shed"] + c["throttled"] for c in counts.values()
        )
        assert rejected > 0
        assert any(row["shed_rate"] > 0 for row in tight_report.sla)

    def test_wall_quantiles_present_but_not_canonical(self, small_report):
        quantiles = small_report.wall_quantiles_ms()
        assert set(quantiles) == {"_all", "t0", "t1"}
        assert quantiles["_all"]["p99_ms"] >= quantiles["_all"]["p50_ms"]
        # Wall times must never appear in canonical surfaces.
        blob = json.dumps(
            [r.to_dict() for r in small_report.responses]
        ) + small_report.log.canonical_bytes().decode("utf-8")
        for values in small_report.wall_ns.values():
            for value in values:
                assert str(value) not in blob


class TestSummarizeServeSection:
    def test_section_matches_loadgen_sla(self, chaos_report, tmp_path):
        path = tmp_path / "serve.jsonl"
        with open(path, "w", encoding="utf-8", newline="\n") as handle:
            write_jsonl(chaos_report.snapshot, handle)
        summary = summarize([load_jsonl(path)])
        assert summary["serve"] == chaos_report.sla

    def test_text_rendering_has_serve_block(self, chaos_report):
        summary = summarize([chaos_report.snapshot])
        text = render_text(summary)
        assert "serve SLA (per tenant):" in text
        assert "t0" in text and "t1" in text

    def test_json_rendering_canonical(self, chaos_report):
        summary = summarize([chaos_report.snapshot])
        assert render_json(summary) == render_json(
            summarize([chaos_report.snapshot])
        )

    def test_no_serve_section_without_serve_metrics(self):
        from repro.obs.recorder import Recorder

        rec = Recorder()
        rec.count("selection.requests")
        summary = summarize([rec.snapshot(meta={})])
        assert summary["serve"] == []
        assert "serve SLA" not in render_text(summary)


class TestSpecValidation:
    def test_rejects_empty_workload(self):
        with pytest.raises(ValueError):
            LoadSpec(tenants=0)

    def test_trace_roundtrip_preserves_identity(self, small_report):
        buffer = io.StringIO()
        write_jsonl(small_report.snapshot, buffer)
        assert buffer.getvalue().startswith("{")
