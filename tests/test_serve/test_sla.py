"""SLA table arithmetic: histogram quantiles, burn rate, canonical rows."""

import pytest

from repro.serve.sla import (
    SERVE_WAIT_BUCKETS,
    histogram_quantile,
    serve_sla_table,
    serve_tenants,
    sla_counts,
)


def _histogram(counts, buckets=(0.1, 1.0, 10.0)):
    return {
        "buckets": list(buckets),
        "counts": list(counts),
        "count": sum(counts),
        "sum": 0.0,
    }


class TestHistogramQuantile:
    def test_empty_series_is_zero(self):
        assert histogram_quantile(_histogram([0, 0, 0]), 0.99) == 0.0

    def test_upper_bound_estimate(self):
        entry = _histogram([5, 4, 1])
        assert histogram_quantile(entry, 0.5) == 0.1
        assert histogram_quantile(entry, 0.9) == 1.0
        assert histogram_quantile(entry, 1.0) == 10.0

    def test_overflow_clamps_to_top_bound(self):
        # Ten observations past the last boundary still land somewhere:
        # the top bound, by construction.
        entry = {
            "buckets": [0.1, 1.0],
            "counts": [0, 0],
            "count": 10,
            "sum": 100.0,
        }
        assert histogram_quantile(entry, 0.99) == 1.0

    def test_quantile_domain_checked(self):
        with pytest.raises(ValueError):
            histogram_quantile(_histogram([1, 0, 0]), 1.5)


def _metrics(
    admission=((("t0", "admitted"), 8), (("t0", "shed"), 2)),
    requests=((("t0", "rank", "ok"), 6), (("t0", "rank", "failed"), 2)),
):
    return {
        "serve.admission": {
            "kind": "counter",
            "labels": ["tenant", "decision"],
            "series": [[list(k), v] for k, v in admission],
        },
        "serve.requests": {
            "kind": "counter",
            "labels": ["tenant", "kind", "status"],
            "series": [[list(k), v] for k, v in requests],
        },
    }


class TestServeSlaTable:
    def test_tenants_discovered_sorted(self):
        metrics = _metrics(
            admission=(
                (("zeta", "admitted"), 1),
                (("alpha", "admitted"), 1),
            ),
            requests=(),
        )
        assert serve_tenants(metrics) == ["alpha", "zeta"]

    def test_counts_and_shed_rate(self):
        (row,) = serve_sla_table(_metrics())
        assert row["tenant"] == "t0"
        assert row["submitted"] == 10
        assert row["admitted"] == 8
        assert row["shed"] == 2
        assert row["ok"] == 6
        assert row["failed"] == 2
        assert row["shed_rate"] == pytest.approx(0.2)

    def test_error_budget_burn(self):
        # 4 unserved of 10 submitted against a 99% objective: the
        # failure fraction is 40x the 1% budget.
        (row,) = serve_sla_table(_metrics(), slo=0.99)
        assert row["error_budget_burn"] == pytest.approx(
            (4 / 10) / 0.01
        )

    def test_degraded_counts_as_served(self):
        metrics = _metrics(
            admission=((("t0", "admitted"), 4),),
            requests=(
                (("t0", "rank", "ok"), 2),
                (("t0", "rank", "degraded"), 2),
            ),
        )
        (row,) = serve_sla_table(metrics)
        assert row["error_budget_burn"] == 0.0

    def test_missing_histograms_quantile_zero(self):
        (row,) = serve_sla_table(_metrics())
        assert row["queue_wait_p99"] == 0.0
        assert row["rank_latency_p99"] == 0.0

    def test_slo_domain_checked(self):
        with pytest.raises(ValueError):
            serve_sla_table(_metrics(), slo=1.0)

    def test_sla_counts_shape(self):
        counts = sla_counts(serve_sla_table(_metrics()))
        assert counts == {
            "t0": {
                "ok": 6,
                "degraded": 0,
                "failed": 2,
                "expired": 0,
                "shed": 2,
                "throttled": 0,
            }
        }

    def test_buckets_are_sub_unit(self):
        assert SERVE_WAIT_BUCKETS[0] < 0.001
        assert list(SERVE_WAIT_BUCKETS) == sorted(SERVE_WAIT_BUCKETS)
