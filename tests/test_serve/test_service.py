"""ServiceCore execution semantics and the asyncio shell.

The sync path (``core.ingest``) is the reference semantics; the
asyncio :class:`SelectionService` must add nothing to it.  Degradation
ladder cases drive chaos through the *sequenced* admin path so they
stay replayable.
"""

import asyncio

import pytest

from repro.common.simtime import to_ticks
from repro.serve.core import ServeConfig
from repro.serve.loadgen import LoadSpec, make_core
from repro.serve.protocol import (
    STATUS_DEGRADED,
    STATUS_EXPIRED,
    STATUS_FAILED,
    STATUS_OK,
    admin_arrival,
    feedback_arrival,
    rank_arrival,
    register_arrival,
)
from repro.serve.replay import replay_log
from repro.serve.service import SelectionService


def _core(config=None, seed=0):
    spec = LoadSpec(seed=seed, config=config or ServeConfig(seed=seed))
    return make_core(spec)


def _rank(now, seq, client="c0", tenant="t0", ttl=2.0):
    return rank_arrival(
        now=now,
        client_id=client,
        client_seq=seq,
        tenant=tenant,
        category="weather_report",
        perspective=client,
        ttl=ttl,
    )


def _admin(now, seq, action):
    return admin_arrival(
        now=now, client_id="_admin/c0", client_seq=seq, action=action
    )


class TestCoreExecution:
    def test_rank_ok_returns_full_ranking(self):
        core = _core()
        (response,) = core.ingest([_rank(1.0, 0)])
        assert response.status == STATUS_OK
        assert response.ok and not response.degraded
        targets = [target for target, _ in response.ranking]
        assert len(targets) == 8  # 4 providers x 2 services
        assert targets == sorted(
            targets,
            key=lambda t: (-dict(response.ranking)[t], t),
        )

    def test_feedback_shifts_scores(self):
        core = _core()
        before = core.final_scores()
        core.ingest(
            [
                feedback_arrival(
                    now=1.0,
                    client_id="c0",
                    client_seq=0,
                    tenant="t0",
                    rater="c0",
                    target=sorted(before)[0],
                    rating=1.0,
                )
            ]
        )
        after = core.final_scores()
        assert after[sorted(before)[0]] > before[sorted(before)[0]]

    def test_register_and_deregister_roundtrip(self):
        core = _core()
        (response,) = core.ingest(
            [
                register_arrival(
                    now=1.0,
                    client_id="ops",
                    client_seq=0,
                    tenant="t0",
                    service="svc_new",
                    provider="prov_new",
                    category="weather_report",
                )
            ]
        )
        assert response.status == STATUS_OK
        (ranked,) = core.ingest([_rank(2.0, 1, client="c9")])
        assert "svc_new" in dict(ranked.ranking)
        # The catalogue keeps scoring deregistered services (history
        # remains canonical); only fresh rankings drop them.
        assert "svc_new" in core.final_scores()

    def test_ttl_expiry_skips_execution(self):
        config = ServeConfig(drain_rate=1.0, max_depth=64)
        core = _core(config=config)
        scores_before = core.final_scores()
        # With 1 request/sim-unit drain, the third rank waits ~2 sim
        # units > ttl of 1.
        responses = core.ingest(
            [_rank(1.0, i, ttl=1.0) for i in range(3)]
        )
        statuses = [r.status for r in responses]
        assert statuses[0] == STATUS_OK
        assert STATUS_EXPIRED in statuses
        expired = [r for r in responses if r.status == STATUS_EXPIRED]
        assert all(r.ranking == () for r in expired)
        assert core.final_scores() == scores_before

    def test_responses_sorted_by_tick(self):
        core = _core()
        core.ingest([_rank(2.0, 0), _rank(1.0, 0, client="c1")])
        ticks = [r.tick for r in core.responses]
        assert ticks == sorted(ticks)

    def test_rejected_arrivals_get_typed_responses(self):
        config = ServeConfig(tenant_rate=1.0, tenant_burst=1)
        core = _core(config=config)
        responses = core.ingest([_rank(1.0, i) for i in range(3)])
        assert responses[0].status == STATUS_OK
        assert {r.status for r in responses[1:]} == {"throttled"}
        assert all(
            "admission rejected" in (r.error or "") for r in responses[1:]
        )


class TestDegradationLadder:
    def test_outage_serves_stale_rankings(self):
        core = _core()
        (fresh,) = core.ingest([_rank(1.0, 0)])
        assert fresh.status == STATUS_OK
        core.ingest([_admin(2.0, 0, "fail_registry")])
        (degraded,) = core.ingest([_rank(3.0, 1)])
        assert degraded.status == STATUS_DEGRADED
        assert degraded.degraded and degraded.ok
        assert degraded.ranking == fresh.ranking
        assert dict(degraded.detail)["source"] == "stale_fallback"
        assert "RegistryError" in (degraded.error or "")

    def test_outage_without_cache_fails_typed(self):
        core = _core()
        core.ingest([_admin(1.0, 0, "fail_registry")])
        (response,) = core.ingest([_rank(2.0, 0)])
        assert response.status == STATUS_FAILED
        assert response.ranking == ()

    def test_heal_restores_fresh_rankings(self):
        core = _core()
        core.ingest([_rank(1.0, 0)])
        core.ingest([_admin(2.0, 0, "fail_registry")])
        core.ingest([_rank(3.0, 1)])
        core.ingest([_admin(4.0, 1, "heal_registry")])
        (response,) = core.ingest([_rank(20.0, 2)])
        assert response.status == STATUS_OK

    def test_rebuild_window_degrades_then_recovers(self):
        core = _core()
        (fresh,) = core.ingest([_rank(1.0, 0)])
        core.ingest([_admin(2.0, 0, "begin_rebuild")])
        (during,) = core.ingest([_rank(3.0, 1)])
        core.ingest([_admin(4.0, 1, "end_rebuild")])
        (after,) = core.ingest([_rank(20.0, 2)])
        assert during.status == STATUS_DEGRADED
        assert during.ranking == fresh.ranking
        assert "RebuildInProgressError" in (during.error or "")
        assert after.status == STATUS_OK

    def test_breaker_opens_under_sustained_outage(self):
        core = _core()
        core.ingest([_admin(0.5, 0, "fail_registry")])
        for i in range(4):
            core.ingest([_rank(1.0 + i * 0.01, i)])
        breaker = core.breakers.for_target("registry")
        assert breaker.state.name == "OPEN"
        # Scoring backend breaker is isolated from the registry outage.
        assert core.breakers.for_target("scoring").state.name == "CLOSED"

    def test_retry_backoff_accounted_in_latency(self):
        core = _core()
        core.ingest([_rank(1.0, 0)])
        core.ingest([_admin(2.0, 0, "fail_registry")])
        (degraded,) = core.ingest([_rank(3.0, 1)])
        # One failed attempt + one retry: latency strictly exceeds the
        # pure queue service time.
        (baseline,) = [
            r
            for r in core.responses
            if r.status == STATUS_OK and r.kind == "rank"
        ]
        assert degraded.latency > baseline.latency


class TestAsyncService:
    def _run(self, coroutine):
        return asyncio.run(coroutine)

    def test_roundtrip_matches_sync_semantics(self):
        async def drive():
            core = _core()
            async with SelectionService(core, workers=2) as service:
                response = await service.rank_for_consumer(
                    now=1.0,
                    client_id="c0",
                    tenant="t0",
                    category="weather_report",
                    perspective="c0",
                )
            return core, response

        core, response = self._run(drive())
        sync_core = _core()
        (expected,) = sync_core.ingest(
            [_rank(1.0, 0)]
        )
        assert response == expected
        assert core.log.sha256() == sync_core.log.sha256()

    def test_concurrent_burst_forms_one_canonical_batch(self):
        async def drive(workers):
            core = _core()
            async with SelectionService(core, workers=workers) as service:
                await asyncio.gather(
                    *(
                        service.rank_for_consumer(
                            now=1.0 + i / 16.0,
                            client_id=f"c{i}",
                            tenant=f"t{i % 2}",
                            category="weather_report",
                        )
                        for i in range(6)
                    )
                )
            return core

        cores = [self._run(drive(workers)) for workers in (1, 2, 4)]
        shas = {core.log.sha256() for core in cores}
        assert len(shas) == 1
        batches = {record.batch for record in cores[0].log}
        assert batches == {0}

    def test_live_log_replays_byte_identically(self):
        async def drive():
            core = _core()
            async with SelectionService(core, workers=3) as service:
                await asyncio.gather(
                    *(
                        service.rank_for_consumer(
                            now=1.0 + i / 8.0,
                            client_id=f"c{i % 3}",
                            tenant="t0",
                            category="weather_report",
                        )
                        for i in range(9)
                    )
                )
            return core

        core = self._run(drive())
        result = replay_log(lambda: _core(), core.log)
        assert result.responses == tuple(core.responses)
        assert result.final_scores == core.final_scores()

    def test_submit_requires_running_service(self):
        async def drive():
            core = _core()
            service = SelectionService(core)
            with pytest.raises(RuntimeError):
                await service.submit(_rank(1.0, 0))

        self._run(drive())

    def test_duplicate_arrival_key_rejected(self):
        async def drive():
            core = _core()
            async with SelectionService(core) as service:
                first = asyncio.ensure_future(
                    service.submit(_rank(1.0, 0))
                )
                await asyncio.sleep(0)
                with pytest.raises(ValueError):
                    await service.submit(_rank(1.0, 0))
                await first

        self._run(drive())

    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError):
            SelectionService(_core(), workers=0)


class TestReplayDivergence:
    def test_tampered_log_raises(self):
        from repro.serve.protocol import IngestLog, IngestRecord
        from repro.serve.replay import ReplayDivergenceError

        core = _core()
        core.ingest([_rank(1.0, 0), _rank(1.5, 1)])
        records = list(core.log)
        tampered = IngestRecord(
            tick=records[1].tick,
            batch=records[1].batch,
            decision=records[1].decision,
            wait_ticks=records[1].wait_ticks + 7,
            exec_tick=records[1].exec_tick,
            arrival=records[1].arrival,
        )
        bad_log = IngestLog()
        bad_log.append(records[0])
        bad_log.append(tampered)
        with pytest.raises(ReplayDivergenceError):
            replay_log(lambda: _core(), bad_log)


class TestArrivalValidation:
    def test_rating_bounds_enforced(self):
        with pytest.raises(Exception):
            feedback_arrival(
                now=1.0,
                client_id="c0",
                client_seq=0,
                tenant="t0",
                rater="c0",
                target="svc",
                rating=1.5,
            )

    def test_unknown_admin_action_rejected(self):
        with pytest.raises(Exception):
            admin_arrival(
                now=1.0, client_id="a", client_seq=0, action="explode"
            )

    def test_ticks_derived_from_sim_time(self):
        arrival = _rank(1.0, 0)
        assert arrival.client_tick == to_ticks(1.0)


class TestServeConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"slo": 1.0},
            {"drain_rate": 0.0},
            {"drain_rate": -1.0},
            {"tenant_rate": -4.0},
            {"max_depth": 0},
            {"tenant_burst": 0},
            {"retry_attempts": -1},
            {"stale_max_age": 0.0},
        ],
    )
    def test_bad_knobs_rejected(self, kwargs):
        from repro.common.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            ServeConfig(**kwargs)
