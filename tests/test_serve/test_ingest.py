"""Admission-control arithmetic: exact, integer, replayable."""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.simtime import TICKS_PER_UNIT, to_ticks
from repro.serve.ingest import (
    AdmissionConfig,
    AdmissionController,
    FluidQueue,
    TokenBucket,
    ticks_per_event,
)
from repro.serve.protocol import rank_arrival


def _arrival(now, client_id="c0", seq=0, tenant="t0"):
    return rank_arrival(
        now=now,
        client_id=client_id,
        client_seq=seq,
        tenant=tenant,
        category="weather_report",
    )


class TestTicksPerEvent:
    def test_exact_divisors(self):
        assert ticks_per_event(1.0) == TICKS_PER_UNIT
        assert ticks_per_event(2.0) == TICKS_PER_UNIT // 2
        assert ticks_per_event(float(TICKS_PER_UNIT)) == 1

    def test_floor_at_one_tick(self):
        assert ticks_per_event(float(TICKS_PER_UNIT * 8)) == 1

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            ticks_per_event(0.0)
        with pytest.raises(ConfigurationError):
            ticks_per_event(-1.0)


class TestTokenBucket:
    def test_burst_then_empty(self):
        bucket = TokenBucket(rate=1.0, burst=3)
        assert [bucket.take(1) for _ in range(4)] == [
            True, True, True, False,
        ]

    def test_exact_refill_with_remainder_carry(self):
        bucket = TokenBucket(rate=1.0, burst=2)
        cost = bucket.ticks_per_token
        assert bucket.take(1) and bucket.take(1)
        assert not bucket.take(1)
        # Refill accrues across uneven gaps: half a token, then the
        # other half — the carried remainder makes the sum exact.
        assert not bucket.take(1 + cost // 2)
        assert bucket.take(1 + cost)
        assert not bucket.take(1 + cost)

    def test_never_exceeds_burst(self):
        bucket = TokenBucket(rate=4.0, burst=2)
        bucket.take(1)
        long_idle = 1 + bucket.ticks_per_token * 100
        assert bucket.take(long_idle)
        assert bucket.take(long_idle)
        assert bucket.tokens == 0
        assert not bucket.take(long_idle)

    def test_rejects_zero_burst(self):
        with pytest.raises(ConfigurationError):
            TokenBucket(rate=1.0, burst=0)


class TestFluidQueue:
    def test_wait_is_backlog_in_front(self):
        queue = FluidQueue(drain_rate=1.0, max_depth=8)
        cost = queue.service_ticks
        assert queue.offer(1) == 0
        assert queue.offer(1) == cost
        assert queue.offer(1) == 2 * cost

    def test_backlog_drains_with_ticks(self):
        queue = FluidQueue(drain_rate=1.0, max_depth=8)
        cost = queue.service_ticks
        queue.offer(1)
        queue.offer(1)
        # After one full service time the first request has drained.
        assert queue.offer(1 + cost) == cost

    def test_sheds_past_max_depth(self):
        queue = FluidQueue(drain_rate=1.0, max_depth=2)
        assert queue.offer(1) == 0
        assert queue.offer(1) is not None
        assert queue.offer(1) is None
        assert queue.depth == 2

    def test_depth_counts_whole_requests(self):
        queue = FluidQueue(drain_rate=1.0, max_depth=4)
        assert queue.depth == 0
        queue.offer(1)
        assert queue.depth == 1


class TestAdmissionController:
    def _controller(self, **kwargs):
        return AdmissionController(AdmissionConfig(**kwargs))

    def test_ticks_strictly_monotonic(self):
        ctl = self._controller()
        same = [_arrival(1.0, seq=i) for i in range(3)]
        ticks = [ctl.admit(a, batch=0).tick for a in same]
        assert ticks == sorted(set(ticks))
        assert ticks[0] == to_ticks(1.0)
        assert ticks[1] == ticks[0] + 1

    def test_client_tick_respected_when_ahead(self):
        ctl = self._controller()
        first = ctl.admit(_arrival(1.0), batch=0)
        second = ctl.admit(_arrival(5.0, seq=1), batch=0)
        assert second.tick == to_ticks(5.0)
        assert second.tick > first.tick

    def test_throttle_before_shed(self):
        ctl = self._controller(tenant_rate=1.0, tenant_burst=1)
        assert ctl.admit(_arrival(1.0), batch=0).decision == "admitted"
        rejected = ctl.admit(_arrival(1.0, seq=1), batch=0)
        assert rejected.decision == "throttled"
        assert rejected.wait_ticks == 0
        assert rejected.exec_tick == rejected.tick

    def test_shed_when_queue_full(self):
        ctl = self._controller(
            drain_rate=1.0, max_depth=1, tenant_rate=1024.0,
            tenant_burst=1024,
        )
        # Sequenced ticks advance by one per arrival, draining one tick
        # of backlog each — the depth cap bites on the third arrival.
        assert ctl.admit(_arrival(1.0), batch=0).decision == "admitted"
        assert (
            ctl.admit(_arrival(1.0, seq=1), batch=0).decision == "admitted"
        )
        shed = ctl.admit(_arrival(1.0, seq=2), batch=0)
        assert shed.decision == "shed"
        assert shed.wait_ticks == 0 and shed.exec_tick == shed.tick

    def test_per_tenant_isolation(self):
        ctl = self._controller(tenant_rate=1.0, tenant_burst=1)
        assert ctl.admit(_arrival(1.0), batch=0).decision == "admitted"
        assert (
            ctl.admit(_arrival(1.0, seq=1), batch=0).decision == "throttled"
        )
        other = _arrival(1.0, client_id="c1", tenant="t1")
        assert ctl.admit(other, batch=0).decision == "admitted"

    def test_exec_tick_accounts_wait_and_service(self):
        ctl = self._controller(drain_rate=1.0, max_depth=8)
        cost = ctl.queue.service_ticks
        first = ctl.admit(_arrival(1.0), batch=0)
        second = ctl.admit(_arrival(1.0, seq=1), batch=0)
        assert first.exec_tick == first.tick + cost
        assert second.wait_ticks == cost - 1  # one tick drained
        assert second.exec_tick == second.tick + second.wait_ticks + cost

    def test_identical_sequences_identical_records(self):
        arrivals = [
            _arrival(0.5 + i * 0.25, client_id=f"c{i % 2}", seq=i // 2)
            for i in range(6)
        ]
        one = self._controller()
        two = self._controller()
        first = [one.admit(a, batch=0) for a in arrivals]
        second = [two.admit(a, batch=0) for a in arrivals]
        assert first == second
