"""Tests for the discrete-event kernel and clock."""

import pytest

from repro.common.errors import SimulationError
from repro.sim.clock import Clock
from repro.sim.kernel import Simulator


class TestClock:
    def test_starts_at_zero(self):
        assert Clock().now == 0.0

    def test_advance_to(self):
        clock = Clock()
        clock.advance_to(5.0)
        assert clock.now == 5.0

    def test_no_backwards(self):
        clock = Clock(10.0)
        with pytest.raises(SimulationError):
            clock.advance_to(5.0)

    def test_advance_by(self):
        clock = Clock(1.0)
        clock.advance_by(2.5)
        assert clock.now == 3.5

    def test_negative_delta(self):
        with pytest.raises(SimulationError):
            Clock().advance_by(-1.0)


class TestSimulator:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(3.0, lambda: fired.append("c"))
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(2.0, lambda: fired.append("b"))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_same_time_fires_in_schedule_order(self):
        sim = Simulator()
        fired = []
        for name in "abc":
            sim.schedule(1.0, lambda n=name: fired.append(n))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_priority_orders_simultaneous_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append("low"), priority=1)
        sim.schedule(1.0, lambda: fired.append("high"), priority=0)
        sim.run()
        assert fired == ["high", "low"]

    def test_clock_advances_with_events(self):
        sim = Simulator()
        times = []
        sim.schedule(2.0, lambda: times.append(sim.now))
        sim.schedule(5.0, lambda: times.append(sim.now))
        sim.run()
        assert times == [2.0, 5.0]

    def test_cannot_schedule_in_past(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule(0.5, lambda: None)

    def test_schedule_in(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: sim.schedule_in(2.0, lambda: fired.append(sim.now)))
        sim.run()
        assert fired == [3.0]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule_in(-1.0, lambda: None)

    def test_cancel(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, lambda: fired.append("x"))
        event.cancel()
        sim.run()
        assert fired == []
        assert sim.executed == 0

    def test_run_until(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(10.0, lambda: fired.append(10))
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == 5.0
        sim.run()
        assert fired == [1, 10]

    def test_max_events(self):
        sim = Simulator()
        for t in range(10):
            sim.schedule(float(t + 1), lambda: None)
        executed = sim.run(max_events=3)
        assert executed == 3
        assert sim.pending == 7

    def test_schedule_every(self):
        sim = Simulator()
        times = []
        sim.schedule_every(1.0, lambda: times.append(sim.now), count=4)
        sim.run()
        assert times == [1.0, 2.0, 3.0, 4.0]

    def test_schedule_every_with_start(self):
        sim = Simulator()
        times = []
        sim.schedule_every(2.0, lambda: times.append(sim.now), start=5.0, count=2)
        sim.run()
        assert times == [5.0, 7.0]

    def test_schedule_every_until_horizon(self):
        sim = Simulator()
        times = []
        sim.schedule_every(1.0, lambda: times.append(sim.now))
        sim.run(until=3.5)
        assert times == [1.0, 2.0, 3.0]

    def test_bad_interval(self):
        with pytest.raises(SimulationError):
            Simulator().schedule_every(0.0, lambda: None)

    def test_reentrant_run_rejected(self):
        sim = Simulator()

        def reenter():
            sim.run()

        sim.schedule(1.0, reenter)
        with pytest.raises(SimulationError):
            sim.run()

    def test_step(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        assert sim.step() is True
        assert sim.step() is False
        assert fired == [1]
