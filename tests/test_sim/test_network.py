"""Tests for the network accounting model."""

import pytest

from repro.faults.plan import MessageFaultInjector
from repro.obs.metrics import MetricsRegistry
from repro.sim.network import (
    FAULT_INJECTED,
    RECEIVER_FAILED,
    SENDER_FAILED,
    DeliveryOutcome,
    MessageStats,
    Network,
    per_node_load,
    stats_from_snapshot,
)


class TestNetwork:
    def test_send_counts_messages(self):
        net = Network(rng=0)
        net.send("a", "b")
        net.send("a", "c", kind="query")
        assert net.stats.total_messages == 2
        assert net.stats.by_kind["query"] == 1
        assert net.stats.sent_by["a"] == 2
        assert net.stats.received_by["b"] == 1

    def test_delivery_outcome_is_typed(self):
        net = Network(rng=0)
        outcome = net.send("a", "b")
        assert isinstance(outcome, DeliveryOutcome)
        assert outcome.delivered
        assert outcome.reason is None
        assert bool(outcome)

    def test_latency_positive(self):
        net = Network(base_latency=0.01, jitter=0.005, rng=0)
        outcome = net.send("a", "b")
        assert outcome.latency is not None and outcome.latency >= 0.01

    def test_zero_jitter_is_exact(self):
        net = Network(base_latency=0.02, jitter=0.0, rng=0)
        assert net.send("a", "b").latency == 0.02

    def test_failed_receiver_undeliverable(self):
        net = Network(rng=0)
        net.fail_node("b")
        outcome = net.send("a", "b")
        assert not outcome
        assert outcome.latency is None
        assert outcome.reason == RECEIVER_FAILED
        # Sent but not received.
        assert net.stats.sent_by["a"] == 1
        assert net.stats.received_by.get("b", 0) == 0

    def test_heal(self):
        net = Network(rng=0)
        net.fail_node("b")
        net.heal_node("b")
        assert net.send("a", "b")

    def test_failed_sender_cannot_send(self):
        net = Network(rng=0)
        net.fail_node("a")
        outcome = net.send("a", "b")
        assert not outcome
        assert outcome.reason == SENDER_FAILED

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            Network(base_latency=-1.0)

    def test_bytes_accounting(self):
        net = Network(rng=0)
        net.send("a", "b", size=100)
        net.send("a", "b", size=50)
        assert net.stats.total_bytes == 150

    def test_reset_stats(self):
        net = Network(rng=0)
        net.send("a", "b")
        net.reset_stats()
        assert net.stats.total_messages == 0


class TestDropAccounting:
    def test_drops_counted_with_reason(self):
        net = Network(rng=0)
        net.fail_node("b")
        net.send("a", "b")
        net.send("a", "b")
        net.fail_node("a")
        net.send("a", "c")
        assert net.stats.dropped == 3
        assert net.stats.drops_by_reason[RECEIVER_FAILED] == 2
        assert net.stats.drops_by_reason[SENDER_FAILED] == 1
        assert net.stats.delivered == 0

    def test_delivered_excludes_drops(self):
        net = Network(rng=0)
        net.send("a", "b")
        net.fail_node("b")
        net.send("a", "b")
        assert net.stats.total_messages == 2
        assert net.stats.delivered == 1
        assert net.stats.drop_rate() == pytest.approx(0.5)

    def test_drop_rate_empty_stats(self):
        assert MessageStats().drop_rate() == 0.0

    def test_fault_injected_drop(self):
        net = Network(rng=0, faults=MessageFaultInjector(drop_rate=1.0, rng=0))
        outcome = net.send("a", "b")
        assert not outcome
        assert outcome.reason == FAULT_INJECTED
        assert net.stats.drops_by_reason[FAULT_INJECTED] == 1
        assert net.stats.received_by.get("b", 0) == 0

    def test_fault_injected_delay(self):
        net = Network(
            base_latency=0.01,
            jitter=0.0,
            rng=0,
            faults=MessageFaultInjector(
                delay_rate=1.0, extra_delay=0.5, rng=0
            ),
        )
        outcome = net.send("a", "b")
        assert outcome
        assert outcome.latency > 0.01

    def test_fault_injected_duplication(self):
        net = Network(
            rng=0, faults=MessageFaultInjector(duplicate_rate=1.0, rng=0)
        )
        outcome = net.send("a", "b")
        assert outcome
        assert outcome.duplicates == 1
        assert net.stats.duplicated == 1
        assert net.stats.received_by["b"] == 2
        # The sender only paid for one send.
        assert net.stats.total_messages == 1

    def test_node_failure_beats_fault_injection(self):
        # Faults apply only between healthy nodes; a dead receiver is
        # reported as such, not as a random drop.
        net = Network(
            rng=0, faults=MessageFaultInjector(drop_rate=1.0, rng=0)
        )
        net.fail_node("b")
        assert net.send("a", "b").reason == RECEIVER_FAILED


class TestMessageStats:
    def test_balanced_load_imbalance_is_one(self):
        stats = MessageStats()
        stats.received_by.update({"a": 10, "b": 10, "c": 10})
        assert stats.load_imbalance() == 1.0

    def test_centralized_load_imbalance(self):
        stats = MessageStats()
        stats.received_by.update({"hub": 100, "a": 0, "b": 0, "c": 0})
        assert stats.load_imbalance() == 4.0

    def test_empty_stats(self):
        assert MessageStats().load_imbalance() == 1.0

    def test_single_node_is_balanced(self):
        stats = MessageStats()
        stats.received_by.update({"only": 42})
        assert stats.load_imbalance() == 1.0

    def test_zero_mean_load_is_balanced(self):
        # Counters can hold explicit zeros (e.g. after subtraction);
        # max/mean would divide by zero without the guard.
        stats = MessageStats()
        stats.received_by.update({"a": 0, "b": 0})
        assert stats.load_imbalance() == 1.0

    def test_all_dropped_messages_keep_imbalance_defined(self):
        net = Network(rng=0)
        net.fail_node("hub")
        for i in range(5):
            net.send(f"n{i}", "hub")
        assert net.stats.load_imbalance() == 1.0
        assert net.stats.dropped == 5

    def test_per_node_load(self):
        net = Network(rng=0)
        net.send("a", "b")
        net.send("c", "b")
        assert per_node_load(net.stats) == {"b": 2}


class TestLoadImbalanceUniverse:
    """Silent nodes must count in the imbalance denominator.

    Regression: load_imbalance averaged over *active receivers* only,
    so a hub that never sends back looked perfectly balanced — the
    exact centralization signal the metric exists to expose.
    """

    def test_hub_and_silent_spokes_not_balanced(self):
        net = Network(rng=0)
        # Four spokes each message the hub; nobody messages the spokes.
        for spoke in ("a", "b", "c", "d"):
            net.send(spoke, "hub")
        stats = net.stats
        # 5 known nodes, only the hub receives: max/mean = 4/(4/5) = 5.
        assert stats.universe == 5
        assert stats.load_imbalance() == pytest.approx(5.0)

    def test_explicit_universe_widens_the_mean(self):
        stats = MessageStats()
        stats.received_by.update({"hub": 100})
        assert stats.load_imbalance() == 1.0  # no universe: degenerate
        stats.universe = 10
        assert stats.load_imbalance() == pytest.approx(10.0)

    def test_universe_never_shrinks_the_mean(self):
        stats = MessageStats()
        stats.received_by.update({"a": 1, "b": 1, "c": 1})
        stats.universe = 2  # stale/undersized universe is ignored
        assert stats.load_imbalance() == 1.0

    def test_failed_nodes_are_known(self):
        net = Network(rng=0)
        net.fail_node("ghost")
        net.send("a", "b")
        assert net.known_nodes() == {"a", "b", "ghost"}
        assert net.stats.universe == 3

    def test_reset_keeps_failed_nodes_in_universe(self):
        net = Network(rng=0)
        net.fail_node("ghost")
        net.send("a", "b")
        net.reset_stats()
        assert net.known_nodes() == {"ghost"}
        assert net.stats.total_messages == 0


class TestStatsAsRegistryView:
    def test_stats_rebuilt_from_metrics_registry(self):
        net = Network(rng=0)
        net.send("a", "b", kind="feedback", size=10)
        assert net.metrics.counter(
            "net.messages.sent", labels=("kind",)
        ).value(labels=("feedback",)) == 1
        assert net.metrics.counter("net.bytes.sent").total() == 10
        # The dataclass view agrees with the registry.
        assert net.stats.by_kind["feedback"] == 1
        assert net.stats.total_bytes == 10

    def test_successive_reads_are_consistent_snapshots(self):
        net = Network(rng=0)
        net.send("a", "b")
        first = net.stats
        net.send("a", "b")
        second = net.stats
        assert first.total_messages == 1
        assert second.total_messages == 2

    def test_ambient_recorder_mirrors_network_counters(self):
        from repro.obs.recorder import Recorder, use_recorder

        recorder = Recorder()
        net = Network(rng=0)
        with use_recorder(recorder):
            net.send("a", "b", kind="feedback")
            net.fail_node("b")
            net.send("a", "b", kind="feedback")
        sent = recorder.registry.counter(
            "net.messages.sent", labels=("kind",)
        )
        dropped = recorder.registry.counter(
            "net.messages.dropped", labels=("reason",)
        )
        assert sent.value(labels=("feedback",)) == 2
        assert dropped.value(labels=(RECEIVER_FAILED,)) == 1


class TestFaultedNetworkDeterminism:
    """Same seed + same fault plan => byte-identical delivery traces."""

    @staticmethod
    def run_trace(seed):
        from repro.common.randomness import SeedSequenceFactory
        from repro.faults.plan import (
            ChurnSchedule,
            FaultPlan,
            MessageFaultInjector,
        )

        seeds = SeedSequenceFactory(seed)
        nodes = [f"n{i}" for i in range(6)]
        plan = FaultPlan(
            churn=ChurnSchedule.generate(
                nodes, horizon=30.0, mean_uptime=8.0, mean_downtime=2.0,
                rng=seeds.rng("churn"),
            ),
            message_faults=MessageFaultInjector(
                drop_rate=0.2, duplicate_rate=0.1, delay_rate=0.1,
                rng=seeds.rng("messages"),
            ),
        )
        net = Network(rng=seeds.rng("net"))
        plan.attach(net)
        trace = []
        for round_index in range(30):
            t = float(round_index)
            plan.apply(t, network=net)
            for i, src in enumerate(nodes):
                dst = nodes[(i + 1) % len(nodes)]
                trace.append(net.send(src, dst, kind="gossip"))
        return trace, net.stats

    def test_identical_seed_identical_trace(self):
        trace_a, stats_a = self.run_trace(seed=11)
        trace_b, stats_b = self.run_trace(seed=11)
        assert trace_a == trace_b
        assert stats_a.total_messages == stats_b.total_messages
        assert stats_a.dropped == stats_b.dropped
        assert stats_a.duplicated == stats_b.duplicated
        assert dict(stats_a.drops_by_reason) == dict(stats_b.drops_by_reason)
        assert stats_a.received_by == stats_b.received_by

    def test_different_seed_differs(self):
        trace_a, _ = self.run_trace(seed=11)
        trace_b, _ = self.run_trace(seed=12)
        assert trace_a != trace_b


class TestMergedSnapshotStats:
    def test_round_trips_one_network(self):
        net = Network(base_latency=0.0, jitter=0.0, rng=0)
        net.send("a", "b", kind="feedback", size=10)
        net.send("b", "a", kind="query")
        rebuilt = stats_from_snapshot(net.metrics.snapshot())
        live = net.stats
        assert rebuilt.total_messages == live.total_messages
        assert rebuilt.sent_by == live.sent_by
        assert rebuilt.received_by == live.received_by
        assert rebuilt.by_kind == live.by_kind
        assert rebuilt.universe == live.universe
        assert rebuilt.load_imbalance() == live.load_imbalance()

    def test_silent_registered_nodes_survive_the_merge(self):
        # Shard 0 carries all the traffic; shards 1-3 are silent but
        # registered.  The merged universe must still count them, so
        # imbalance reflects the hot spot instead of looking balanced.
        nets = [Network(base_latency=0.0, jitter=0.0, rng=0)
                for _ in range(4)]
        for net in nets:
            for s in range(4):
                net.register_node(f"shard-{s}")
        nets[0].record_traffic(
            "shard-0", "shard-0", kind="feedback", messages=8
        )
        merged = MetricsRegistry.merge_snapshots(
            [net.metrics.snapshot() for net in nets]
        )
        stats = stats_from_snapshot(merged)
        assert stats.universe == 4
        assert stats.load_imbalance() == pytest.approx(4.0)

    def test_record_traffic_counts_bulk_messages(self):
        net = Network(base_latency=0.0, jitter=0.0, rng=0)
        net.record_traffic("a", "b", kind="feedback", messages=5, size=50)
        stats = net.stats
        assert stats.total_messages == 5
        assert stats.total_bytes == 50
        assert stats.by_kind["feedback"] == 5
        assert stats.sent_by["a"] == 5
        assert stats.received_by["b"] == 5

    def test_record_traffic_zero_messages_registers_endpoints(self):
        net = Network(base_latency=0.0, jitter=0.0, rng=0)
        net.record_traffic("a", "b", kind="feedback", messages=0)
        stats = net.stats
        assert stats.total_messages == 0
        assert stats.universe == 2

    def test_record_traffic_rejects_negative(self):
        net = Network(base_latency=0.0, jitter=0.0, rng=0)
        with pytest.raises(ValueError):
            net.record_traffic("a", "b", messages=-1)
