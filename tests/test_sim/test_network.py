"""Tests for the network accounting model."""

import pytest

from repro.sim.network import MessageStats, Network, per_node_load


class TestNetwork:
    def test_send_counts_messages(self):
        net = Network(rng=0)
        net.send("a", "b")
        net.send("a", "c", kind="query")
        assert net.stats.total_messages == 2
        assert net.stats.by_kind["query"] == 1
        assert net.stats.sent_by["a"] == 2
        assert net.stats.received_by["b"] == 1

    def test_latency_positive(self):
        net = Network(base_latency=0.01, jitter=0.005, rng=0)
        latency = net.send("a", "b")
        assert latency is not None and latency >= 0.01

    def test_zero_jitter_is_exact(self):
        net = Network(base_latency=0.02, jitter=0.0, rng=0)
        assert net.send("a", "b") == 0.02

    def test_failed_receiver_undeliverable(self):
        net = Network(rng=0)
        net.fail_node("b")
        assert net.send("a", "b") is None
        # Sent but not received.
        assert net.stats.sent_by["a"] == 1
        assert net.stats.received_by.get("b", 0) == 0

    def test_heal(self):
        net = Network(rng=0)
        net.fail_node("b")
        net.heal_node("b")
        assert net.send("a", "b") is not None

    def test_failed_sender_cannot_send(self):
        net = Network(rng=0)
        net.fail_node("a")
        assert net.send("a", "b") is None

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            Network(base_latency=-1.0)

    def test_bytes_accounting(self):
        net = Network(rng=0)
        net.send("a", "b", size=100)
        net.send("a", "b", size=50)
        assert net.stats.total_bytes == 150

    def test_reset_stats(self):
        net = Network(rng=0)
        net.send("a", "b")
        net.reset_stats()
        assert net.stats.total_messages == 0


class TestMessageStats:
    def test_balanced_load_imbalance_is_one(self):
        stats = MessageStats()
        stats.received_by.update({"a": 10, "b": 10, "c": 10})
        assert stats.load_imbalance() == 1.0

    def test_centralized_load_imbalance(self):
        stats = MessageStats()
        stats.received_by.update({"hub": 100, "a": 0, "b": 0, "c": 0})
        assert stats.load_imbalance() == 4.0

    def test_empty_stats(self):
        assert MessageStats().load_imbalance() == 1.0

    def test_per_node_load(self):
        net = Network(rng=0)
        net.send("a", "b")
        net.send("c", "b")
        assert per_node_load(net.stats) == {"b": 2}
