"""Integration tests: whole subsystems working together."""

import pytest

from repro.common.randomness import SeedSequenceFactory
from repro.common.records import Feedback
from repro.core.registry import default_registry
from repro.core.scenarios import DirectSelectionScenario
from repro.core.selection import EpsilonGreedyPolicy, SelectionEngine
from repro.experiments.harness import run_selection_experiment
from repro.experiments.workloads import make_world
from repro.models.beta import BetaReputation
from repro.models.vu_aberer import VuAbererModel
from repro.p2p.pgrid import PGrid
from repro.registry.qos_registry import CentralQoSRegistry
from repro.registry.uddi import UDDIRegistry
from repro.robustness.attacks import AttackPlan, collusion_strategy
from repro.robustness.cluster_filtering import ClusterFilter, FilterMode
from repro.services.invocation import InvocationEngine
from repro.services.monitoring import SensorDeployment
from repro.services.sla import SLAMonitor, negotiate_sla


class TestFullCentralizedPipeline:
    """UDDI + central QoS registry + SLA + sensors in one run."""

    def test_publish_discover_select_invoke_rate_report(self):
        world = make_world(n_providers=3, services_per_provider=1,
                           n_consumers=5, seed=3, quality_spread=0.3)
        uddi = UDDIRegistry()
        qos_registry = CentralQoSRegistry()
        model = BetaReputation()
        for provider in world.providers:
            for service in provider.services:
                uddi.publish(
                    service.description,
                    provider.advertisement_for(service.service_id),
                )
        engine = SelectionEngine(uddi, model)
        invoker = InvocationEngine(world.taxonomy,
                                   rng=world.seeds.rng("invoke"))
        by_id = {s.service_id: s for s in world.services}
        for t in range(20):
            for consumer in world.consumers:
                chosen = engine.select(world.category,
                                       consumer.consumer_id, now=float(t))
                interaction = invoker.invoke(consumer, by_id[chosen],
                                             float(t))
                feedback = consumer.rate(interaction, world.taxonomy)
                assert qos_registry.report(feedback)
                model.record(feedback)
        # The registry holds everything that was filed...
        assert qos_registry.reports_received == 100
        # ...and the model's final ranking matches ground truth.
        ranking = model.rank(list(by_id))
        truth_ranking = sorted(by_id, key=lambda s: -world.true_quality[s])
        assert ranking[0].target == truth_ranking[0]

    def test_sla_supervision_alongside_selection(self):
        world = make_world(n_providers=2, services_per_provider=1,
                           n_consumers=4, seed=5,
                           exaggerations=[0.3])
        monitor = SLAMonitor(world.taxonomy)
        for provider in world.providers:
            for service in provider.services:
                ad = provider.advertisement_for(service.service_id)
                for consumer in world.consumers:
                    monitor.register(negotiate_sla(
                        consumer.consumer_id, service.service_id,
                        ad.claimed, slack=0.05,
                    ))
        invoker = InvocationEngine(world.taxonomy,
                                   rng=world.seeds.rng("invoke"))
        by_id = {s.service_id: s for s in world.services}
        for t in range(10):
            for consumer in world.consumers:
                for service in by_id.values():
                    interaction = invoker.invoke(consumer, service,
                                                 float(t))
                    monitor.check(interaction)
        # Exaggerated claims (+0.3) -> negotiated floors above the true
        # quality -> violations accumulate.
        assert len(monitor.violations) > 0
        assert monitor.penalties_owed()

    def test_registry_failure_mid_run_loses_reports(self):
        registry = CentralQoSRegistry()
        registry.report(Feedback(rater="c", target="s", time=0.0,
                                 rating=0.9))
        registry.fail()
        assert not registry.report(
            Feedback(rater="c", target="s", time=1.0, rating=0.9)
        )
        registry.heal()
        assert registry.report(
            Feedback(rater="c", target="s", time=2.0, rating=0.9)
        )
        assert len(registry.store) == 2


class TestDecentralizedPipeline:
    def test_vu_aberer_full_loop_over_pgrid(self):
        seeds = SeedSequenceFactory(9)
        peers = [f"peer-{i:02d}" for i in range(16)]
        grid = PGrid(peers, replication=2, rng=seeds.rng("grid"))
        model = VuAbererModel()
        rng = seeds.rng("ratings")
        for i, peer in enumerate(peers):
            rating = min(1.0, max(0.0, 0.75 + float(rng.normal(0, 0.05))))
            model.publish_report(grid, peer, Feedback(
                rater=peer, target="svc", time=float(i), rating=rating,
                facet_ratings={"response_time": rating},
            ))
        reports, _ = model.query_reports(grid, peers[0], "svc")
        assert len(reports) == 16
        assert model.predicted_quality("svc") == pytest.approx(0.75,
                                                               abs=0.05)

    def test_pgrid_storage_survives_replica_churn(self):
        peers = [f"peer-{i:02d}" for i in range(32)]
        grid = PGrid(peers, replication=2, rng=0)
        fb = Feedback(rater="peer-00", target="svc", time=0.0, rating=0.8)
        grid.insert("peer-00", "svc", fb)
        replicas = grid.responsible_peers("svc")
        grid.peer(replicas[0]).online = False
        origin = next(p.peer_id for p in grid.peers()
                      if p.online and p.peer_id not in replicas)
        found, _ = grid.lookup(origin, "svc", "svc")
        assert found == [fb]


class TestFullyDecentralizedPipeline:
    """No UDDI, no central QoS registry: discovery AND reputation on
    the overlay — the paper's Section 5 direction 1, end to end."""

    def test_publish_discover_select_rate_over_pgrid(self):
        from repro.p2p.discovery import DistributedServiceRegistry
        from repro.services.consumer import Consumer
        from repro.services.description import ServiceDescription
        from repro.services.provider import Service
        from repro.services.qos import DEFAULT_METRICS, QoSProfile

        seeds = SeedSequenceFactory(23)
        peers = [f"peer-{i:02d}" for i in range(24)]
        grid = PGrid(peers, replication=2, rng=seeds.rng("grid"))
        discovery = DistributedServiceRegistry(grid)
        reputation = VuAbererModel()

        services = {}
        for i, quality in enumerate([0.85, 0.55, 0.25]):
            sid = f"svc-{i}"
            svc = Service(
                description=ServiceDescription(
                    service=sid, provider=f"prov-{i}", category="translate"
                ),
                profile=QoSProfile(
                    quality={m.name: quality for m in DEFAULT_METRICS},
                    noise=0.03,
                ),
            )
            services[sid] = svc
            # Providers publish through their own peer.
            discovery.publish(peers[i], svc.description)

        engine = InvocationEngine(DEFAULT_METRICS,
                                  rng=seeds.rng("invoke"))
        consumers = [
            Consumer(pid, rng=seeds.rng(f"c-{pid}")) for pid in peers[:8]
        ]
        # Several rounds: discover -> score via overlay reports ->
        # select best -> invoke -> publish the report back.
        final_choice = {}
        for t in range(12):
            for consumer in consumers:
                found, _ = discovery.search(consumer.consumer_id,
                                            "translate")
                assert len(found) == 3
                candidates = [d.service for d in found]
                chosen = max(
                    candidates,
                    key=lambda sid: (reputation.score(sid), sid),
                )
                if t >= 4:  # after warm-up everyone exploits
                    final_choice[consumer.consumer_id] = chosen
                else:  # round-robin exploration while cold
                    chosen = candidates[
                        (t * len(consumers)
                         + consumers.index(consumer)) % 3
                    ]
                interaction = engine.invoke(
                    consumer, services[chosen], float(t)
                )
                feedback = consumer.rate(interaction, DEFAULT_METRICS)
                reputation.publish_report(
                    grid, consumer.consumer_id, feedback
                )
        # Everyone converged on the best service, with zero central
        # components involved.
        assert set(final_choice.values()) == {"svc-0"}
        reports, _ = reputation.query_reports(grid, peers[-1], "svc-0")
        assert len(reports) > 0


class TestAttackDefensePipeline:
    def test_collusion_ring_distorts_and_filter_recovers(self):
        world = make_world(n_providers=4, services_per_provider=1,
                           n_consumers=12, seed=13, quality_spread=0.3)
        victim = world.best_service()
        ally = min(world.true_quality, key=world.true_quality.get)
        attack = AttackPlan(
            liar_fraction=0.25,
            strategy_factory=lambda: collusion_strategy(allies=[ally]),
        )
        model = BetaReputation()
        outcome = run_selection_experiment(model, world, rounds=25,
                                           attack=attack)
        # Defended post-hoc: filter the raw ratings per service.
        scenario_feedback = {}  # service -> ratings seen by the model
        # Rebuild from a fresh run with recorded feedback:
        world2 = make_world(n_providers=4, services_per_provider=1,
                            n_consumers=12, seed=13, quality_spread=0.3)
        attack2 = AttackPlan(
            liar_fraction=0.25,
            strategy_factory=lambda: collusion_strategy(allies=[ally]),
        )
        attack2.apply(world2.consumers)
        collected = []

        class Recorder(BetaReputation):
            def record(self, feedback):
                collected.append(feedback)
                super().record(feedback)

        scenario = DirectSelectionScenario(
            services=world2.services, consumers=world2.consumers,
            model=Recorder(), taxonomy=world2.taxonomy,
            policy=EpsilonGreedyPolicy(0.2, rng=world2.seeds.rng("policy")),
            rng=world2.seeds.rng("invoke"),
        )
        scenario.run(25)
        victim_fb = [fb for fb in collected if fb.target == victim]
        naive_mean = sum(fb.rating for fb in victim_fb) / len(victim_fb)
        defended = ClusterFilter(mode=FilterMode.LOW).filtered_mean(
            victim_fb
        )
        truth = world2.true_quality[victim]
        assert abs(defended - truth) < abs(naive_mean - truth) + 1e-9

    def test_whitewashing_resets_history_but_not_sporas_standing(self):
        # Sporas starts new identities at the floor: whitewashing a bad
        # record gains nothing (the property Zacharia designed for).
        from repro.models.sporas import SporasModel

        model = SporasModel()
        for i in range(20):
            model.record(Feedback(rater=f"c{i}", target="cheat",
                                  time=float(i), rating=0.05))
        old_standing = model.score("cheat")
        fresh_standing = model.score("cheat-reborn")  # new identity
        assert fresh_standing <= old_standing + 0.05
        # Contrast: a Laplace-smoothed mean would hand the fresh
        # identity a big upgrade (0.5 > ~0.05).
        beta = BetaReputation()
        for i in range(20):
            beta.record(Feedback(rater=f"c{i}", target="cheat",
                                 time=float(i), rating=0.05))
        assert beta.score("cheat-reborn") > beta.score("cheat") + 0.3


class TestRegistryWideSmoke:
    def test_every_registered_model_runs_a_scenario(self):
        registry = default_registry(rng_seed=0)
        for name in registry.names():
            world = make_world(n_providers=3, services_per_provider=1,
                               n_consumers=4, seed=17)
            outcome = run_selection_experiment(
                registry.create(name), world, rounds=5,
            )
            assert 0.0 <= outcome.accuracy <= 1.0, name
            for score in outcome.final_scores.values():
                assert 0.0 <= score <= 1.0, name

    def test_monitoring_and_feedback_agree_on_observables(self):
        world = make_world(n_providers=3, services_per_provider=1,
                           n_consumers=6, seed=19, quality_spread=0.3)
        engine = InvocationEngine(world.taxonomy,
                                  rng=world.seeds.rng("probe"))
        sensors = SensorDeployment(engine)
        for service in world.services:
            sensors.deploy(service)
        for t in range(25):
            sensors.probe_all(world.services, float(t))
        model = BetaReputation()
        outcome = run_selection_experiment(model, world, rounds=25)
        # Both information paths must rank the best service first.
        monitor_ranking = sorted(
            world.services,
            key=lambda s: -sensors.report_for(s.service_id).overall(),
        )
        feedback_ranking = sorted(
            world.services,
            key=lambda s: -outcome.final_scores[s.service_id],
        )
        assert (
            monitor_ranking[0].service_id == feedback_ranking[0].service_id
        )
