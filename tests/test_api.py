"""Public-API stability tests.

Every name in each package's ``__all__`` must be importable, and the
top-level conveniences must stay in place — these are the names
downstream code depends on.
"""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.common",
    "repro.core",
    "repro.experiments",
    "repro.faults",
    "repro.models",
    "repro.p2p",
    "repro.registry",
    "repro.robustness",
    "repro.serve",
    "repro.services",
    "repro.sim",
    "repro.trustnet",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_all_exports_resolve(package):
    module = importlib.import_module(package)
    assert hasattr(module, "__all__"), package
    for name in module.__all__:
        assert hasattr(module, name), f"{package}.{name}"


@pytest.mark.parametrize("package", PACKAGES)
def test_all_is_sorted(package):
    module = importlib.import_module(package)
    exported = list(module.__all__)
    assert exported == sorted(exported), package


def test_top_level_conveniences():
    import repro

    assert callable(repro.make_world)
    assert callable(repro.run_selection_experiment)
    assert callable(repro.default_registry)
    assert repro.__version__


def test_every_figure4_model_importable_from_models():
    from repro import models
    from repro.core.typology import PAPER_FIGURE_4
    from repro.core.registry import default_registry

    registry = default_registry(rng_seed=0)
    for name in PAPER_FIGURE_4:
        info = registry.get(name)
        model = info.factory()
        # The class (or its factory product) is exposed via repro.models.
        assert type(model).__name__ in models.__all__ or hasattr(
            models, type(model).__name__
        )


def test_docstrings_on_public_modules():
    for package in PACKAGES:
        module = importlib.import_module(package)
        assert module.__doc__ and len(module.__doc__) > 40, package
