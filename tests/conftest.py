"""Shared fixtures for the repro test suite."""

from __future__ import annotations

from typing import List

import pytest

from repro.common.records import Feedback
from repro.experiments.workloads import World, make_world
from repro.services.qos import DEFAULT_METRICS, QoSTaxonomy, w3c_taxonomy


@pytest.fixture
def taxonomy() -> QoSTaxonomy:
    """The compact 6-metric working set."""
    return DEFAULT_METRICS


@pytest.fixture
def full_taxonomy() -> QoSTaxonomy:
    """The full 23-metric W3C taxonomy (Figure 3)."""
    return w3c_taxonomy()


def feedback(
    rater: str = "c0",
    target: str = "svc",
    time: float = 0.0,
    rating: float = 0.8,
    facets: dict = None,
) -> Feedback:
    """Terse feedback constructor for tests."""
    return Feedback(
        rater=rater,
        target=target,
        time=time,
        rating=rating,
        facet_ratings=facets or {},
    )


def feedback_series(
    target: str,
    ratings: List[float],
    rater_prefix: str = "c",
    start_time: float = 0.0,
) -> List[Feedback]:
    """One feedback per rating, distinct raters, increasing times."""
    return [
        feedback(
            rater=f"{rater_prefix}{i}",
            target=target,
            time=start_time + i,
            rating=r,
        )
        for i, r in enumerate(ratings)
    ]


@pytest.fixture
def small_world() -> World:
    """A small deterministic world for integration-style tests."""
    return make_world(
        n_providers=4,
        services_per_provider=1,
        n_consumers=8,
        seed=7,
        quality_spread=0.3,
    )
