"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import os
import random
from datetime import datetime
from typing import List

import pytest

from repro.common.records import Feedback
from repro.experiments.workloads import World, make_world
from repro.services.qos import DEFAULT_METRICS, QoSTaxonomy, w3c_taxonomy

# -- global_random_seed (scikit-learn's rotating-seed idiom) -----------
#
# Parity/property suites that accept this fixture must pass for *any*
# seed in [0, 99].  Which seeds actually run is controlled by the
# REPRO_TESTS_GLOBAL_RANDOM_SEED environment variable:
#
#   REPRO_TESTS_GLOBAL_RANDOM_SEED="42"      run with seed 42
#   REPRO_TESTS_GLOBAL_RANDOM_SEED="40-42"   run seeds 40, 41 and 42
#   REPRO_TESTS_GLOBAL_RANDOM_SEED="any"     a random seed per run
#   REPRO_TESTS_GLOBAL_RANDOM_SEED="all"     every seed in [0, 99] (slow)
#
# Unset, the seed rotates deterministically off the calendar date (the
# CI cron effect: a different-but-reproducible seed every day).

_SEED_ENV = "REPRO_TESTS_GLOBAL_RANDOM_SEED"


def _parse_seed_spec() -> List[int]:
    spec = os.environ.get(_SEED_ENV)
    if spec is None:
        return [random.Random(int(datetime.now().strftime("%Y%j"))).randint(0, 99)]
    if spec == "any":
        return [random.randint(0, 99)]
    if spec == "all":
        return list(range(100))
    if "-" in spec:
        lo, hi = spec.split("-")
        seeds = list(range(int(lo), int(hi) + 1))
    else:
        seeds = [int(spec)]
    if any(seed < 0 or seed > 99 for seed in seeds):
        raise ValueError(
            f"{_SEED_ENV}={spec!r} is out of range: seeds must be in [0, 99]"
        )
    return seeds


_random_seeds = _parse_seed_spec()


def pytest_report_header() -> str:
    return (
        f"{_SEED_ENV}={_random_seeds} "
        f"(set {_SEED_ENV}=<int in [0, 99] | a-b | any | all> to override)"
    )


@pytest.fixture(params=_random_seeds)
def global_random_seed(request: pytest.FixtureRequest) -> int:
    """A seed in [0, 99]; tests using it must pass for every value."""
    seed: int = request.param
    return seed


@pytest.fixture
def taxonomy() -> QoSTaxonomy:
    """The compact 6-metric working set."""
    return DEFAULT_METRICS


@pytest.fixture
def full_taxonomy() -> QoSTaxonomy:
    """The full 23-metric W3C taxonomy (Figure 3)."""
    return w3c_taxonomy()


def feedback(
    rater: str = "c0",
    target: str = "svc",
    time: float = 0.0,
    rating: float = 0.8,
    facets: dict = None,
) -> Feedback:
    """Terse feedback constructor for tests."""
    return Feedback(
        rater=rater,
        target=target,
        time=time,
        rating=rating,
        facet_ratings=facets or {},
    )


def feedback_series(
    target: str,
    ratings: List[float],
    rater_prefix: str = "c",
    start_time: float = 0.0,
) -> List[Feedback]:
    """One feedback per rating, distinct raters, increasing times."""
    return [
        feedback(
            rater=f"{rater_prefix}{i}",
            target=target,
            time=start_time + i,
            rating=r,
        )
        for i, r in enumerate(ratings)
    ]


@pytest.fixture
def small_world() -> World:
    """A small deterministic world for integration-style tests."""
    return make_world(
        n_providers=4,
        services_per_provider=1,
        n_consumers=8,
        seed=7,
        quality_spread=0.3,
    )
