"""Run the doctests embedded in deterministic modules.

Docstring examples are documentation that can rot; this keeps the ones
in side-effect-free modules honest.
"""

import doctest

import pytest

import repro.common.ids
import repro.sim.kernel

DOCTEST_MODULES = [
    repro.common.ids,
    repro.sim.kernel,
]


@pytest.mark.parametrize(
    "module", DOCTEST_MODULES, ids=[m.__name__ for m in DOCTEST_MODULES]
)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{module.__name__}: {results.failed} failed"
    assert results.attempted > 0, f"{module.__name__} has no doctests"
