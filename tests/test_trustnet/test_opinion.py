"""Tests for subjective-logic opinions and operators."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError
from repro.trustnet.opinion import Opinion, consensus, discount


@st.composite
def opinions(draw):
    b = draw(st.floats(0.0, 1.0))
    d = draw(st.floats(0.0, 1.0 - b))
    a = draw(st.floats(0.0, 1.0))
    return Opinion(b, d, 1.0 - b - d, a)


class TestOpinion:
    def test_components_must_sum_to_one(self):
        with pytest.raises(ConfigurationError):
            Opinion(0.5, 0.5, 0.5)

    def test_component_bounds(self):
        with pytest.raises(ConfigurationError):
            Opinion(1.5, -0.5, 0.0)

    def test_vacuous(self):
        o = Opinion.vacuous()
        assert o.uncertainty == 1.0
        assert o.expectation == 0.5

    def test_dogmatic(self):
        o = Opinion.dogmatic(0.8)
        assert o.uncertainty == 0.0
        assert o.expectation == pytest.approx(0.8)

    def test_from_evidence(self):
        o = Opinion.from_evidence(8, 0)
        assert o.belief == pytest.approx(0.8)
        assert o.uncertainty == pytest.approx(0.2)
        assert o.expectation == pytest.approx(0.9)

    def test_evidence_reduces_uncertainty(self):
        weak = Opinion.from_evidence(2, 1)
        strong = Opinion.from_evidence(200, 100)
        assert strong.uncertainty < weak.uncertainty

    def test_from_rating(self):
        o = Opinion.from_rating(0.9, confidence=0.8)
        assert o.belief == pytest.approx(0.72)
        assert o.uncertainty == pytest.approx(0.2)

    def test_negative_evidence_rejected(self):
        with pytest.raises(ConfigurationError):
            Opinion.from_evidence(-1, 0)

    @given(opinions())
    def test_property_expectation_bounded(self, o):
        assert 0.0 - 1e-9 <= o.expectation <= 1.0 + 1e-9


class TestDiscount:
    def test_full_trust_preserves_opinion(self):
        full = Opinion.dogmatic(1.0)
        target = Opinion.from_evidence(9, 1)
        out = discount(full, target)
        assert out.belief == pytest.approx(target.belief)
        assert out.disbelief == pytest.approx(target.disbelief)

    def test_no_trust_gives_vacuous(self):
        none = Opinion.dogmatic(0.0)
        target = Opinion.from_evidence(9, 1)
        out = discount(none, target)
        assert out.uncertainty == pytest.approx(1.0)

    def test_uncertainty_grows_along_chains(self):
        link = Opinion.from_evidence(8, 1)
        opinion = Opinion.from_evidence(9, 0)
        chained = opinion
        previous_u = opinion.uncertainty
        for _ in range(4):
            chained = discount(link, chained)
            assert chained.uncertainty >= previous_u
            previous_u = chained.uncertainty

    @given(opinions(), opinions())
    def test_property_valid_opinion(self, trust, opinion):
        out = discount(trust, opinion)
        total = out.belief + out.disbelief + out.uncertainty
        assert abs(total - 1.0) < 1e-6
        assert out.belief <= opinion.belief + 1e-9


class TestConsensus:
    def test_agreement_reduces_uncertainty(self):
        a = Opinion.from_evidence(8, 2)
        fused = consensus(a, a)
        assert fused.uncertainty < a.uncertainty
        assert fused.expectation == pytest.approx(a.expectation, abs=0.05)

    def test_vacuous_is_neutral_element(self):
        a = Opinion.from_evidence(5, 5)
        fused = consensus(a, Opinion.vacuous())
        assert fused.belief == pytest.approx(a.belief)
        assert fused.uncertainty == pytest.approx(a.uncertainty)

    def test_disagreement_averages(self):
        pro = Opinion.from_evidence(10, 0)
        con = Opinion.from_evidence(0, 10)
        fused = consensus(pro, con)
        assert fused.expectation == pytest.approx(0.5, abs=0.01)

    def test_dogmatic_limit(self):
        fused = consensus(Opinion.dogmatic(1.0), Opinion.dogmatic(0.0))
        assert fused.expectation == pytest.approx(0.5)

    def test_consensus_is_evidence_additive(self):
        # Consensus of (r1,s1) and (r2,s2) evidence equals the opinion
        # from pooled evidence (r1+r2, s1+s2) -- Jøsang's mapping.
        a = Opinion.from_evidence(4, 1)
        b = Opinion.from_evidence(2, 3)
        pooled = Opinion.from_evidence(6, 4)
        fused = consensus(a, b)
        assert fused.belief == pytest.approx(pooled.belief, abs=1e-9)
        assert fused.uncertainty == pytest.approx(pooled.uncertainty,
                                                  abs=1e-9)

    @given(opinions(), opinions())
    def test_property_commutative(self, a, b):
        ab = consensus(a, b)
        ba = consensus(b, a)
        assert ab.belief == pytest.approx(ba.belief, abs=1e-6)
        assert ab.uncertainty == pytest.approx(ba.uncertainty, abs=1e-6)

    @given(opinions(), opinions())
    def test_property_uncertainty_never_grows(self, a, b):
        fused = consensus(a, b)
        assert fused.uncertainty <= min(a.uncertainty, b.uncertainty) + 1e-6

    @given(
        st.floats(0, 20), st.floats(0, 20),
        st.floats(0, 20), st.floats(0, 20),
        st.floats(0, 20), st.floats(0, 20),
    )
    def test_property_consensus_associative_on_evidence(
        self, r1, s1, r2, s2, r3, s3
    ):
        # On evidence-based opinions consensus is evidence addition,
        # hence associative.
        a = Opinion.from_evidence(r1, s1)
        b = Opinion.from_evidence(r2, s2)
        c = Opinion.from_evidence(r3, s3)
        left = consensus(consensus(a, b), c)
        right = consensus(a, consensus(b, c))
        assert left.belief == pytest.approx(right.belief, abs=1e-6)
        assert left.uncertainty == pytest.approx(right.uncertainty,
                                                 abs=1e-6)

    @given(opinions(), opinions(), opinions())
    def test_property_discount_distributes_over_chains(self, t1, t2, x):
        # Discounting through t1 then t2 equals discounting through the
        # combined chain trust (belief multiplies): b stays b1*b2*bx.
        step = discount(t2, discount(t1, x))
        assert step.belief == pytest.approx(
            t1.belief * t2.belief * x.belief, abs=1e-9
        )
