"""Tests for trust network analysis."""

import pytest

from repro.common.errors import ConfigurationError
from repro.trustnet.network import TrustNetwork
from repro.trustnet.opinion import Opinion


def strong():
    return Opinion.from_evidence(9, 0)


def weak():
    return Opinion.from_evidence(1, 1)


class TestConstruction:
    def test_self_edges_rejected(self):
        net = TrustNetwork()
        with pytest.raises(ConfigurationError):
            net.add_referral_trust("a", "a", strong())

    def test_nodes(self):
        net = TrustNetwork()
        net.add_referral_trust("alice", "doctor", strong())
        net.add_functional_trust("doctor", "specialist", strong())
        assert net.nodes() == ["alice", "doctor", "specialist"]


class TestPaths:
    def build_paper_example(self):
        """Alice -> doctor (referral) -> specialist (functional)."""
        net = TrustNetwork()
        net.add_referral_trust("alice", "doctor", strong())
        net.add_functional_trust("doctor", "specialist",
                                 Opinion.from_evidence(8, 0))
        return net

    def test_paper_example_derives_trust(self):
        net = self.build_paper_example()
        derived = net.derived_trust("alice", "specialist")
        assert derived.expectation > 0.6
        assert derived.uncertainty > 0  # transitive, not first-hand

    def test_paths_require_functional_last_edge(self):
        net = TrustNetwork()
        net.add_referral_trust("a", "b", strong())
        net.add_referral_trust("b", "x", strong())  # referral only!
        assert net.trust_paths("a", "x") == []
        assert net.derived_trust("a", "x").uncertainty == 1.0

    def test_direct_functional_trust_needs_no_referral(self):
        net = TrustNetwork()
        net.add_functional_trust("a", "x", Opinion.from_evidence(9, 1))
        derived = net.derived_trust("a", "x")
        assert derived.belief == pytest.approx(0.75)

    def test_depth_bound(self):
        net = TrustNetwork(max_depth=2)
        net.add_referral_trust("a", "b", strong())
        net.add_referral_trust("b", "c", strong())
        net.add_functional_trust("c", "x", strong())
        # Path a-b-c-x has 3 edges > max_depth 2.
        assert net.trust_paths("a", "x") == []

    def test_cycles_excluded(self):
        net = TrustNetwork()
        net.add_referral_trust("a", "b", strong())
        net.add_referral_trust("b", "a", strong())
        net.add_functional_trust("b", "x", strong())
        paths = net.trust_paths("a", "x")
        assert len(paths) == 1
        assert paths[0].nodes == ("a", "b", "x")

    def test_longer_chains_more_uncertain(self):
        short_net = TrustNetwork()
        short_net.add_referral_trust("a", "b", weak())
        short_net.add_functional_trust("b", "x", strong())
        long_net = TrustNetwork()
        long_net.add_referral_trust("a", "b", weak())
        long_net.add_referral_trust("b", "c", weak())
        long_net.add_referral_trust("c", "d", weak())
        long_net.add_functional_trust("d", "x", strong())
        assert (
            long_net.derived_trust("a", "x").uncertainty
            > short_net.derived_trust("a", "x").uncertainty
        )


class TestFusion:
    def test_parallel_paths_reduce_uncertainty(self):
        single = TrustNetwork()
        single.add_referral_trust("a", "b", strong())
        single.add_functional_trust("b", "x", strong())
        double = TrustNetwork()
        double.add_referral_trust("a", "b", strong())
        double.add_functional_trust("b", "x", strong())
        double.add_referral_trust("a", "c", strong())
        double.add_functional_trust("c", "x", strong())
        assert (
            double.derived_trust("a", "x").uncertainty
            < single.derived_trust("a", "x").uncertainty
        )

    def test_disjoint_selection_avoids_double_counting(self):
        # Two paths sharing the interior node b are NOT independent;
        # only one may be fused.
        net = TrustNetwork()
        net.add_referral_trust("a", "b", strong())
        net.add_referral_trust("b", "c", strong())
        net.add_referral_trust("b", "d", strong())
        net.add_functional_trust("c", "x", strong())
        net.add_functional_trust("d", "x", strong())
        paths = net.trust_paths("a", "x")
        assert len(paths) == 2
        chosen = net._disjoint_subset(paths)
        assert len(chosen) == 1

    def test_conflicting_witnesses_average(self):
        net = TrustNetwork()
        net.add_referral_trust("a", "fan", strong())
        net.add_functional_trust("fan", "x", Opinion.from_evidence(10, 0))
        net.add_referral_trust("a", "hater", strong())
        net.add_functional_trust("hater", "x", Opinion.from_evidence(0, 10))
        derived = net.derived_trust("a", "x")
        assert derived.expectation == pytest.approx(0.5, abs=0.1)

    def test_derived_self_trust_rejected(self):
        with pytest.raises(ConfigurationError):
            TrustNetwork().derived_trust("a", "a")

    def test_expectation_convenience(self):
        net = TrustNetwork()
        net.add_functional_trust("a", "x", Opinion.from_evidence(9, 1))
        assert net.expectation("a", "x") == pytest.approx(
            net.derived_trust("a", "x").expectation
        )
