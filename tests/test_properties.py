"""Cross-model property-based tests.

Invariants every reputation mechanism in the registry must satisfy,
checked with hypothesis-generated feedback streams:

* scores stay on [0, 1] for any input;
* scoring is read-only (two consecutive queries agree);
* rank() is consistent with score();
* models are deterministic given the same feedback sequence;
* unanimous strong evidence orders a clearly-good target above a
  clearly-bad one.
"""

from __future__ import annotations

from typing import List

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.common.records import Feedback
from repro.core.registry import default_registry

REGISTRY = default_registry(rng_seed=0)
#: Models whose scoring involves a seeded-but-stateful substrate
#: (referral network adaptation mutates weights on query).
QUERY_MUTATING = {"yolum_singh"}

MODEL_NAMES = REGISTRY.names()


@st.composite
def feedback_streams(draw) -> List[Feedback]:
    n = draw(st.integers(0, 30))
    raters = [f"r{i}" for i in range(6)]
    targets = ["svc-a", "svc-b", "svc-c"]
    stream = []
    for i in range(n):
        stream.append(
            Feedback(
                rater=draw(st.sampled_from(raters)),
                target=draw(st.sampled_from(targets)),
                time=float(i),
                rating=draw(
                    st.floats(0.0, 1.0, allow_nan=False)
                ),
            )
        )
    return stream


@pytest.mark.parametrize("name", MODEL_NAMES)
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(stream=feedback_streams())
def test_property_scores_bounded(name, stream):
    model = REGISTRY.create(name)
    model.record_many(stream)
    for target in ["svc-a", "svc-b", "svc-c", "never-seen"]:
        score = model.score(target, perspective="r0")
        assert 0.0 - 1e-9 <= score <= 1.0 + 1e-9


@pytest.mark.parametrize("name", MODEL_NAMES)
@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(stream=feedback_streams())
def test_property_scoring_is_repeatable(name, stream):
    if name in QUERY_MUTATING:
        pytest.skip("query-time adaptation is part of this model's design")
    model = REGISTRY.create(name)
    model.record_many(stream)
    first = model.score("svc-a", perspective="r0")
    second = model.score("svc-a", perspective="r0")
    assert first == pytest.approx(second)


@pytest.mark.parametrize("name", MODEL_NAMES)
@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(stream=feedback_streams())
def test_property_rank_consistent_with_score(name, stream):
    if name in QUERY_MUTATING:
        pytest.skip("query-time adaptation reorders between calls")
    if name == "liu_ngu_zeng":
        pytest.skip("rank() is candidate-set-relative by design")
    model = REGISTRY.create(name)
    model.record_many(stream)
    candidates = ["svc-a", "svc-b", "svc-c"]
    ranking = model.rank(candidates, perspective="r0")
    scores = [st_.score for st_ in ranking]
    assert scores == sorted(scores, reverse=True)
    for entry in ranking:
        assert entry.score == pytest.approx(
            model.score(entry.target, perspective="r0"), abs=1e-6
        )


@pytest.mark.parametrize("name", MODEL_NAMES)
def test_property_deterministic_across_instances(name):
    stream = [
        Feedback(rater=f"r{i % 4}", target=["svc-a", "svc-b"][i % 2],
                 time=float(i), rating=(i % 10) / 10.0)
        for i in range(25)
    ]
    a = REGISTRY.create(name)
    b = REGISTRY.create(name)
    a.record_many(stream)
    b.record_many(stream)
    assert a.score("svc-a", perspective="r0") == pytest.approx(
        b.score("svc-a", perspective="r0")
    )


@pytest.mark.parametrize("name", MODEL_NAMES)
def test_property_unanimous_evidence_orders_targets(name):
    model = REGISTRY.create(name)
    stream = []
    t = 0.0
    for i in range(8):
        for rater in ["r0", "r1", "r2", "r3"]:
            stream.append(Feedback(rater=rater, target="svc-good",
                                   time=t, rating=0.95))
            t += 1.0
            stream.append(Feedback(rater=rater, target="svc-bad",
                                   time=t, rating=0.05))
            t += 1.0
    model.record_many(stream)
    good = model.score("svc-good", perspective="r0")
    bad = model.score("svc-bad", perspective="r0")
    assert good > bad, f"{name}: {good} <= {bad}"


@pytest.mark.parametrize("name", MODEL_NAMES)
def test_property_empty_model_is_safe(name):
    model = REGISTRY.create(name)
    score = model.score("anything")
    assert 0.0 <= score <= 1.0
    assert model.rank([]) == []
    assert model.best([]) is None
