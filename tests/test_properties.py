"""Cross-model property-based tests.

Invariants every reputation mechanism in the registry must satisfy,
checked with hypothesis-generated feedback streams:

* scores stay on [0, 1] for any input;
* scoring is read-only (two consecutive queries agree);
* rank() is consistent with score();
* models are deterministic given the same feedback sequence;
* unanimous strong evidence orders a clearly-good target above a
  clearly-bad one.
"""

from __future__ import annotations

from typing import List

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.common.records import Feedback
from repro.core.registry import default_registry

REGISTRY = default_registry(rng_seed=0)
#: Models whose scoring involves a seeded-but-stateful substrate
#: (referral network adaptation mutates weights on query).
QUERY_MUTATING = {"yolum_singh"}

MODEL_NAMES = REGISTRY.names()


@st.composite
def feedback_streams(draw) -> List[Feedback]:
    n = draw(st.integers(0, 30))
    raters = [f"r{i}" for i in range(6)]
    targets = ["svc-a", "svc-b", "svc-c"]
    stream = []
    for i in range(n):
        stream.append(
            Feedback(
                rater=draw(st.sampled_from(raters)),
                target=draw(st.sampled_from(targets)),
                time=float(i),
                rating=draw(
                    st.floats(0.0, 1.0, allow_nan=False)
                ),
            )
        )
    return stream


@pytest.mark.parametrize("name", MODEL_NAMES)
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(stream=feedback_streams())
def test_property_scores_bounded(name, stream):
    model = REGISTRY.create(name)
    model.record_many(stream)
    for target in ["svc-a", "svc-b", "svc-c", "never-seen"]:
        score = model.score(target, perspective="r0")
        assert 0.0 - 1e-9 <= score <= 1.0 + 1e-9


@pytest.mark.parametrize("name", MODEL_NAMES)
@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(stream=feedback_streams())
def test_property_scoring_is_repeatable(name, stream):
    if name in QUERY_MUTATING:
        pytest.skip("query-time adaptation is part of this model's design")
    model = REGISTRY.create(name)
    model.record_many(stream)
    first = model.score("svc-a", perspective="r0")
    second = model.score("svc-a", perspective="r0")
    assert first == pytest.approx(second)


@pytest.mark.parametrize("name", MODEL_NAMES)
@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(stream=feedback_streams())
def test_property_rank_consistent_with_score(name, stream):
    if name in QUERY_MUTATING:
        pytest.skip("query-time adaptation reorders between calls")
    if name == "liu_ngu_zeng":
        pytest.skip("rank() is candidate-set-relative by design")
    model = REGISTRY.create(name)
    model.record_many(stream)
    candidates = ["svc-a", "svc-b", "svc-c"]
    ranking = model.rank(candidates, perspective="r0")
    scores = [st_.score for st_ in ranking]
    assert scores == sorted(scores, reverse=True)
    for entry in ranking:
        assert entry.score == pytest.approx(
            model.score(entry.target, perspective="r0"), abs=1e-6
        )


@pytest.mark.parametrize("name", MODEL_NAMES)
def test_property_deterministic_across_instances(name):
    stream = [
        Feedback(rater=f"r{i % 4}", target=["svc-a", "svc-b"][i % 2],
                 time=float(i), rating=(i % 10) / 10.0)
        for i in range(25)
    ]
    a = REGISTRY.create(name)
    b = REGISTRY.create(name)
    a.record_many(stream)
    b.record_many(stream)
    assert a.score("svc-a", perspective="r0") == pytest.approx(
        b.score("svc-a", perspective="r0")
    )


@pytest.mark.parametrize("name", MODEL_NAMES)
def test_property_unanimous_evidence_orders_targets(name):
    model = REGISTRY.create(name)
    stream = []
    t = 0.0
    for i in range(8):
        for rater in ["r0", "r1", "r2", "r3"]:
            stream.append(Feedback(rater=rater, target="svc-good",
                                   time=t, rating=0.95))
            t += 1.0
            stream.append(Feedback(rater=rater, target="svc-bad",
                                   time=t, rating=0.05))
            t += 1.0
    model.record_many(stream)
    good = model.score("svc-good", perspective="r0")
    bad = model.score("svc-bad", perspective="r0")
    assert good > bad, f"{name}: {good} <= {bad}"


@pytest.mark.parametrize("name", MODEL_NAMES)
def test_property_empty_model_is_safe(name):
    model = REGISTRY.create(name)
    score = model.score("anything")
    assert 0.0 <= score <= 1.0
    assert model.rank([]) == []
    assert model.best([]) is None


# ---------------------------------------------------------------------------
# Fault-injection and resilience invariants
# ---------------------------------------------------------------------------

from repro.common.errors import RegistryError
from repro.common.randomness import SeedSequenceFactory
from repro.faults.degradation import discounted_score
from repro.faults.plan import ChurnSchedule, MessageFaultInjector
from repro.faults.resilience import BreakerState, CircuitBreaker, RetryPolicy


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 2 ** 16),
    n_nodes=st.integers(1, 12),
    horizon=st.floats(1.0, 200.0, allow_nan=False),
)
def test_property_churn_schedule_is_seed_deterministic(seed, n_nodes, horizon):
    nodes = [f"n{i}" for i in range(n_nodes)]
    a = ChurnSchedule.generate(
        nodes, horizon, rng=SeedSequenceFactory(seed).rng("churn")
    )
    b = ChurnSchedule.generate(
        list(reversed(nodes)), horizon,
        rng=SeedSequenceFactory(seed).rng("churn"),
    )
    assert a == b
    for node in a.nodes():
        windows = a.windows_for(node)
        for w in windows:
            assert 0.0 <= w.start < horizon
            assert w.end >= w.start
        # windows are chronological and non-overlapping
        for earlier, later in zip(windows, windows[1:]):
            assert earlier.end <= later.start


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 2 ** 16),
    drop=st.floats(0.0, 1.0, allow_nan=False),
    dup=st.floats(0.0, 1.0, allow_nan=False),
    delay=st.floats(0.0, 1.0, allow_nan=False),
)
def test_property_fault_injector_replays_identically(seed, drop, dup, delay):
    def injector():
        return MessageFaultInjector(
            drop_rate=drop, duplicate_rate=dup, delay_rate=delay,
            rng=SeedSequenceFactory(seed).rng("msg"),
        )

    a, b = injector(), injector()
    decisions_a = [a.perturb("m") for _ in range(60)]
    decisions_b = [b.perturb("m") for _ in range(60)]
    assert decisions_a == decisions_b
    assert a.dropped == b.dropped
    for decision in decisions_a:
        assert decision.extra_delay >= 0.0
        assert decision.duplicates >= 0
        if decision.drop:  # dropped messages carry no other perturbation
            assert decision.extra_delay == 0.0
            assert decision.duplicates == 0


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 2 ** 16),
    attempts=st.integers(1, 6),
    failures_before_success=st.integers(0, 8),
)
def test_property_retry_never_exceeds_budget(
    seed, attempts, failures_before_success
):
    policy = RetryPolicy(
        max_attempts=attempts, rng=SeedSequenceFactory(seed).rng("r")
    )
    calls = {"n": 0}

    def flaky():
        calls["n"] += 1
        if calls["n"] <= failures_before_success:
            raise RegistryError("transient")
        return "ok"

    outcome = policy.call(flaky, retry_on=(RegistryError,))
    assert calls["n"] == outcome.attempts <= attempts
    assert outcome.backoff_delay >= 0.0
    assert outcome.succeeded == (failures_before_success < attempts)


@settings(max_examples=25, deadline=None)
@given(
    outcomes=st.lists(st.booleans(), min_size=0, max_size=60),
    threshold=st.floats(0.1, 1.0, allow_nan=False),
)
def test_property_breaker_state_machine_is_sound(outcomes, threshold):
    breaker = CircuitBreaker(
        failure_rate_threshold=threshold, window=8, min_calls=3,
        recovery_timeout=2.0,
    )
    now = 0.0
    for ok in outcomes:
        if breaker.allow(now):
            if ok:
                breaker.record_success(now)
            else:
                breaker.record_failure(now)
        now += 1.0
    # 1. transitions chain: each starts where the previous ended
    previous = BreakerState.CLOSED
    for _, frm, to in breaker.transitions:
        assert frm is previous
        assert frm is not to
        previous = to
    assert previous is breaker.state
    # 2. the machine only ever takes legal edges
    legal = {
        (BreakerState.CLOSED, BreakerState.OPEN),
        (BreakerState.OPEN, BreakerState.HALF_OPEN),
        (BreakerState.HALF_OPEN, BreakerState.OPEN),
        (BreakerState.HALF_OPEN, BreakerState.CLOSED),
    }
    for _, frm, to in breaker.transitions:
        assert (frm, to) in legal
    assert 0.0 <= breaker.failure_rate <= 1.0


@settings(max_examples=50, deadline=None)
@given(
    score=st.floats(0.0, 1.0, allow_nan=False),
    confidence=st.floats(0.0, 1.0, allow_nan=False),
)
def test_property_discounting_contracts_toward_prior(score, confidence):
    discounted = discounted_score(score, confidence)
    assert 0.0 <= discounted <= 1.0
    assert abs(discounted - 0.5) <= abs(score - 0.5) + 1e-12
    if score >= 0.5:
        assert discounted >= 0.5 - 1e-12  # never crosses the prior
    else:
        assert discounted <= 0.5 + 1e-12
