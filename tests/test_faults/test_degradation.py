"""Stale caches, confidence discounting, ranking fallback."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigurationError
from repro.core.decay import ExponentialDecay, NoDecay, SlidingWindow
from repro.faults.degradation import (
    StaleCache,
    StaleRankingFallback,
    StaleValue,
    discounted_score,
)
from repro.models.base import ScoredTarget


class TestStaleCache:
    def test_miss_on_empty(self):
        cache = StaleCache()
        assert cache.get("k", 0.0) is None
        assert cache.misses == 1
        assert len(cache) == 0

    def test_fresh_hit_full_confidence(self):
        cache = StaleCache()
        cache.put("k", [1, 2], now=10.0)
        stale = cache.get("k", now=10.0)
        assert stale == StaleValue(value=[1, 2], age=0.0, confidence=1.0)
        assert cache.hits == 1
        assert "k" in cache

    def test_confidence_decays_with_age(self):
        cache = StaleCache(decay=ExponentialDecay(half_life=10.0))
        cache.put("k", "v", now=0.0)
        assert cache.get("k", now=10.0).confidence == pytest.approx(0.5)
        assert cache.get("k", now=20.0).confidence == pytest.approx(0.25)

    def test_max_age_hard_floor(self):
        cache = StaleCache(decay=NoDecay(), max_age=5.0)
        cache.put("k", "v", now=0.0)
        assert cache.get("k", now=5.0) is not None
        assert cache.get("k", now=5.1) is None

    def test_zero_confidence_is_a_miss(self):
        cache = StaleCache(decay=SlidingWindow(window=3.0))
        cache.put("k", "v", now=0.0)
        assert cache.get("k", now=2.0).confidence == 1.0
        assert cache.get("k", now=4.0) is None  # weight 0 -> miss

    def test_put_refreshes_age(self):
        cache = StaleCache(decay=ExponentialDecay(half_life=10.0))
        cache.put("k", "old", now=0.0)
        cache.put("k", "new", now=50.0)
        stale = cache.get("k", now=50.0)
        assert stale.value == "new"
        assert stale.confidence == 1.0

    def test_clock_skew_clamps_to_zero_age(self):
        cache = StaleCache()
        cache.put("k", "v", now=10.0)
        assert cache.get("k", now=5.0).age == 0.0

    def test_rejects_non_positive_max_age(self):
        with pytest.raises(ConfigurationError):
            StaleCache(max_age=0.0)


class TestDiscountedScore:
    def test_full_confidence_keeps_score(self):
        assert discounted_score(0.9, 1.0) == pytest.approx(0.9)

    def test_zero_confidence_returns_prior(self):
        assert discounted_score(0.9, 0.0) == pytest.approx(0.5)
        assert discounted_score(0.1, 0.0, prior=0.3) == pytest.approx(0.3)

    def test_shrinks_toward_prior_from_both_sides(self):
        assert discounted_score(0.9, 0.5) == pytest.approx(0.7)
        assert discounted_score(0.1, 0.5) == pytest.approx(0.3)

    def test_preserves_order_at_equal_confidence(self):
        high = discounted_score(0.8, 0.4)
        low = discounted_score(0.6, 0.4)
        assert high > low

    def test_rejects_confidence_out_of_range(self):
        with pytest.raises(ConfigurationError):
            discounted_score(0.5, 1.5)


class TestStaleRankingFallback:
    def test_recall_discounts_scores(self):
        fallback = StaleRankingFallback(
            decay=ExponentialDecay(half_life=10.0)
        )
        ranking = [
            ScoredTarget("svc-a", 0.9),
            ScoredTarget("svc-b", 0.3),
        ]
        fallback.remember("key", ranking, now=0.0)
        recalled = fallback.recall("key", now=10.0)  # confidence 0.5
        assert [st.target for st in recalled] == ["svc-a", "svc-b"]
        assert recalled[0].score == pytest.approx(0.7)
        assert recalled[1].score == pytest.approx(0.4)

    def test_recall_preserves_ranking_order(self):
        fallback = StaleRankingFallback()
        ranking = [ScoredTarget(f"s{i}", 1.0 - i * 0.1) for i in range(5)]
        fallback.remember("k", ranking, now=0.0)
        recalled = fallback.recall("k", now=30.0)
        scores = [st.score for st in recalled]
        assert scores == sorted(scores, reverse=True)

    def test_recall_missing_key(self):
        assert StaleRankingFallback().recall("nope", now=0.0) is None
