"""Retry policies, circuit breakers, timeouts."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigurationError, RegistryError, ReproError
from repro.common.randomness import SeedSequenceFactory
from repro.faults.resilience import (
    BreakerBoard,
    BreakerState,
    CircuitBreaker,
    CircuitOpenError,
    RetryPolicy,
    Timeout,
)


class TestTimeout:
    def test_budget_is_inclusive(self):
        timeout = Timeout(2.0)
        assert not timeout.exceeded(1.9)
        assert not timeout.exceeded(2.0)
        assert timeout.exceeded(2.001)

    def test_rejects_non_positive_budget(self):
        with pytest.raises(ConfigurationError):
            Timeout(0.0)


class TestRetryPolicy:
    def test_success_first_try(self):
        policy = RetryPolicy(max_attempts=3, rng=0)
        outcome = policy.call(lambda: 42)
        assert outcome.succeeded
        assert outcome.value == 42
        assert outcome.attempts == 1
        assert outcome.backoff_delay == 0.0
        assert policy.retries_used == 0

    def test_eventual_success(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise RegistryError("transient")
            return "ok"

        policy = RetryPolicy(max_attempts=3, rng=0)
        outcome = policy.call(flaky, retry_on=(RegistryError,))
        assert outcome.succeeded
        assert outcome.value == "ok"
        assert outcome.attempts == 3
        assert outcome.backoff_delay > 0
        assert policy.retries_used == 2

    def test_exhaustion_returns_error_not_raises(self):
        def always_fails():
            raise RegistryError("down")

        policy = RetryPolicy(max_attempts=2, rng=0)
        outcome = policy.call(always_fails, retry_on=(RegistryError,))
        assert not outcome.succeeded
        assert outcome.value is None
        assert isinstance(outcome.error, RegistryError)
        assert outcome.attempts == 2

    def test_unlisted_exceptions_propagate(self):
        policy = RetryPolicy(max_attempts=3, rng=0)
        with pytest.raises(ValueError):
            policy.call(
                lambda: (_ for _ in ()).throw(ValueError("bug")),
                retry_on=(ReproError,),
            )

    def test_backoff_grows_exponentially_without_jitter(self):
        policy = RetryPolicy(
            base_delay=0.1, multiplier=2.0, max_delay=10.0, jitter=0.0
        )
        assert policy.backoff(1) == pytest.approx(0.1)
        assert policy.backoff(2) == pytest.approx(0.2)
        assert policy.backoff(3) == pytest.approx(0.4)

    def test_backoff_caps_at_max_delay(self):
        policy = RetryPolicy(
            base_delay=1.0, multiplier=10.0, max_delay=3.0, jitter=0.0
        )
        assert policy.backoff(5) == pytest.approx(3.0)

    def test_jitter_stays_in_relative_band(self):
        policy = RetryPolicy(
            base_delay=1.0, multiplier=1.0, max_delay=1.0, jitter=0.5,
            rng=SeedSequenceFactory(0).rng("retry"),
        )
        for attempt in range(1, 50):
            assert 0.5 <= policy.backoff(1) <= 1.5

    def test_jitter_is_deterministic_under_seed(self):
        make = lambda: RetryPolicy(
            jitter=0.5, rng=SeedSequenceFactory(9).rng("retry")
        )
        a, b = make(), make()
        assert [a.backoff(i) for i in range(1, 10)] == [
            b.backoff(i) for i in range(1, 10)
        ]

    def test_on_retry_callback(self):
        seen = []
        policy = RetryPolicy(max_attempts=3, rng=0)
        policy.call(
            lambda: (_ for _ in ()).throw(RegistryError("x")),
            retry_on=(RegistryError,),
            on_retry=lambda attempt, exc: seen.append(attempt),
        )
        assert seen == [1, 2]

    def test_rejects_bad_config(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter=2.0)


def trip(breaker: CircuitBreaker, now: float = 0.0, failures: int = 4):
    for _ in range(failures):
        assert breaker.allow(now)
        breaker.record_failure(now)


class TestCircuitBreaker:
    def test_starts_closed_and_allows(self):
        breaker = CircuitBreaker()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow(0.0)

    def test_opens_at_failure_rate_threshold(self):
        breaker = CircuitBreaker(
            failure_rate_threshold=0.5, window=10, min_calls=4
        )
        breaker.record_failure(0.0)
        breaker.record_success(0.0)
        breaker.record_failure(0.0)
        assert breaker.state is BreakerState.CLOSED  # below min_calls
        breaker.record_failure(0.0)  # 3/4 failures >= 0.5
        assert breaker.state is BreakerState.OPEN

    def test_open_refuses_until_recovery_timeout(self):
        breaker = CircuitBreaker(recovery_timeout=5.0)
        trip(breaker, now=10.0)
        assert not breaker.allow(12.0)
        assert breaker.calls_refused == 1
        assert breaker.allow(15.0)  # 10 + 5 elapsed -> half-open trial
        assert breaker.state is BreakerState.HALF_OPEN

    def test_half_open_meters_trial_calls(self):
        breaker = CircuitBreaker(recovery_timeout=1.0, half_open_max_calls=1)
        trip(breaker, now=0.0)
        assert breaker.allow(2.0)  # the one trial
        assert not breaker.allow(2.0)  # metered out

    def test_half_open_failure_reopens(self):
        breaker = CircuitBreaker(recovery_timeout=1.0)
        trip(breaker, now=0.0)
        assert breaker.allow(2.0)
        breaker.record_failure(2.0)
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow(2.5)
        assert breaker.allow(3.0)  # re-probes after another timeout

    def test_half_open_success_closes_and_clears(self):
        breaker = CircuitBreaker(recovery_timeout=1.0)
        trip(breaker, now=0.0)
        assert breaker.allow(2.0)
        breaker.record_success(2.0)
        assert breaker.state is BreakerState.CLOSED
        assert breaker.failure_rate == 0.0  # window cleared on close

    def test_full_cycle_recorded_in_transitions(self):
        breaker = CircuitBreaker(recovery_timeout=1.0)
        trip(breaker, now=0.0)
        breaker.allow(2.0)
        breaker.record_success(2.0)
        assert [(frm, to) for _, frm, to in breaker.transitions] == [
            (BreakerState.CLOSED, BreakerState.OPEN),
            (BreakerState.OPEN, BreakerState.HALF_OPEN),
            (BreakerState.HALF_OPEN, BreakerState.CLOSED),
        ]
        assert breaker.saw_states(
            BreakerState.CLOSED, BreakerState.OPEN, BreakerState.HALF_OPEN
        )

    def test_sliding_window_forgets_old_failures(self):
        breaker = CircuitBreaker(window=4, min_calls=4)
        breaker.record_failure(0.0)
        breaker.record_failure(0.0)
        for _ in range(4):
            breaker.record_success(0.0)
        # the two failures have slid out of the window
        assert breaker.state is BreakerState.CLOSED
        assert breaker.failure_rate == 0.0

    def test_guard_raises_circuit_open(self):
        breaker = CircuitBreaker(recovery_timeout=100.0)
        trip(breaker, now=0.0)
        with pytest.raises(CircuitOpenError):
            breaker.guard(1.0)
        # CircuitOpenError is a library error, so resilience layers above
        # (stale fallback) can catch it uniformly.
        assert issubclass(CircuitOpenError, ReproError)

    def test_rejects_bad_config(self):
        with pytest.raises(ConfigurationError):
            CircuitBreaker(failure_rate_threshold=0.0)
        with pytest.raises(ConfigurationError):
            CircuitBreaker(window=2, min_calls=3)
        with pytest.raises(ConfigurationError):
            CircuitBreaker(recovery_timeout=0.0)


class TestBreakerBoard:
    def test_per_target_isolation(self):
        board = BreakerBoard(min_calls=2, window=2)
        trip(board.for_target("bad"), failures=2)
        assert board.for_target("bad").state is BreakerState.OPEN
        assert board.for_target("good").state is BreakerState.CLOSED
        assert board.open_targets() == ["bad"]

    def test_same_breaker_returned(self):
        board = BreakerBoard()
        assert board.for_target("x") is board.for_target("x")
        assert set(board.breakers()) == {"x"}
