"""Fault plans: outage windows, churn schedules, message perturbation."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigurationError
from repro.common.randomness import SeedSequenceFactory
from repro.faults.plan import (
    ChurnSchedule,
    FaultPlan,
    MessageFaultInjector,
    MessagePerturbation,
    OutageWindow,
    any_active,
)
from repro.p2p.node import Peer
from repro.registry.qos_registry import CentralQoSRegistry
from repro.sim.network import Network


class TestOutageWindow:
    def test_half_open_interval(self):
        window = OutageWindow(2.0, 5.0)
        assert not window.active(1.9)
        assert window.active(2.0)
        assert window.active(4.999)
        assert not window.active(5.0)

    def test_duration(self):
        assert OutageWindow(2.0, 5.0).duration == 3.0

    def test_rejects_inverted_window(self):
        with pytest.raises(ConfigurationError):
            OutageWindow(5.0, 2.0)

    def test_any_active(self):
        windows = [OutageWindow(0.0, 1.0), OutageWindow(4.0, 6.0)]
        assert any_active(windows, 0.5)
        assert not any_active(windows, 2.0)
        assert any_active(windows, 5.0)
        assert not any_active([], 0.0)


class TestChurnSchedule:
    def test_same_seed_same_schedule(self):
        nodes = [f"n{i}" for i in range(8)]
        a = ChurnSchedule.generate(
            nodes, horizon=100.0, rng=SeedSequenceFactory(7).rng("churn")
        )
        b = ChurnSchedule.generate(
            nodes, horizon=100.0, rng=SeedSequenceFactory(7).rng("churn")
        )
        assert a == b

    def test_order_insensitive(self):
        nodes = [f"n{i}" for i in range(8)]
        a = ChurnSchedule.generate(
            nodes, horizon=100.0, rng=SeedSequenceFactory(7).rng("churn")
        )
        b = ChurnSchedule.generate(
            list(reversed(nodes)),
            horizon=100.0,
            rng=SeedSequenceFactory(7).rng("churn"),
        )
        assert a == b

    def test_different_seed_differs(self):
        nodes = [f"n{i}" for i in range(8)]
        a = ChurnSchedule.generate(
            nodes, horizon=200.0, rng=SeedSequenceFactory(1).rng("churn")
        )
        b = ChurnSchedule.generate(
            nodes, horizon=200.0, rng=SeedSequenceFactory(2).rng("churn")
        )
        assert a != b

    def test_windows_within_horizon_start(self):
        schedule = ChurnSchedule.generate(
            ["a", "b", "c"],
            horizon=50.0,
            mean_uptime=5.0,
            mean_downtime=2.0,
            rng=SeedSequenceFactory(3).rng("churn"),
        )
        for node in schedule.nodes():
            for window in schedule.windows_for(node):
                assert 0.0 <= window.start < 50.0
                assert window.end > window.start

    def test_down_matches_windows(self):
        schedule = ChurnSchedule(
            {"a": [OutageWindow(1.0, 2.0), OutageWindow(5.0, 7.0)]}
        )
        assert not schedule.down("a", 0.5)
        assert schedule.down("a", 1.5)
        assert not schedule.down("a", 3.0)
        assert schedule.down("a", 6.0)
        assert not schedule.down("missing", 1.5)
        assert schedule.downtime("a") == pytest.approx(3.0)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            ChurnSchedule.generate(["a"], horizon=0.0)
        with pytest.raises(ConfigurationError):
            ChurnSchedule.generate(["a"], horizon=10.0, mean_uptime=0.0)


class TestMessageFaultInjector:
    def test_zero_rates_are_noop(self):
        injector = MessageFaultInjector(rng=0)
        for _ in range(50):
            assert injector.perturb("any") == MessagePerturbation()
        assert injector.dropped == injector.duplicated == injector.delayed == 0

    def test_drop_rate_one_drops_everything(self):
        injector = MessageFaultInjector(drop_rate=1.0, rng=0)
        for _ in range(10):
            assert injector.perturb("any").drop
        assert injector.dropped == 10

    def test_kind_filter(self):
        injector = MessageFaultInjector(
            drop_rate=1.0, kinds=["qos-query"], rng=0
        )
        assert not injector.perturb("feedback-report").drop
        assert injector.perturb("qos-query").drop

    def test_deterministic_sequence(self):
        make = lambda: MessageFaultInjector(
            drop_rate=0.3,
            duplicate_rate=0.2,
            delay_rate=0.2,
            rng=SeedSequenceFactory(5).rng("faults"),
        )
        a, b = make(), make()
        seq_a = [a.perturb("m") for _ in range(200)]
        seq_b = [b.perturb("m") for _ in range(200)]
        assert seq_a == seq_b
        assert a.dropped == b.dropped > 0

    def test_rejects_bad_rates(self):
        with pytest.raises(ConfigurationError):
            MessageFaultInjector(drop_rate=1.5)
        with pytest.raises(ConfigurationError):
            MessageFaultInjector(extra_delay=-1.0)


class TestFaultPlan:
    def test_empty_plan_is_noop(self):
        plan = FaultPlan()
        assert not plan.node_down("x", 0.0)
        assert plan.slowdown("svc", 0.0) == 1.0
        assert plan.scheduled_nodes() == ()
        plan.apply(0.0)  # nothing to touch, nothing raises

    def test_slowdown_window(self):
        plan = FaultPlan(
            slow_services={"svc-1": [OutageWindow(5.0, 10.0)]},
            slowdown_factor=8.0,
        )
        assert plan.slowdown("svc-1", 4.0) == 1.0
        assert plan.slowdown("svc-1", 5.0) == 8.0
        assert plan.slowdown("svc-1", 10.0) == 1.0
        assert plan.slowdown("other", 7.0) == 1.0

    def test_rejects_speedup(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(slowdown_factor=0.5)

    def test_apply_drives_network_registry_and_peers(self):
        plan = FaultPlan(
            churn=ChurnSchedule({"peer-0": [OutageWindow(1.0, 3.0)]}),
            registry_outages={"reg": [OutageWindow(2.0, 4.0)]},
        )
        net = Network(rng=0)
        registry = CentralQoSRegistry(registry_id="reg")
        peer = Peer("peer-0")

        plan.apply(0.0, network=net, registries=[registry], peers=[peer])
        assert "peer-0" not in net.failed_nodes()
        assert not registry.is_failed
        assert peer.online

        plan.apply(2.0, network=net, registries=[registry], peers=[peer])
        assert "peer-0" in net.failed_nodes()
        assert registry.is_failed
        assert not peer.online
        assert peer.crash_count == 1

        plan.apply(3.5, network=net, registries=[registry], peers=[peer])
        assert "peer-0" not in net.failed_nodes()
        assert registry.is_failed  # registry window still open
        assert peer.online

        plan.apply(4.0, network=net, registries=[registry], peers=[peer])
        assert not registry.is_failed

    def test_apply_is_idempotent_per_round(self):
        plan = FaultPlan(
            churn=ChurnSchedule({"p": [OutageWindow(0.0, 10.0)]})
        )
        peer = Peer("p")
        for _ in range(5):
            plan.apply(1.0, peers=[peer])
        assert peer.crash_count == 1  # repeated applies do not re-crash

    def test_attach_installs_message_hook(self):
        injector = MessageFaultInjector(drop_rate=1.0, rng=0)
        plan = FaultPlan(message_faults=injector)
        net = Network(rng=0)
        plan.attach(net)
        assert net.faults is injector
        assert not net.send("a", "b")
        assert net.stats.dropped == 1

    def test_node_down_includes_registry_outages(self):
        plan = FaultPlan(registry_outages={"reg": [OutageWindow(0.0, 2.0)]})
        assert plan.node_down("reg", 1.0)
        assert plan.registry_down("reg", 1.0)
        assert not plan.node_down("reg", 2.0)
