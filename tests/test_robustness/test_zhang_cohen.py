"""Tests for the Zhang & Cohen personalized defense."""

import pytest

from repro.common.errors import ConfigurationError
from repro.robustness.zhang_cohen import ZhangCohenDefense

from tests.conftest import feedback


def build_marketplace(defense=None):
    """Buyer trades with two sellers; two advisors comment, one lies."""
    d = defense or ZhangCohenDefense(window=10.0)
    # Buyer's own experience: seller-good is great, seller-bad is awful.
    for t in range(5):
        d.record_own(feedback(rater="buyer", target="seller-good",
                              time=float(t), rating=0.9))
        d.record_own(feedback(rater="buyer", target="seller-bad",
                              time=float(t), rating=0.1))
    # Honest advisor mirrors reality; liar inverts it.
    for t in range(5):
        d.record_advice(feedback(rater="honest", target="seller-good",
                                 time=float(t), rating=0.85))
        d.record_advice(feedback(rater="honest", target="seller-bad",
                                 time=float(t), rating=0.15))
        d.record_advice(feedback(rater="liar", target="seller-good",
                                 time=float(t), rating=0.1))
        d.record_advice(feedback(rater="liar", target="seller-bad",
                                 time=float(t), rating=0.9))
    return d


class TestPrivateCredibility:
    def test_honest_advisor_high(self):
        d = build_marketplace()
        cred, evidence = d.private_credibility("buyer", "honest")
        assert cred > 0.8
        assert evidence == 10

    def test_liar_low(self):
        d = build_marketplace()
        cred, _ = d.private_credibility("buyer", "liar")
        assert cred < 0.2

    def test_no_shared_sellers_neutral(self):
        d = ZhangCohenDefense()
        d.record_advice(feedback(rater="advisor", target="s", rating=0.9))
        cred, evidence = d.private_credibility("buyer", "advisor")
        assert cred == 0.5 and evidence == 0

    def test_window_excludes_distant_ratings(self):
        d = ZhangCohenDefense(window=1.0)
        d.record_own(feedback(rater="buyer", target="s", time=0.0,
                              rating=0.9))
        d.record_advice(feedback(rater="advisor", target="s", time=100.0,
                                 rating=0.1))
        _, evidence = d.private_credibility("buyer", "advisor")
        assert evidence == 0


class TestPublicCredibility:
    def test_consensus_agreement(self):
        d = ZhangCohenDefense()
        for i in range(4):
            d.record_advice(feedback(rater=f"a{i}", target="s", rating=0.8))
        d.record_advice(feedback(rater="outlier", target="s", rating=0.1))
        assert d.public_credibility("a0") > d.public_credibility("outlier")


class TestRobustScore:
    def test_liar_cannot_flip_unknown_seller(self):
        d = build_marketplace()
        # New seller: buyer has no experience; honest says good (0.8),
        # liar says bad (0.1).
        for t in range(3):
            d.record_advice(feedback(rater="honest", target="new-seller",
                                     time=float(t), rating=0.8))
            d.record_advice(feedback(rater="liar", target="new-seller",
                                     time=float(t), rating=0.1))
        assert d.robust_score("buyer", "new-seller") > 0.6

    def test_own_experience_dominates_with_enough_data(self):
        d = build_marketplace()
        assert d.robust_score("buyer", "seller-good") > 0.8
        assert d.robust_score("buyer", "seller-bad") < 0.2

    def test_nothing_known_is_neutral(self):
        assert ZhangCohenDefense().robust_score("b", "s") == 0.5

    def test_record_convenience_feeds_both(self):
        d = ZhangCohenDefense()
        d.record(feedback(rater="x", target="s", rating=0.9))
        assert d.robust_score("x", "s") == pytest.approx(0.9)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ZhangCohenDefense(window=0.0)
        with pytest.raises(ConfigurationError):
            ZhangCohenDefense(agreement_tolerance=0.0)
        with pytest.raises(ConfigurationError):
            ZhangCohenDefense(min_private=0)
