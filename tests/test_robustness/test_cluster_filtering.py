"""Tests for Dellarocas cluster filtering."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError
from repro.robustness.cluster_filtering import (
    ClusterFilter,
    FilterMode,
    two_means_split,
)

from tests.conftest import feedback_series


class TestTwoMeansSplit:
    def test_clear_separation(self):
        values = [0.1, 0.15, 0.2, 0.9, 0.95]
        low, high, low_c, high_c = two_means_split(values)
        assert sorted(low) == [0, 1, 2]
        assert sorted(high) == [3, 4]
        assert low_c < 0.3 and high_c > 0.8

    def test_degenerate_all_equal(self):
        low, high, low_c, high_c = two_means_split([0.5, 0.5, 0.5])
        assert high == []
        assert low_c == high_c == 0.5

    def test_single_point(self):
        low, high, _, _ = two_means_split([0.7])
        assert low == [0] and high == []

    @given(st.lists(st.floats(0.0, 1.0), min_size=2, max_size=30))
    def test_property_partition(self, values):
        low, high, _, _ = two_means_split(values)
        assert sorted(low + high) == list(range(len(values)))


class TestClusterFilter:
    def test_ballot_stuffers_dropped(self):
        honest = feedback_series("s", [0.3, 0.35, 0.3, 0.25, 0.32, 0.28])
        stuffers = feedback_series("s", [0.95, 0.98], rater_prefix="liar")
        cf = ClusterFilter(mode=FilterMode.HIGH)
        report = cf.filter(honest + stuffers)
        assert len(report.dropped) == 2
        assert all(fb.rating > 0.9 for fb in report.dropped)

    def test_badmouthers_dropped(self):
        honest = feedback_series("s", [0.8, 0.85, 0.8, 0.75, 0.82, 0.78])
        trolls = feedback_series("s", [0.05, 0.02], rater_prefix="liar")
        cf = ClusterFilter(mode=FilterMode.LOW)
        report = cf.filter(honest + trolls)
        assert len(report.dropped) == 2
        assert all(fb.rating < 0.1 for fb in report.dropped)

    def test_honest_variance_untouched(self):
        # Mild spread, no separated bloc: nothing must be dropped.
        honest = feedback_series("s", [0.6, 0.65, 0.7, 0.72, 0.68, 0.63])
        report = ClusterFilter().filter(honest)
        assert report.dropped == []

    def test_majority_cluster_never_dropped(self):
        # The "unfair" side is the majority: the filter must refuse.
        ratings = [0.9] * 8 + [0.2] * 2
        report = ClusterFilter(mode=FilterMode.HIGH).filter(
            feedback_series("s", ratings)
        )
        dropped_high = [fb for fb in report.dropped if fb.rating > 0.5]
        assert dropped_high == []

    def test_min_ratings_gate(self):
        cf = ClusterFilter(min_ratings=5)
        report = cf.filter(feedback_series("s", [0.1, 0.9, 0.95]))
        assert report.dropped == []

    def test_filtered_mean_defends_score(self):
        honest = feedback_series("s", [0.3, 0.32, 0.28, 0.31, 0.3, 0.29])
        stuffers = feedback_series("s", [0.95] * 3, rater_prefix="liar")
        cf = ClusterFilter(mode=FilterMode.HIGH, max_minority=0.4)
        defended = cf.filtered_mean(honest + stuffers)
        naive = sum(fb.rating for fb in honest + stuffers) / 9
        assert abs(defended - 0.3) < 0.05
        assert naive > defended

    def test_both_mode_picks_minority_side(self):
        honest = feedback_series("s", [0.5, 0.52, 0.48, 0.51, 0.5, 0.49])
        trolls = feedback_series("s", [0.02, 0.05], rater_prefix="liar")
        report = ClusterFilter(mode=FilterMode.BOTH).filter(honest + trolls)
        assert len(report.dropped) == 2
        assert report.drop_fraction == pytest.approx(0.25)

    def test_empty_input(self):
        assert ClusterFilter().filtered_mean([]) == 0.5

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ClusterFilter(separation_threshold=0.0)
        with pytest.raises(ConfigurationError):
            ClusterFilter(max_minority=0.6)
        with pytest.raises(ConfigurationError):
            ClusterFilter(min_ratings=1)

    @given(st.lists(st.floats(0.0, 1.0), min_size=0, max_size=40))
    def test_property_conservative_partition(self, ratings):
        fbs = feedback_series("s", ratings)
        report = ClusterFilter().filter(fbs)
        assert len(report.kept) + len(report.dropped) == len(fbs)
        # Never drop more than half.
        if fbs:
            assert len(report.dropped) <= len(fbs) / 2
