"""Tests for attack strategies."""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.records import Interaction
from repro.robustness.attacks import (
    AttackPlan,
    badmouth_strategy,
    ballot_stuffing_strategy,
    collusion_strategy,
    complementary_liar_strategy,
    random_liar_strategy,
)
from repro.services.consumer import Consumer


def interaction(service="svc", success=True):
    return Interaction(
        consumer="c0", service=service, provider="p0", time=0.0,
        success=success, observations={"speed": 0.8} if success else {},
    )


HONEST = {"speed": 0.8, "cost": 0.6}


class TestBadmouth:
    def test_victims_trashed(self):
        strategy = badmouth_strategy(victims=["victim"], low=0.05)
        consumer = Consumer("liar", rating_strategy=strategy, rng=0)
        out = strategy(consumer, interaction("victim"), dict(HONEST))
        assert all(v == 0.05 for v in out.values())

    def test_non_victims_honest(self):
        strategy = badmouth_strategy(victims=["victim"])
        out = strategy(None, interaction("innocent"), dict(HONEST))
        assert out == HONEST

    def test_default_trashes_everyone(self):
        strategy = badmouth_strategy()
        out = strategy(None, interaction("anything"), dict(HONEST))
        assert all(v == 0.05 for v in out.values())


class TestBallotStuffing:
    def test_allies_praised(self):
        strategy = ballot_stuffing_strategy(allies=["ally"], high=0.95)
        out = strategy(None, interaction("ally"), dict(HONEST))
        assert all(v == 0.95 for v in out.values())

    def test_failed_ally_invocation_still_praised(self):
        strategy = ballot_stuffing_strategy(allies=["ally"])
        out = strategy(None, interaction("ally", success=False), {})
        assert out == {"overall": 0.95}

    def test_others_honest(self):
        strategy = ballot_stuffing_strategy(allies=["ally"])
        out = strategy(None, interaction("other"), dict(HONEST))
        assert out == HONEST

    def test_needs_allies(self):
        with pytest.raises(ConfigurationError):
            ballot_stuffing_strategy(allies=[])


class TestCollusion:
    def test_allies_up_others_down(self):
        strategy = collusion_strategy(allies=["ally"])
        up = strategy(None, interaction("ally"), dict(HONEST))
        down = strategy(None, interaction("rival"), dict(HONEST))
        assert all(v == 0.95 for v in up.values())
        assert all(v == 0.05 for v in down.values())


class TestComplementaryLiar:
    def test_inverts(self):
        strategy = complementary_liar_strategy()
        out = strategy(None, interaction(), {"speed": 0.8})
        assert out == {"speed": pytest.approx(0.2)}


class TestRandomLiar:
    def test_zero_probability_is_honest(self):
        strategy = random_liar_strategy(lie_probability=0.0, rng=0)
        assert strategy(None, interaction(), dict(HONEST)) == HONEST

    def test_certain_liar_randomizes(self):
        strategy = random_liar_strategy(lie_probability=1.0, rng=0)
        out = strategy(None, interaction(), dict(HONEST))
        assert set(out) == set(HONEST)
        assert out != HONEST

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            random_liar_strategy(lie_probability=1.5)


class TestAttackPlan:
    def test_liar_fraction_selects_deterministically(self):
        consumers = [Consumer(f"c{i}", rng=0) for i in range(10)]
        plan = AttackPlan(
            liar_fraction=0.3,
            strategy_factory=lambda: badmouth_strategy(),
        )
        liars = plan.apply(consumers)
        assert [c.consumer_id for c in liars] == ["c0", "c1", "c2"]

    def test_no_strategy_no_liars(self):
        consumers = [Consumer(f"c{i}", rng=0) for i in range(5)]
        assert AttackPlan(liar_fraction=0.5).apply(consumers) == []

    def test_sybil_minting(self):
        plan = AttackPlan(sybil_count=3)
        ids = plan.mint_sybils()
        assert ids == ["sybil-000", "sybil-001", "sybil-002"]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AttackPlan(liar_fraction=1.5)
        with pytest.raises(ConfigurationError):
            AttackPlan(sybil_count=-1)
