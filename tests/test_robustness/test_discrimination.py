"""Tests for discriminatory-behaviour detection."""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.records import Feedback
from repro.robustness.discrimination import DiscriminationDetector


def fb(rater, target="seller", rating=0.8, time=0.0):
    return Feedback(rater=rater, target=target, time=time, rating=rating)


def discriminating_feedback(favoured=6, disfavoured=4, reports=3):
    """A seller serving 'in-crowd' raters 0.9 and the others 0.2."""
    out = []
    t = 0.0
    for i in range(favoured):
        for _ in range(reports):
            out.append(fb(f"in-{i}", rating=0.9, time=t))
            t += 1.0
    for i in range(disfavoured):
        for _ in range(reports):
            out.append(fb(f"out-{i}", rating=0.2, time=t))
            t += 1.0
    return out


def fair_feedback(n=10, reports=3, level=0.7):
    out = []
    t = 0.0
    for i in range(n):
        for k in range(reports):
            out.append(fb(f"r-{i}", rating=level + 0.02 * (k % 3), time=t))
            t += 1.0
    return out


class TestScreening:
    def test_discrimination_detected(self):
        detector = DiscriminationDetector()
        report = detector.screen("seller", discriminating_feedback())
        assert report.discriminating
        assert set(report.favoured) == {f"in-{i}" for i in range(6)}
        assert set(report.disfavoured) == {f"out-{i}" for i in range(4)}
        assert report.gap > 0.5

    def test_fair_provider_not_flagged(self):
        detector = DiscriminationDetector()
        report = detector.screen("seller", fair_feedback())
        assert not report.discriminating

    def test_single_outlier_not_discrimination(self):
        feedbacks = fair_feedback(n=9)
        feedbacks += [fb("grump", rating=0.05, time=99.0)] * 3
        report = DiscriminationDetector(min_group_fraction=0.2).screen(
            "seller", feedbacks
        )
        assert not report.discriminating

    def test_too_few_raters_not_judged(self):
        detector = DiscriminationDetector(min_raters=6)
        feedbacks = discriminating_feedback(favoured=2, disfavoured=2)
        assert not detector.screen("seller", feedbacks).discriminating

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DiscriminationDetector(separation_threshold=0.0)
        with pytest.raises(ConfigurationError):
            DiscriminationDetector(min_group_fraction=0.6)
        with pytest.raises(ConfigurationError):
            DiscriminationDetector(min_raters=1)


class TestPersonalizedScore:
    def test_disfavoured_member_sees_their_truth(self):
        detector = DiscriminationDetector()
        feedbacks = discriminating_feedback()
        score = detector.personalized_score("out-0", "seller", feedbacks)
        assert score == pytest.approx(0.2, abs=0.05)

    def test_favoured_member_sees_their_truth(self):
        detector = DiscriminationDetector()
        feedbacks = discriminating_feedback()
        score = detector.personalized_score("in-0", "seller", feedbacks)
        assert score == pytest.approx(0.9, abs=0.05)

    def test_stranger_gets_conservative_reading(self):
        detector = DiscriminationDetector()
        feedbacks = discriminating_feedback()
        score = detector.personalized_score("nobody", "seller", feedbacks)
        assert score == pytest.approx(0.2, abs=0.05)

    def test_flat_average_would_mislead(self):
        # The point of the defense: the naive mean (0.62) tells the
        # disfavoured group the seller is decent; it is not, for them.
        detector = DiscriminationDetector()
        feedbacks = discriminating_feedback()
        naive = sum(f.rating for f in feedbacks) / len(feedbacks)
        personalized = detector.personalized_score("out-0", "seller",
                                                   feedbacks)
        assert naive > 0.5
        assert personalized < 0.3

    def test_fair_provider_scores_mean_for_everyone(self):
        detector = DiscriminationDetector()
        feedbacks = fair_feedback(level=0.7)
        for who in ["r-0", "stranger"]:
            assert detector.personalized_score(
                who, "seller", feedbacks
            ) == pytest.approx(0.72, abs=0.03)
