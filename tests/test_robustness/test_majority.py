"""Tests for Sen & Sajja majority-opinion robustness."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError
from repro.robustness.majority import (
    MajorityOpinion,
    majority_correct_probability,
    required_witnesses,
)

from tests.conftest import feedback, feedback_series


class TestMajorityCorrectProbability:
    def test_no_liars_always_correct(self):
        assert majority_correct_probability(5, 0.0) == pytest.approx(1.0)

    def test_all_liars_never_correct(self):
        assert majority_correct_probability(5, 1.0) == pytest.approx(0.0)

    def test_single_witness(self):
        assert majority_correct_probability(1, 0.3) == pytest.approx(0.7)

    def test_more_witnesses_help_below_half(self):
        p3 = majority_correct_probability(3, 0.3)
        p11 = majority_correct_probability(11, 0.3)
        p101 = majority_correct_probability(101, 0.3)
        assert p3 < p11 < p101

    def test_more_witnesses_hurt_above_half(self):
        p3 = majority_correct_probability(3, 0.7)
        p101 = majority_correct_probability(101, 0.7)
        assert p101 < p3

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            majority_correct_probability(0, 0.3)
        with pytest.raises(ConfigurationError):
            majority_correct_probability(5, 1.5)

    @given(st.integers(1, 50), st.floats(0.0, 1.0))
    def test_property_is_probability(self, n, p):
        assert 0.0 <= majority_correct_probability(n, p) <= 1.0


class TestRequiredWitnesses:
    def test_minimum_satisfies_confidence(self):
        n = required_witnesses(0.2, confidence=0.95)
        assert majority_correct_probability(n, 0.2) >= 0.95
        if n > 2:
            assert majority_correct_probability(n - 2, 0.2) < 0.95

    def test_grows_with_liar_fraction(self):
        assert required_witnesses(0.4, 0.9) > required_witnesses(0.1, 0.9)

    def test_unreachable_above_half(self):
        assert required_witnesses(0.5) is None
        assert required_witnesses(0.7) is None

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            required_witnesses(0.3, confidence=1.0)


class TestMajorityOpinion:
    def test_majority_verdict(self):
        mo = MajorityOpinion()
        fbs = feedback_series("s", [0.9, 0.8, 0.9, 0.1, 0.2])
        assert mo.verdict(fbs) is True
        assert mo.score(fbs) == 1.0

    def test_one_opinion_per_witness(self):
        mo = MajorityOpinion()
        # One enthusiastic liar repeating itself must count once.
        fbs = [
            feedback(rater="liar", target="s", time=float(t), rating=0.9)
            for t in range(10)
        ] + feedback_series("s", [0.1, 0.2, 0.15])
        assert mo.verdict(fbs) is False

    def test_latest_opinion_per_witness(self):
        mo = MajorityOpinion()
        fbs = [
            feedback(rater="w", target="s", time=0.0, rating=0.9),
            feedback(rater="w", target="s", time=5.0, rating=0.1),
        ]
        assert mo.verdict(fbs) is False

    def test_tie_is_undecided(self):
        mo = MajorityOpinion()
        fbs = feedback_series("s", [0.9, 0.1])
        assert mo.verdict(fbs) is None
        assert mo.score(fbs) == 0.5

    def test_empty_is_undecided(self):
        assert MajorityOpinion().verdict([]) is None

    def test_witness_budget(self):
        mo = MajorityOpinion(max_witnesses=3)
        fbs = feedback_series("s", [0.9, 0.9, 0.9, 0.1, 0.1, 0.1, 0.1])
        assert len(mo.opinions(fbs)) == 3

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MajorityOpinion(max_witnesses=0)
