"""Tests for provider-reputation backoff."""

import pytest

from repro.models.provider_backoff import ProviderBackoffModel

from tests.conftest import feedback, feedback_series


class TestProviderBackoff:
    def test_new_service_inherits_provider_reputation(self):
        model = ProviderBackoffModel({"old-svc": "acme", "new-svc": "acme"})
        model.record_many(feedback_series("old-svc", [0.9] * 10))
        # new-svc has zero evidence: score == provider reputation.
        assert model.score("new-svc") == pytest.approx(
            model.provider_reputation("acme")
        )
        assert model.score("new-svc") > 0.7

    def test_unmapped_service_scores_on_own_evidence(self):
        model = ProviderBackoffModel({})
        model.record_many(feedback_series("solo", [0.8] * 5))
        assert model.score("solo") == pytest.approx(
            model.service_model.score("solo")
        )

    def test_own_evidence_overrides_provider_with_volume(self):
        model = ProviderBackoffModel({"good": "acme", "lemon": "acme"})
        model.record_many(feedback_series("good", [0.9] * 20))
        # The lemon is bad despite its reputable provider.
        model.record_many(feedback_series("lemon", [0.1] * 30))
        assert model.score("lemon") < 0.35

    def test_blend_moves_from_provider_to_service(self):
        model = ProviderBackoffModel({"svc": "acme", "flagship": "acme"})
        model.record_many(feedback_series("flagship", [0.9] * 10))
        trajectory = [model.score("svc")]
        for i in range(10):
            model.record(feedback(rater=f"c{i}", target="svc",
                                  time=float(i), rating=0.2))
            trajectory.append(model.score("svc"))
        # Monotonically descending from provider level to own level.
        assert trajectory[0] > 0.7
        assert trajectory[-1] < 0.4
        assert all(a >= b - 1e-9 for a, b in zip(trajectory, trajectory[1:]))

    def test_register_service(self):
        mapping = {}
        model = ProviderBackoffModel(mapping)
        model.register_service("svc", "acme")
        assert mapping == {"svc": "acme"}

    def test_provider_reputation_pools_all_services(self):
        model = ProviderBackoffModel({"a": "acme", "b": "acme"})
        model.record_many(feedback_series("a", [0.9] * 5))
        model.record_many(feedback_series("b", [0.5] * 5))
        rep = model.provider_reputation("acme")
        assert 0.5 < rep < 0.9
