"""Tests for the Yolum & Singh referral-network model."""

import pytest

from repro.common.errors import ConfigurationError
from repro.models.yolum_singh import YolumSinghModel
from repro.p2p.referral import ReferralNetwork

from tests.conftest import feedback


def build_model(n_agents=15, seed=0, **kwargs):
    network = ReferralNetwork(degree=4, branching=3, rng=seed)
    model = YolumSinghModel(network=network, **kwargs)
    for i in range(n_agents):
        model.ensure_agent(f"agent-{i:02d}")
    return model


class TestRecording:
    def test_record_auto_joins_rater(self):
        model = YolumSinghModel(rng=0)
        model.record(feedback(rater="newcomer", target="svc", rating=0.9))
        assert len(model.network) == 1

    def test_experience_stored_at_rater(self):
        model = build_model()
        model.record(feedback(rater="agent-03", target="svc", rating=0.9))
        assert len(model.network.agent("agent-03").store.for_target("svc")) == 1


class TestScoring:
    def test_witness_opinion_found_through_referrals(self):
        model = build_model(n_agents=15, seed=1, depth_limit=6)
        for t in range(3):
            model.record(feedback(rater="agent-07", target="svc",
                                  rating=0.9, time=float(t)))
        score = model.score("svc", perspective="agent-00")
        assert score > 0.6

    def test_own_experience_counts_fully(self):
        model = build_model(seed=2)
        for t in range(5):
            model.record(feedback(rater="agent-00", target="svc",
                                  rating=0.9, time=float(t)))
        assert model.score("svc", perspective="agent-00") > 0.8

    def test_no_information_is_neutral(self):
        model = build_model(seed=3)
        assert model.score("mystery", perspective="agent-00") == 0.5

    def test_global_score_averages_experiences(self):
        model = build_model(seed=4)
        model.record(feedback(rater="agent-01", target="svc", rating=0.9))
        model.record(feedback(rater="agent-02", target="svc", rating=0.3))
        assert model.score("svc") == pytest.approx(0.6)

    def test_chain_discount_weakens_remote_witnesses(self):
        near = build_model(seed=5, chain_discount=1.0, depth_limit=6)
        far = build_model(seed=5, chain_discount=0.3, depth_limit=6)
        for model in (near, far):
            for t in range(3):
                model.record(feedback(rater="agent-10", target="svc",
                                      rating=1.0, time=float(t)))
        # Both find the witness; the discounted one trusts it less...
        # but both stay on the same side of neutral.
        assert near.score("svc", perspective="agent-00") >= far.score(
            "svc", perspective="agent-00"
        ) - 1e-9

    def test_adaptation_reinforces_useful_witnesses(self):
        model = build_model(seed=6, adapt=True, depth_limit=6)
        for t in range(3):
            model.record(feedback(rater="agent-08", target="svc",
                                  rating=0.95, time=float(t)))
        before = model.network.weight("agent-00", "agent-08")
        model.score("svc", perspective="agent-00")
        after = model.network.weight("agent-00", "agent-08")
        assert after >= before

    def test_message_accounting(self):
        model = build_model(seed=7)
        model.record(feedback(rater="agent-05", target="svc", rating=0.9))
        model.score("svc", perspective="agent-00")
        assert model.queries_issued == 1
        assert model.messages_used > 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            YolumSinghModel(depth_limit=-1)
        with pytest.raises(ConfigurationError):
            YolumSinghModel(chain_discount=0.0)
