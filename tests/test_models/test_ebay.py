"""Tests for the eBay feedback model."""

import pytest

from repro.common.errors import ConfigurationError
from repro.models.ebay import EbayModel

from tests.conftest import feedback, feedback_series


class TestTernarization:
    def test_signs(self):
        model = EbayModel()
        model.record(feedback(rater="a", target="s", rating=0.9))  # +
        model.record(feedback(rater="b", target="s", rating=0.5))  # 0
        model.record(feedback(rater="c", target="s", rating=0.1))  # -
        summary = model.summary("s")
        assert (summary.positives, summary.neutrals, summary.negatives) == (
            1, 1, 1,
        )
        assert summary.score == 0

    def test_thresholds_validated(self):
        with pytest.raises(ConfigurationError):
            EbayModel(positive_threshold=0.2, negative_threshold=0.4)


class TestSummary:
    def test_score_is_signed_sum(self):
        model = EbayModel()
        model.record_many(feedback_series("s", [0.9] * 7 + [0.1] * 2))
        assert model.summary("s").score == 5

    def test_positive_percentage(self):
        model = EbayModel()
        model.record_many(feedback_series("s", [0.9] * 3 + [0.1] * 1))
        assert model.summary("s").positive_percentage == 75.0

    def test_positive_percentage_ignores_neutrals(self):
        model = EbayModel()
        model.record_many(feedback_series("s", [0.9, 0.5, 0.5]))
        assert model.summary("s").positive_percentage == 100.0

    def test_empty_summary(self):
        summary = EbayModel().summary("nobody")
        assert summary.score == 0
        assert summary.positive_percentage == 100.0

    def test_window_view(self):
        model = EbayModel()
        model.record(feedback(rater="a", target="s", time=0.0, rating=0.1))
        model.record(feedback(rater="b", target="s", time=90.0, rating=0.9))
        recent = model.summary("s", window=30.0, now=100.0)
        assert recent.positives == 1 and recent.negatives == 0
        alltime = model.summary("s")
        assert alltime.negatives == 1

    def test_window_requires_now(self):
        model = EbayModel()
        with pytest.raises(ConfigurationError):
            model.summary("s", window=10.0)


class TestScore:
    def test_no_feedback_is_half(self):
        assert EbayModel().score("s") == 0.5

    def test_score_in_unit_interval(self):
        model = EbayModel()
        model.record_many(feedback_series("s", [0.9] * 100))
        assert 0.5 < model.score("s") <= 1.0

    def test_good_above_bad(self):
        model = EbayModel()
        model.record_many(feedback_series("good", [0.9] * 10))
        model.record_many(feedback_series("bad", [0.1] * 10))
        assert model.score("good") > model.score("bad")

    def test_typology_matches_paper(self):
        from repro.core.typology import (
            Architecture, PAPER_FIGURE_4, Scope, Subject,
        )
        assert EbayModel.typology == PAPER_FIGURE_4["ebay"]
        assert EbayModel.typology.architecture is Architecture.CENTRALIZED
        assert EbayModel.typology.subject is Subject.PERSON_AGENT
        assert EbayModel.typology.scope is Scope.GLOBAL
