"""Tests for EigenTrust (central and distributed variants)."""

import math

import pytest

from repro.common.errors import ConfigurationError
from repro.models.eigentrust import DistributedEigenTrust, EigenTrustModel
from repro.p2p.dht import ChordDHT

from tests.conftest import feedback


def honest_community(model, peers=("a", "b", "c", "d"), rounds=5):
    """Everyone satisfies everyone."""
    t = 0.0
    for _ in range(rounds):
        for i in peers:
            for j in peers:
                if i != j:
                    model.record(feedback(rater=i, target=j, rating=0.9,
                                          time=t))
                    t += 1.0


class TestEigenTrust:
    def test_trust_sums_to_one(self):
        model = EigenTrustModel(pre_trusted=["a"])
        honest_community(model)
        trust = model.compute()
        assert math.isclose(sum(trust.values()), 1.0, rel_tol=1e-6)

    def test_uniform_community_near_uniform_trust(self):
        model = EigenTrustModel(pre_trusted=["a"], alpha=0.1)
        honest_community(model)
        trust = model.compute()
        values = [trust[p] for p in "abcd"]
        assert max(values) - min(values) < 0.2

    def test_malicious_peer_gets_low_trust(self):
        model = EigenTrustModel(pre_trusted=["a"], alpha=0.2)
        honest_community(model)
        # Everyone is dissatisfied with "mal".
        for i in "abcd":
            for t in range(5):
                model.record(feedback(rater=i, target="mal", rating=0.1,
                                      time=float(t)))
        trust = model.compute()
        assert trust["mal"] < min(trust[p] for p in "abcd")

    def test_collusion_ring_suppressed_by_pretrusted(self):
        # Ring members rate only each other highly; honest peers rate
        # each other and never the ring.  With a pre-trusted prior the
        # disconnected ring receives no mass; with a uniform prior (no
        # pre-trusted peers) it keeps amplifying itself.
        def build(pre_trusted, alpha):
            model = EigenTrustModel(pre_trusted=pre_trusted, alpha=alpha)
            honest_community(model)
            for t in range(20):
                model.record(feedback(rater="ring1", target="ring2",
                                      rating=1.0, time=float(t)))
                model.record(feedback(rater="ring2", target="ring1",
                                      rating=1.0, time=float(t)))
            return model.compute()

        robust = build(pre_trusted=["a", "b"], alpha=0.3)
        fragile = build(pre_trusted=[], alpha=0.1)
        ring_share_robust = robust["ring1"] + robust["ring2"]
        ring_share_fragile = fragile["ring1"] + fragile["ring2"]
        assert ring_share_robust < ring_share_fragile
        assert ring_share_robust < 0.05

    def test_local_trust_normalized(self):
        model = EigenTrustModel()
        model.record(feedback(rater="a", target="b", rating=0.9))
        model.record(feedback(rater="a", target="c", rating=0.9))
        row_sum = model.local_trust("a", "b") + model.local_trust("a", "c")
        assert row_sum == pytest.approx(1.0)

    def test_unsatisfactory_clipped_to_zero(self):
        model = EigenTrustModel()
        model.record(feedback(rater="a", target="b", rating=0.1))
        model.record(feedback(rater="a", target="c", rating=0.9))
        assert model.local_trust("a", "b") == 0.0
        assert model.local_trust("a", "c") == 1.0

    def test_score_normalized_to_top(self):
        model = EigenTrustModel(pre_trusted=["a"])
        honest_community(model)
        scores = [model.score(p) for p in "abcd"]
        assert max(scores) == 1.0

    def test_empty_model(self):
        assert EigenTrustModel().score("x") == 0.5

    def test_dense_matches_sparse_compute(self):
        model = EigenTrustModel(pre_trusted=["a"], alpha=0.15)
        honest_community(model)
        for t in range(5):
            model.record(feedback(rater="a", target="mal", rating=0.1,
                                  time=float(t)))
        sparse = model.compute()
        dense = model.compute_dense()
        for peer, value in sparse.items():
            assert dense[peer] == pytest.approx(value, abs=1e-8)

    def test_dense_empty_model(self):
        assert EigenTrustModel().compute_dense() == {}

    def test_dense_scales_to_hundreds_of_peers(self):
        import numpy as np

        rng = np.random.default_rng(0)
        model = EigenTrustModel(pre_trusted=["p000"], alpha=0.1)
        peers = [f"p{i:03d}" for i in range(200)]
        for i, rater in enumerate(peers):
            for _ in range(5):
                target = peers[int(rng.integers(0, 200))]
                if target == rater:
                    continue
                model.record(feedback(
                    rater=rater, target=target,
                    rating=float(rng.uniform(0.4, 1.0)), time=float(i),
                ))
        trust = model.compute_dense()
        assert len(trust) == 200
        assert abs(sum(trust.values()) - 1.0) < 1e-6

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            EigenTrustModel(alpha=1.5)


class TestDistributedEigenTrust:
    def test_matches_centralized_fixed_point(self):
        central = EigenTrustModel(pre_trusted=["a"], alpha=0.15)
        honest_community(central)
        for t in range(5):
            central.record(feedback(rater="a", target="mal", rating=0.1,
                                    time=float(t)))
        expected = central.compute()

        dht = ChordDHT(["a", "b", "c", "d", "mal"], bits=16)
        distributed = DistributedEigenTrust(central, dht)
        result = distributed.run(rounds=50)
        for peer, value in expected.items():
            assert result[peer] == pytest.approx(value, abs=0.02)

    def test_messages_are_counted(self):
        model = EigenTrustModel(pre_trusted=["a"])
        honest_community(model)
        dht = ChordDHT(["a", "b", "c", "d"], bits=16)
        distributed = DistributedEigenTrust(model, dht)
        distributed.run(rounds=3)
        assert distributed.messages_used > 0
        assert distributed.rounds_run == 3

    def test_redundant_managers_same_fixed_point(self):
        model = EigenTrustModel(pre_trusted=["a"], alpha=0.15)
        honest_community(model)
        dht = ChordDHT(["a", "b", "c", "d"], bits=16)
        single = DistributedEigenTrust(model, dht).run(rounds=30)
        dht2 = ChordDHT(["a", "b", "c", "d"], bits=16)
        triple = DistributedEigenTrust(model, dht2, n_managers=3).run(
            rounds=30
        )
        for peer in single:
            assert triple[peer] == pytest.approx(single[peer], abs=0.01)

    def test_query_trust_median_defeats_one_lying_manager(self):
        model = EigenTrustModel(pre_trusted=["a"], alpha=0.15)
        honest_community(model)
        peers = ["a", "b", "c", "d"]
        dht = ChordDHT(peers, bits=16)
        distributed = DistributedEigenTrust(model, dht, n_managers=3)
        trust = distributed.run(rounds=20)
        honest_answer = distributed.query_trust("a", "b")
        assert honest_answer == pytest.approx(trust["b"], abs=1e-6)
        # Compromise ONE of b's three managers: it claims b is god.
        key = distributed.manager_keys("b")[0]
        owner = dht.responsible_node(key)
        dht.node(owner).store[key] = [999.0]
        tampered_answer = distributed.query_trust("a", "b")
        assert tampered_answer == pytest.approx(trust["b"], abs=1e-6)

    def test_single_manager_is_vulnerable(self):
        model = EigenTrustModel(pre_trusted=["a"], alpha=0.15)
        honest_community(model)
        peers = ["a", "b", "c", "d"]
        dht = ChordDHT(peers, bits=16)
        distributed = DistributedEigenTrust(model, dht, n_managers=1)
        trust = distributed.run(rounds=20)
        key = distributed.manager_keys("b")[0]
        owner = dht.responsible_node(key)
        dht.node(owner).store[key] = [999.0]
        assert distributed.query_trust("a", "b") == 999.0

    def test_rerun_is_idempotent(self):
        # A second run must not be polluted by the first run's
        # published final values sitting in the manager mailboxes.
        model = EigenTrustModel(pre_trusted=["a"], alpha=0.15)
        honest_community(model)
        dht = ChordDHT(["a", "b", "c", "d"], bits=16)
        distributed = DistributedEigenTrust(model, dht)
        first = distributed.run(rounds=25)
        second = distributed.run(rounds=25)
        for peer in first:
            assert second[peer] == pytest.approx(first[peer], abs=1e-9)

    def test_n_managers_validated(self):
        model = EigenTrustModel()
        dht = ChordDHT(["a"], bits=16)
        with pytest.raises(Exception):
            DistributedEigenTrust(model, dht, n_managers=0)


class TestIncrementalCache:
    """The dirty-flag cache must be invisible except in speed."""

    def test_version_bumps_on_record(self):
        model = EigenTrustModel()
        v0 = model.version
        model.record(feedback(rater="a", target="b", rating=0.9))
        assert model.version == v0 + 1
        model.record(feedback(rater="a", target="b", rating=0.2))
        assert model.version == v0 + 2

    def test_dense_matches_scalar_reference_interleaved(self):
        model = EigenTrustModel(pre_trusted=["a"], alpha=0.15)
        peers = ["a", "b", "c", "d", "e"]
        for i in range(120):
            model.record(feedback(rater=peers[i % 5],
                                  target=peers[(i + 1 + i // 7) % 5],
                                  rating=(i % 10) / 10.0, time=float(i)))
            if i % 11 == 0:
                # Interleave queries so the warm-start path is exercised.
                model.score(peers[i % 5])
        dense = model.compute_dense()
        scalar = model.compute()
        for peer in peers:
            assert dense[peer] == pytest.approx(scalar[peer], abs=1e-9)

    def test_warm_start_survives_peer_growth(self):
        model = EigenTrustModel(pre_trusted=["a"], alpha=0.15)
        honest_community(model)
        model.score("b")  # warm the stationary vector
        # New peers join: the index map must rebuild and the warm
        # vector remap without changing any answer.
        model.record(feedback(rater="e", target="f", rating=0.9, time=500.0))
        model.record(feedback(rater="f", target="a", rating=0.9, time=501.0))
        replay = EigenTrustModel(pre_trusted=["a"], alpha=0.15)
        honest_community(replay)
        replay.record(feedback(rater="e", target="f", rating=0.9, time=500.0))
        replay.record(feedback(rater="f", target="a", rating=0.9, time=501.0))
        for peer in ["a", "b", "c", "d", "e", "f"]:
            assert model.score(peer) == pytest.approx(
                replay.score(peer), abs=1e-9
            )

    def test_queries_reuse_cached_vector(self):
        model = EigenTrustModel(pre_trusted=["a"])
        honest_community(model)
        calls = {"n": 0}
        original = model.compute_dense

        def counting():
            calls["n"] += 1
            return original()

        model.compute_dense = counting
        model.score("a")
        model.score("b")
        model.score_many(["a", "b", "c", "never-seen"])
        assert calls["n"] == 1  # one convergence serves every query
        model.record(feedback(rater="a", target="b", rating=0.9, time=999.0))
        model.score("a")
        assert calls["n"] == 2  # feedback dirties the cache exactly once

    def test_alpha_zero_stays_correct(self):
        # alpha=0 has no unique fixed point, so the warm start must be
        # disabled there rather than silently reusing the old vector.
        model = EigenTrustModel(alpha=0.0)
        honest_community(model)
        model.score("a")
        model.record(feedback(rater="b", target="c", rating=0.95, time=600.0))
        replay = EigenTrustModel(alpha=0.0)
        honest_community(replay)
        replay.record(feedback(rater="b", target="c", rating=0.95, time=600.0))
        for peer in ["a", "b", "c", "d"]:
            assert model.score(peer) == pytest.approx(
                replay.score(peer), abs=1e-9
            )
