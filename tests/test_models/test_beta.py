"""Tests for the Beta reputation baseline."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError
from repro.common.records import Feedback
from repro.models.beta import BetaReputation

from tests.conftest import feedback, feedback_series


class TestBetaReputation:
    def test_no_evidence_is_prior(self):
        assert BetaReputation().score("unknown") == 0.5

    def test_positive_evidence_raises_score(self):
        model = BetaReputation()
        model.record_many(feedback_series("svc", [0.9] * 5))
        assert model.score("svc") > 0.7

    def test_negative_evidence_lowers_score(self):
        model = BetaReputation()
        model.record_many(feedback_series("svc", [0.1] * 5))
        assert model.score("svc") < 0.3

    def test_score_converges_to_mean_rating(self):
        model = BetaReputation()
        model.record_many(feedback_series("svc", [0.7] * 200))
        assert model.score("svc") == pytest.approx(0.7, abs=0.01)

    def test_forgetting_factor_prefers_recent(self):
        forgetful = BetaReputation(lam=0.5)
        # Old bad history followed by recent good.
        forgetful.record_many(
            feedback_series("svc", [0.1] * 10 + [0.9] * 5)
        )
        eternal = BetaReputation(lam=1.0)
        eternal.record_many(
            feedback_series("svc", [0.1] * 10 + [0.9] * 5)
        )
        assert forgetful.score("svc") > eternal.score("svc")

    def test_confidence_grows_with_evidence(self):
        model = BetaReputation()
        assert model.confidence("svc") == 0.0
        model.record(feedback(target="svc"))
        low = model.confidence("svc")
        model.record_many(feedback_series("svc", [0.8] * 10))
        assert model.confidence("svc") > low

    def test_evidence_accessor(self):
        model = BetaReputation()
        model.record(feedback(target="svc", rating=1.0))
        alpha, beta = model.evidence("svc")
        assert alpha == 1.0 and beta == 0.0

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            BetaReputation(prior_alpha=0.0)
        with pytest.raises(ConfigurationError):
            BetaReputation(lam=0.0)
        with pytest.raises(ConfigurationError):
            BetaReputation(lam=1.5)

    @given(st.lists(st.floats(0.0, 1.0), max_size=50))
    def test_property_score_bounded(self, ratings):
        model = BetaReputation()
        for i, r in enumerate(ratings):
            model.record(Feedback(rater=f"c{i}", target="svc",
                                  time=float(i), rating=r))
        assert 0.0 <= model.score("svc") <= 1.0

    def test_rank_orders_by_score(self):
        model = BetaReputation()
        model.record_many(feedback_series("good", [0.9] * 5))
        model.record_many(feedback_series("bad", [0.1] * 5))
        ranking = model.rank(["bad", "good", "unknown"])
        assert [st.target for st in ranking] == ["good", "unknown", "bad"]

    def test_best(self):
        model = BetaReputation()
        model.record_many(feedback_series("good", [0.9] * 5))
        assert model.best(["good", "unknown"]) == "good"
        assert model.best([]) is None
