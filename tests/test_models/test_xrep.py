"""Tests for XRep poll-based reputation."""

import pytest

from repro.common.errors import ConfigurationError
from repro.models.xrep import XRepModel
from repro.p2p.unstructured import UnstructuredOverlay

from tests.conftest import feedback


class TestResourceReputation:
    def test_votes_aggregate(self):
        model = XRepModel()
        for i in range(8):
            model.record(feedback(rater=f"v{i}", target="r", rating=0.9))
        assert model.resource_reputation("r") > 0.8

    def test_no_votes_is_half(self):
        assert XRepModel().resource_reputation("r") == 0.5

    def test_cluster_deflation(self):
        # 5 honest distinct-cluster negative votes vs 10 stuffed votes
        # from one cluster: clustering must keep the resource down.
        defended = XRepModel(cluster_weight=0.0)
        naive = XRepModel(cluster_weight=1.0)
        for model in (defended, naive):
            for i in range(5):
                model.record(feedback(rater=f"honest{i}", target="r",
                                      rating=0.1))
            for i in range(10):
                rater = f"sybil{i}"
                model.assign_cluster(rater, "attacker-subnet")
                model.record(feedback(rater=rater, target="r", rating=1.0))
        assert defended.resource_reputation("r") < 0.35
        assert naive.resource_reputation("r") > 0.6

    def test_default_cluster_is_rater_itself(self):
        model = XRepModel(cluster_weight=0.0)
        for i in range(6):
            model.record(feedback(rater=f"v{i}", target="r", rating=0.9))
        # Distinct raters = distinct clusters: no deflation.
        assert model.resource_reputation("r") > 0.8


class TestServentBlend:
    def test_ill_reputed_servent_taints_resource(self):
        model = XRepModel(servent_blend=0.5)
        model.register_offer("file", "shady-servent")
        for i in range(5):
            model.record(feedback(rater=f"v{i}", target="file", rating=0.9))
            model.record(feedback(rater=f"w{i}", target="shady-servent",
                                  rating=0.1))
        blended = model.score("file")
        pure = model.resource_reputation("file")
        assert blended < pure

    def test_no_offers_scores_resource_alone(self):
        model = XRepModel(servent_blend=0.5)
        for i in range(5):
            model.record(feedback(rater=f"v{i}", target="file", rating=0.9))
        assert model.score("file") == model.resource_reputation("file")

    def test_register_offer_idempotent(self):
        model = XRepModel()
        model.register_offer("f", "s")
        model.register_offer("f", "s")
        assert model._offered_by["f"] == ["s"]


class TestLivePolling:
    def test_poll_collects_and_scores(self):
        overlay = UnstructuredOverlay(degree=4, rng=0)
        for i in range(15):
            overlay.join(f"peer-{i:02d}")
        overlay.deposit("peer-05", feedback(rater="peer-05", target="file",
                                            rating=0.9))
        overlay.deposit("peer-09", feedback(rater="peer-09", target="file",
                                            rating=0.8))
        model = XRepModel()
        score, messages = model.poll(overlay, "peer-00", "file", ttl=15)
        assert score > 0.6
        assert messages > 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            XRepModel(cluster_weight=2.0)
        with pytest.raises(ConfigurationError):
            XRepModel(servent_blend=-0.1)
