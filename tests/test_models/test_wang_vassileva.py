"""Tests for the Wang & Vassileva Bayesian trust model."""

import pytest

from repro.common.errors import ConfigurationError
from repro.models.wang_vassileva import WangVassilevaModel

from tests.conftest import feedback


class TestProviderTrust:
    def test_no_evidence_is_half(self):
        model = WangVassilevaModel()
        assert model.provider_trust("me", "partner") == 0.5

    def test_satisfying_interactions_raise_trust(self):
        model = WangVassilevaModel()
        for i in range(10):
            model.record(feedback(rater="me", target="svc", time=float(i),
                                  rating=0.9))
        assert model.provider_trust("me", "svc") > 0.8

    def test_facet_weighted_trust(self):
        model = WangVassilevaModel()
        for i in range(10):
            model.record(
                feedback(
                    rater="me", target="svc", time=float(i), rating=0.5,
                    facets={"speed": 0.9, "cost": 0.1},
                )
            )
        fast = model.provider_trust("me", "svc", {"speed": 1.0})
        cheap = model.provider_trust("me", "svc", {"cost": 1.0})
        assert fast > 0.8
        assert cheap < 0.2

    def test_trust_is_personal(self):
        model = WangVassilevaModel()
        for i in range(5):
            model.record(feedback(rater="happy", target="svc",
                                  time=float(i), rating=0.9))
            model.record(feedback(rater="sad", target="svc",
                                  time=float(i), rating=0.1))
        assert model.provider_trust("happy", "svc") > model.provider_trust(
            "sad", "svc"
        )


class TestRaterTrust:
    def test_accurate_recommender_gains_credibility(self):
        model = WangVassilevaModel(recommendation_tolerance=0.2)
        for _ in range(5):
            model.record_recommendation("me", "good-advisor", 0.8, 0.75)
        for _ in range(5):
            model.record_recommendation("me", "bad-advisor", 0.9, 0.1)
        assert model.rater_trust("me", "good-advisor") > 0.7
        assert model.rater_trust("me", "bad-advisor") < 0.3

    def test_recommendation_weighted_reputation(self):
        model = WangVassilevaModel()
        # Two other agents hold opposite views.
        for i in range(10):
            model.record(feedback(rater="truthful", target="svc",
                                  time=float(i), rating=0.9))
            model.record(feedback(rater="liar", target="svc",
                                  time=float(i), rating=0.1))
        # "me" has learned who to trust as a recommender.
        for _ in range(10):
            model.record_recommendation("me", "truthful", 0.9, 0.85)
            model.record_recommendation("me", "liar", 0.1, 0.9)
        pooled = model.recommendation_weighted_reputation("me", "svc")
        assert pooled > 0.6  # truthful's view dominates


class TestScore:
    def test_blends_own_and_pooled(self):
        model = WangVassilevaModel()
        # Others say the service is great.
        for i in range(10):
            model.record(feedback(rater="other", target="svc",
                                  time=float(i), rating=0.9))
        newcomer_score = model.score("svc", perspective="me")
        assert newcomer_score > 0.6  # follows the crowd with no own data
        # With strong own bad experience, own view dominates.
        for i in range(20):
            model.record(feedback(rater="me", target="svc",
                                  time=float(i), rating=0.1))
        assert model.score("svc", perspective="me") < 0.4

    def test_global_fallback(self):
        model = WangVassilevaModel()
        for i in range(5):
            model.record(feedback(rater="a", target="svc", time=float(i),
                                  rating=0.9))
        assert model.score("svc") > 0.7

    def test_unknown_target(self):
        assert WangVassilevaModel().score("nothing") == 0.5

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            WangVassilevaModel(satisfaction_threshold=1.5)
        with pytest.raises(ConfigurationError):
            WangVassilevaModel(recommendation_tolerance=0.0)
