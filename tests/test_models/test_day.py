"""Tests for Day's expert system and naive Bayes selection."""

import pytest

from repro.common.errors import ConfigurationError
from repro.models.day import (
    DayExpertSystem,
    DayNaiveBayes,
    Rule,
    combine_certainty,
    threshold_rule,
)

from tests.conftest import feedback


def facet_fb(rater, target, facets, rating=None, time=0.0):
    if rating is None:
        rating = sum(facets.values()) / len(facets)
    return feedback(rater=rater, target=target, time=time, rating=rating,
                    facets=facets)


class TestCertaintyCombination:
    def test_positive_pair(self):
        assert combine_certainty(0.5, 0.5) == pytest.approx(0.75)

    def test_negative_pair(self):
        assert combine_certainty(-0.5, -0.5) == pytest.approx(-0.75)

    def test_mixed(self):
        assert combine_certainty(0.8, -0.4) == pytest.approx(0.4 / 0.6)

    def test_identity(self):
        assert combine_certainty(0.0, 0.7) == pytest.approx(0.7)


class TestExpertSystem:
    def test_default_rules_prefer_good_service(self):
        model = DayExpertSystem()
        for i in range(5):
            model.record(facet_fb(f"c{i}", "good", {
                "response_time": 0.9, "reliability": 0.9,
                "availability": 0.9,
            }))
            model.record(facet_fb(f"c{i}", "bad", {
                "response_time": 0.2, "reliability": 0.2,
                "availability": 0.2,
            }))
        assert model.score("good") > model.score("bad")
        assert model.certainty("good") > 0
        assert model.certainty("bad") < 0

    def test_custom_rules(self):
        model = DayExpertSystem(rules=[
            threshold_rule("premium", "gold_support", 0.5, 0.9),
        ])
        for i in range(3):
            model.record(facet_fb(f"c{i}", "svc", {"gold_support": 0.8}))
        assert model.score("svc") > 0.9

    def test_add_rule(self):
        model = DayExpertSystem(rules=[])
        model.add_rule(Rule("always", lambda f: True, 0.5))
        model.record(facet_fb("c0", "svc", {"anything": 0.5}))
        assert model.certainty("svc") == 0.5

    def test_no_evidence_is_neutral(self):
        assert DayExpertSystem().score("unknown") == 0.5

    def test_facetless_fallback(self):
        model = DayExpertSystem()
        model.record(feedback(rater="c0", target="svc", rating=0.9))
        assert model.score("svc") > 0.8

    def test_rule_certainty_validated(self):
        with pytest.raises(ConfigurationError):
            Rule("bad", lambda f: True, 1.5)


class TestNaiveBayes:
    def train(self, model):
        # Fast+reliable services satisfy; slow+unreliable do not.
        for i in range(20):
            model.record(facet_fb(
                f"a{i}", f"good{i % 4}",
                {"response_time": 0.85, "reliability": 0.9}, rating=0.9,
            ))
            model.record(facet_fb(
                f"b{i}", f"bad{i % 4}",
                {"response_time": 0.15, "reliability": 0.2}, rating=0.1,
            ))

    def test_classifies_by_learned_pattern(self):
        model = DayNaiveBayes()
        self.train(model)
        assert model.posterior({"response_time": 0.9, "reliability": 0.9}) > 0.8
        assert model.posterior({"response_time": 0.1, "reliability": 0.1}) < 0.2

    def test_score_uses_service_facet_vector(self):
        model = DayNaiveBayes()
        self.train(model)
        assert model.score("good0") > model.score("bad0")

    def test_untrained_is_neutral(self):
        assert DayNaiveBayes().posterior({"x": 0.5}) == 0.5

    def test_unknown_facets_ignored(self):
        model = DayNaiveBayes()
        self.train(model)
        known = model.posterior({"response_time": 0.9})
        with_unknown = model.posterior(
            {"response_time": 0.9, "exotic": 0.5}
        )
        assert known == with_unknown

    def test_facetless_fallback(self):
        model = DayNaiveBayes()
        model.record(feedback(rater="c0", target="svc", rating=0.2))
        assert model.score("svc") == pytest.approx(0.2)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DayNaiveBayes(bins=1)
        with pytest.raises(ConfigurationError):
            DayNaiveBayes(label_threshold=1.5)
