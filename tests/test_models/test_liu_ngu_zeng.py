"""Tests for the Liu, Ngu & Zeng QoS computation model."""

import pytest

from repro.common.errors import ConfigurationError
from repro.models.liu_ngu_zeng import LiuNguZengModel

from tests.conftest import feedback


def facet_fb(rater, target, facets, time=0.0):
    rating = sum(facets.values()) / len(facets)
    return feedback(rater=rater, target=target, time=time, rating=rating,
                    facets=facets)


def build_candidates(model):
    data = {
        "fast-pricey": {"speed": 0.9, "cost": 0.2},
        "slow-cheap": {"speed": 0.2, "cost": 0.9},
        "balanced": {"speed": 0.6, "cost": 0.6},
    }
    for svc, facets in data.items():
        for i in range(3):
            model.record(facet_fb(f"c{i}", svc, facets))
    return list(data)


class TestMatrixNormalization:
    def test_preferences_flip_the_winner(self):
        model = LiuNguZengModel()
        candidates = build_candidates(model)
        model.set_preferences("racer", {"speed": 1.0})
        model.set_preferences("saver", {"cost": 1.0})
        racer_rank = model.rank(candidates, perspective="racer")
        saver_rank = model.rank(candidates, perspective="saver")
        assert racer_rank[0].target == "fast-pricey"
        assert saver_rank[0].target == "slow-cheap"

    def test_normalization_is_relative_to_candidate_set(self):
        model = LiuNguZengModel()
        build_candidates(model)
        model.set_preferences("racer", {"speed": 1.0})
        # Within {slow-cheap, balanced}, balanced is the fastest and
        # must normalize to 1.0 on speed.
        ranking = model.rank(["slow-cheap", "balanced"], perspective="racer")
        assert ranking[0].target == "balanced"
        assert ranking[0].score == pytest.approx(1.0)

    def test_tied_column_contributes_half(self):
        model = LiuNguZengModel()
        for svc in ["a", "b"]:
            for i in range(2):
                model.record(facet_fb(f"c{i}", svc, {"same": 0.7}))
        ranking = model.rank(["a", "b"])
        assert ranking[0].score == pytest.approx(0.5)
        assert ranking[1].score == pytest.approx(0.5)

    def test_unreported_candidate_scores_prior(self):
        model = LiuNguZengModel()
        build_candidates(model)
        ranking = model.rank(["fast-pricey", "unknown-svc"])
        unknown = next(st for st in ranking if st.target == "unknown-svc")
        assert unknown.score == 0.5


class TestPolicing:
    def test_min_reports_gate(self):
        model = LiuNguZengModel(min_reports=3)
        model.record(facet_fb("c0", "thin", {"speed": 0.9}))
        assert model.quality_row("thin") is None
        assert model.score("thin") == 0.5

    def test_freshness_window_drops_stale(self):
        model = LiuNguZengModel(freshness_window=10.0)
        model.record(facet_fb("c0", "svc", {"speed": 0.9}, time=0.0))
        model.record(facet_fb("c1", "svc", {"speed": 0.1}, time=95.0))
        row = model.quality_row("svc", now=100.0)
        assert row["speed"] == pytest.approx(0.1)

    def test_police_removes_permanently(self):
        model = LiuNguZengModel(freshness_window=10.0)
        model.record(facet_fb("c0", "svc", {"speed": 0.9}, time=0.0))
        model.record(facet_fb("c1", "svc", {"speed": 0.5}, time=95.0))
        removed = model.police(now=100.0)
        assert removed == 1
        # Even a query without `now` no longer sees the stale report.
        assert model.quality_row("svc")["speed"] == pytest.approx(0.5)

    def test_facetless_feedback_uses_overall(self):
        model = LiuNguZengModel()
        model.record(feedback(rater="c0", target="svc", rating=0.8))
        assert model.quality_row("svc") == {"overall": 0.8}

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LiuNguZengModel(freshness_window=0.0)
        with pytest.raises(ConfigurationError):
            LiuNguZengModel(min_reports=0)
