"""Tests for the Epinions web-of-trust model."""

import pytest

from repro.common.errors import ConfigurationError
from repro.models.epinions import EpinionsModel

from tests.conftest import feedback


class TestWebOfTrust:
    def test_trust_distance_direct(self):
        model = EpinionsModel()
        model.trust("alice", "bob")
        assert model.trust_distance("alice", "bob") == 1

    def test_trust_distance_transitive(self):
        model = EpinionsModel()
        model.trust("alice", "bob")
        model.trust("bob", "carol")
        assert model.trust_distance("alice", "carol") == 2

    def test_blocked_is_unreachable(self):
        model = EpinionsModel()
        model.trust("alice", "bob")
        model.block("alice", "bob")  # block overrides trust
        assert model.trust_distance("alice", "bob") is None

    def test_depth_bound(self):
        model = EpinionsModel(max_depth=2)
        model.trust("a", "b")
        model.trust("b", "c")
        model.trust("c", "d")
        assert model.trust_distance("a", "d") is None

    def test_trust_then_block_switches_lists(self):
        model = EpinionsModel()
        model.block("alice", "bob")
        model.trust("alice", "bob")
        assert model.trust_distance("alice", "bob") == 1


class TestScoring:
    def test_trusted_reviewer_dominates(self):
        model = EpinionsModel(stranger_weight=0.1)
        model.trust("alice", "friend")
        model.record(feedback(rater="friend", target="p", rating=1.0))
        model.record(feedback(rater="stranger", target="p", rating=0.0))
        assert model.score("p", perspective="alice") > 0.85

    def test_blocked_reviewer_ignored(self):
        model = EpinionsModel()
        model.block("alice", "troll")
        model.record(feedback(rater="troll", target="p", rating=0.0))
        model.record(feedback(rater="other", target="p", rating=0.8))
        # Troll has zero weight: only "other" counts (stranger weight).
        assert model.score("p", perspective="alice") == pytest.approx(0.8)

    def test_transitive_trust_attenuates(self):
        model = EpinionsModel(trust_decay=0.5, stranger_weight=0.0)
        model.trust("alice", "bob")
        model.trust("bob", "carol")
        model.record(feedback(rater="bob", target="p", rating=1.0))
        model.record(feedback(rater="carol", target="p", rating=0.0))
        # bob weight 1.0, carol weight 0.5 -> score 2/3.
        assert model.score("p", perspective="alice") == pytest.approx(2 / 3)

    def test_without_perspective_all_reviews_equal(self):
        model = EpinionsModel()
        model.record(feedback(rater="a", target="p", rating=1.0))
        model.record(feedback(rater="b", target="p", rating=0.0))
        assert model.score("p") == pytest.approx(0.5)

    def test_no_reviews_scores_half(self):
        assert EpinionsModel().score("p", perspective="alice") == 0.5

    def test_personalization(self):
        model = EpinionsModel(stranger_weight=0.0)
        model.trust("alice", "optimist")
        model.trust("eve", "pessimist")
        model.record(feedback(rater="optimist", target="p", rating=0.9))
        model.record(feedback(rater="pessimist", target="p", rating=0.2))
        assert model.score("p", perspective="alice") > model.score(
            "p", perspective="eve"
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            EpinionsModel(trust_decay=0.0)
        with pytest.raises(ConfigurationError):
            EpinionsModel(stranger_weight=1.5)
        with pytest.raises(ConfigurationError):
            EpinionsModel(max_depth=0)
