"""Tests for the PageRank model."""

import math

import pytest

from repro.common.errors import ConfigurationError
from repro.models.pagerank import PageRankModel

from tests.conftest import feedback


class TestPowerIteration:
    def test_rank_sums_to_one(self):
        model = PageRankModel()
        model.add_edge("a", "b")
        model.add_edge("b", "c")
        model.add_edge("c", "a")
        ranks = model.compute()
        assert math.isclose(sum(ranks.values()), 1.0, rel_tol=1e-9)

    def test_symmetric_cycle_is_uniform(self):
        model = PageRankModel()
        model.add_edge("a", "b")
        model.add_edge("b", "c")
        model.add_edge("c", "a")
        ranks = model.compute()
        assert ranks["a"] == pytest.approx(ranks["b"])
        assert ranks["b"] == pytest.approx(ranks["c"])

    def test_authority_concentrates_on_popular_node(self):
        model = PageRankModel()
        for source in ["a", "b", "c", "d"]:
            model.add_edge(source, "hub")
        ranks = model.compute()
        assert ranks["hub"] == max(ranks.values())

    def test_dangling_nodes_handled(self):
        model = PageRankModel()
        model.add_edge("a", "sink")  # sink has no outlinks
        ranks = model.compute()
        assert math.isclose(sum(ranks.values()), 1.0, rel_tol=1e-9)

    def test_converges_quickly(self):
        model = PageRankModel(tol=1e-10)
        for i in range(20):
            model.add_edge(f"n{i}", f"n{(i + 1) % 20}")
        model.compute()
        assert model.iterations_last_run < 200

    def test_self_loops_ignored(self):
        model = PageRankModel()
        model.add_edge("a", "a")
        model.add_edge("a", "b")
        ranks = model.compute()
        assert ranks["b"] > ranks["a"]


class TestFeedbackIntegration:
    def test_positive_feedback_creates_edge(self):
        model = PageRankModel()
        model.record(feedback(rater="u1", target="svc", rating=0.9))
        model.record(feedback(rater="u2", target="svc", rating=0.9))
        model.record(feedback(rater="u1", target="other", rating=0.1))
        assert model.score("svc") > model.score("other")

    def test_score_normalized_to_unit(self):
        model = PageRankModel()
        for i in range(5):
            model.record(feedback(rater=f"u{i}", target="svc", rating=0.9))
        assert model.score("svc") == 1.0  # the top-ranked node

    def test_empty_graph_scores_half(self):
        assert PageRankModel().score("anything") == 0.5

    def test_recording_invalidates_cache(self):
        model = PageRankModel()
        model.record(feedback(rater="u1", target="a", rating=0.9))
        first = model.score("a")
        for i in range(5):
            model.record(feedback(rater=f"v{i}", target="b", rating=0.9))
        assert model.score("b") >= first  # recomputed with new edges

    def test_damping_validation(self):
        with pytest.raises(ConfigurationError):
            PageRankModel(damping=1.0)
        with pytest.raises(ConfigurationError):
            PageRankModel(damping=0.0)


class TestIncrementalCache:
    """The warm-started vectorized engine must match the naive path."""

    def test_compute_matches_naive_interleaved(self):
        model = PageRankModel()
        nodes = [f"n{i}" for i in range(8)]
        for i in range(160):
            model.record(feedback(rater=nodes[i % 8],
                                  target=nodes[(i + 1 + i // 9) % 8],
                                  rating=(i % 10) / 10.0, time=float(i)))
            if i % 13 == 0:
                model.score(nodes[i % 8])  # exercise the warm start
        incremental = model.compute()
        naive = model.compute_naive()
        assert set(incremental) == set(naive)
        for node, rank in naive.items():
            assert incremental[node] == pytest.approx(rank, abs=1e-9)

    def test_version_bumps_on_record(self):
        model = PageRankModel()
        v0 = model.version
        model.record(feedback(rater="u", target="v", rating=0.9))
        assert model.version > v0

    def test_duplicate_edges_not_reindexed(self):
        model = PageRankModel()
        for _ in range(5):
            model.add_edge("u", "v")
        model.compute()
        assert len(model._edge_pairs) == 1

    def test_queries_reuse_cached_vector(self):
        model = PageRankModel()
        model.record(feedback(rater="u1", target="a", rating=0.9))
        model.record(feedback(rater="u2", target="a", rating=0.9))
        calls = {"n": 0}
        original = model.compute

        def counting():
            calls["n"] += 1
            return original()

        model.compute = counting
        model.score("a")
        model.score("u1")
        model.score_many(["a", "u1", "never-seen"])
        assert calls["n"] == 1
        model.record(feedback(rater="u1", target="b", rating=0.9, time=50.0))
        model.score("b")
        assert calls["n"] == 2
