"""Tests for PeerTrust."""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.records import Feedback, Interaction
from repro.models.peertrust import CredibilityMeasure, PeerTrustModel

from tests.conftest import feedback


def build_honest_and_liar(credibility=CredibilityMeasure.PSM):
    """Honest raters agree with each other; the liar inverts."""
    model = PeerTrustModel(credibility=credibility)
    # Shared context: honest raters rate several peers consistently.
    for subject, quality in [("s1", 0.9), ("s2", 0.2), ("s3", 0.7)]:
        for r in ["h1", "h2", "h3"]:
            model.record(feedback(rater=r, target=subject, rating=quality))
        model.record(feedback(rater="liar", target=subject,
                              rating=1.0 - quality))
    return model


class TestSatisfactionAggregation:
    def test_good_peer_scores_high(self):
        model = PeerTrustModel()
        for i in range(10):
            model.record(feedback(rater=f"r{i}", target="peer",
                                  rating=0.9, time=float(i)))
        assert model.score("peer") > 0.7

    def test_no_transactions_scores_near_half(self):
        assert PeerTrustModel().score("ghost") == pytest.approx(0.45, abs=0.1)

    def test_window_limits_history(self):
        model = PeerTrustModel(window=5)
        # Old bad, recent good: only recent window counts.
        for i in range(20):
            rating = 0.1 if i < 15 else 0.9
            model.record(feedback(rater=f"r{i}", target="peer",
                                  rating=rating, time=float(i)))
        assert model.score("peer") > 0.6


class TestCredibility:
    def test_psm_downweights_divergent_rater(self):
        model = build_honest_and_liar()
        honest_cred = model.feedback_similarity("h1", "h2")
        liar_cred = model.feedback_similarity("h1", "liar")
        assert honest_cred > liar_cred

    def test_psm_resists_badmouthing(self):
        model = build_honest_and_liar()
        # Liar badmouths a new good peer; honest raters praise it.
        for r in ["h1", "h2"]:
            model.record(feedback(rater=r, target="victim", rating=0.9))
        model.record(feedback(rater="liar", target="victim", rating=0.0))
        assert model.score("victim", perspective="h3") > 0.6

    def test_tvm_uses_trust_value(self):
        model = build_honest_and_liar(credibility=CredibilityMeasure.TVM)
        score = model.score("s1", perspective="h1")
        assert 0.0 <= score <= 1.0

    def test_community_context_rewards_contributors(self):
        model = PeerTrustModel(alpha=0.5, beta=0.5)
        for i in range(20):
            model.record(feedback(rater="active", target=f"t{i}",
                                  rating=0.5, time=float(i)))
        assert model.community_context("active") > model.community_context(
            "silent"
        )

    def test_transaction_context_from_interaction(self):
        model = PeerTrustModel()
        rich = Interaction(
            consumer="c", service="s", provider="p", time=0.0, success=True,
            observations={"a": 1.0, "b": 1.0, "c": 1.0},
        )
        fb_rich = Feedback(rater="c", target="peer", time=0.0, rating=0.9,
                           interaction=rich)
        model.record(fb_rich)
        tx = model._transactions["peer"][0]
        assert tx.context == 1.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PeerTrustModel(alpha=-1.0)
        with pytest.raises(ConfigurationError):
            PeerTrustModel(window=0)
