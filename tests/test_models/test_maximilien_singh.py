"""Tests for the Maximilien & Singh facet-reputation model."""

import pytest

from repro.common.errors import ConfigurationError
from repro.core.decay import NoDecay
from repro.models.maximilien_singh import MaximilienSinghModel

from tests.conftest import feedback


def facet_fb(rater, target, facets, time=0.0, rating=None):
    if rating is None:
        rating = sum(facets.values()) / len(facets)
    return feedback(rater=rater, target=target, time=time, rating=rating,
                    facets=facets)


class TestFacetReputation:
    def test_community_evidence(self):
        model = MaximilienSinghModel(decay=NoDecay())
        for i in range(5):
            model.record(facet_fb(f"c{i}", "svc", {"speed": 0.8}))
        assert model.facet_reputation("svc", "speed") == pytest.approx(0.8)

    def test_claim_fills_evidence_gap(self):
        model = MaximilienSinghModel()
        model.register_advertisement("svc", {"speed": 0.9})
        assert model.facet_reputation("svc", "speed") == 0.9

    def test_claim_weight_shrinks_with_evidence(self):
        model = MaximilienSinghModel(decay=NoDecay(),
                                     claim_evidence_scale=2.0)
        model.register_advertisement("svc", {"speed": 1.0})
        model.record(facet_fb("c0", "svc", {"speed": 0.4}))
        early = model.facet_reputation("svc", "speed")
        for i in range(1, 20):
            model.record(facet_fb(f"c{i}", "svc", {"speed": 0.4}))
        late = model.facet_reputation("svc", "speed")
        assert late < early  # claim's pull fades
        assert late == pytest.approx(0.4, abs=0.05)

    def test_mismatched_claims_lose_say(self):
        liar = MaximilienSinghModel(decay=NoDecay())
        liar.register_advertisement("svc", {"speed": 1.0})
        honest = MaximilienSinghModel(decay=NoDecay())
        honest.register_advertisement("svc", {"speed": 0.45})
        for model in (liar, honest):
            for i in range(3):
                model.record(facet_fb(f"c{i}", "svc", {"speed": 0.4}))
        # Both end on the observation side of their claims, and the
        # honest (near-truth) claim distorts far less than the inflated
        # one even though it formally carries the same base weight.
        liar_error = abs(liar.facet_reputation("svc", "speed") - 0.4)
        honest_error = abs(honest.facet_reputation("svc", "speed") - 0.4)
        assert honest_error < liar_error
        assert liar_error < 0.2
        assert honest_error < 0.05

    def test_unknown_facet_is_half(self):
        assert MaximilienSinghModel().facet_reputation("svc", "x") == 0.5


class TestPreferences:
    def test_preferences_personalize_score(self):
        model = MaximilienSinghModel(decay=NoDecay())
        for i in range(5):
            model.record(
                facet_fb(f"c{i}", "svc", {"speed": 0.9, "cost": 0.1})
            )
        model.set_preferences("speed-freak", {"speed": 1.0})
        model.set_preferences("penny-pincher", {"cost": 1.0})
        assert model.score("svc", perspective="speed-freak") > 0.8
        assert model.score("svc", perspective="penny-pincher") < 0.2

    def test_no_preferences_averages_facets(self):
        model = MaximilienSinghModel(decay=NoDecay())
        for i in range(5):
            model.record(
                facet_fb(f"c{i}", "svc", {"speed": 0.9, "cost": 0.1})
            )
        assert model.score("svc") == pytest.approx(0.5, abs=0.05)

    def test_overall_fallback_without_facets(self):
        model = MaximilienSinghModel(decay=NoDecay())
        model.record(feedback(rater="c0", target="svc", rating=0.8))
        assert model.score("svc") == pytest.approx(0.8)

    def test_decay_prefers_recent(self):
        model = MaximilienSinghModel()  # exponential decay default
        model.record(facet_fb("old", "svc", {"speed": 0.1}, time=0.0))
        model.record(facet_fb("new", "svc", {"speed": 0.9}, time=500.0))
        assert model.facet_reputation("svc", "speed", now=500.0) > 0.7

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MaximilienSinghModel(claim_evidence_scale=0.0)
        with pytest.raises(ConfigurationError):
            MaximilienSinghModel().register_advertisement("s", {"x": 2.0})
