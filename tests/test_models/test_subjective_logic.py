"""Tests for the subjective-logic reputation mechanism."""

import pytest

from repro.common.errors import ConfigurationError
from repro.models.subjective_logic import SubjectiveLogicModel

from tests.conftest import feedback, feedback_series


class TestGlobalFusion:
    def test_no_evidence_is_base_rate(self):
        model = SubjectiveLogicModel()
        assert model.score("svc") == 0.5
        assert model.uncertainty("svc") == 1.0

    def test_evidence_moves_expectation_and_commits_mass(self):
        model = SubjectiveLogicModel()
        model.record_many(feedback_series("svc", [0.9] * 8))
        assert model.score("svc") > 0.75
        assert model.uncertainty("svc") < 0.3

    def test_fusion_pools_raters(self):
        single = SubjectiveLogicModel()
        for i in range(3):
            single.record(feedback(rater="only", target="svc",
                                   time=float(i), rating=0.9))
        many = SubjectiveLogicModel()
        for i in range(3):
            for rater in ["a", "b", "c"]:
                many.record(feedback(rater=rater, target="svc",
                                     time=float(i), rating=0.9))
        assert many.uncertainty("svc") < single.uncertainty("svc")

    def test_good_above_bad(self):
        model = SubjectiveLogicModel()
        model.record_many(feedback_series("good", [0.9] * 6))
        model.record_many(feedback_series("bad", [0.1] * 6))
        assert model.score("good") > model.score("bad")


class TestPersonalization:
    def build_with_liar(self):
        model = SubjectiveLogicModel(agreement_tolerance=0.2)
        # "me" and "ally" agree on calibration targets; "liar" inverts.
        for target, truth in [("cal1", 0.8), ("cal2", 0.3)]:
            for t in range(3):
                model.record(feedback(rater="me", target=target,
                                      time=float(t), rating=truth))
                model.record(feedback(rater="ally", target=target,
                                      time=float(t), rating=truth))
                model.record(feedback(rater="liar", target=target,
                                      time=float(t), rating=1.0 - truth))
        # Disputed target: ally says good, liar says terrible.
        for t in range(5):
            model.record(feedback(rater="ally", target="disputed",
                                  time=float(t), rating=0.85))
            model.record(feedback(rater="liar", target="disputed",
                                  time=float(t), rating=0.05))
        return model

    def test_referral_trust_learned_from_agreement(self):
        model = self.build_with_liar()
        ally_trust = model.referral_opinion("me", "ally")
        liar_trust = model.referral_opinion("me", "liar")
        assert ally_trust.expectation > 0.7
        assert liar_trust.expectation < 0.3

    def test_personalized_score_discounts_the_liar(self):
        model = self.build_with_liar()
        personalized = model.score("disputed", perspective="me")
        unpersonalized = model.score("disputed")
        assert personalized > unpersonalized
        assert personalized > 0.6

    def test_own_evidence_not_discounted(self):
        model = SubjectiveLogicModel()
        for t in range(6):
            model.record(feedback(rater="me", target="svc",
                                  time=float(t), rating=0.9))
        assert model.score("svc", perspective="me") > 0.75

    def test_stranger_perspective_discounts_everyone(self):
        model = SubjectiveLogicModel()
        model.record_many(feedback_series("svc", [0.9] * 6))
        # A perspective with no history can verify nobody: opinions are
        # heavily discounted, the result stays near the base rate but
        # on the positive side.
        score = model.score("svc", perspective="total-stranger")
        assert 0.5 <= score < model.score("svc")
        assert model.uncertainty("svc", perspective="total-stranger") > \
            model.uncertainty("svc")

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SubjectiveLogicModel(agreement_tolerance=0.0)
        with pytest.raises(ConfigurationError):
            SubjectiveLogicModel(base_rate=1.5)
