"""Tests for the Vu, Hauswirth & Aberer decentralized QoS model."""

import pytest

from repro.common.errors import ConfigurationError
from repro.models.vu_aberer import VuAbererModel
from repro.p2p.pgrid import PGrid

from tests.conftest import feedback


def facet_fb(rater, target, facets, time=0.0):
    rating = sum(facets.values()) / len(facets)
    return feedback(rater=rater, target=target, time=time, rating=rating,
                    facets=facets)


class TestLiarDetection:
    def test_deviant_rater_loses_credibility(self):
        model = VuAbererModel(deviation_tolerance=0.15)
        model.record_monitor_data("svc", {"speed": 0.8})
        for t in range(5):
            model.record(facet_fb("honest", "svc", {"speed": 0.78},
                                  time=float(t)))
            model.record(facet_fb("liar", "svc", {"speed": 0.1},
                                  time=float(t)))
        assert model.credibility("honest") > 0.7
        assert model.credibility("liar") < 0.3

    def test_monitor_data_rescreens_existing_reports(self):
        model = VuAbererModel()
        # Reports arrive before the monitor measured the service.
        for t in range(5):
            model.record(facet_fb("liar", "svc", {"speed": 0.1},
                                  time=float(t)))
        assert model.credibility("liar") == 0.5  # not yet caught
        model.record_monitor_data("svc", {"speed": 0.8})
        assert model.credibility("liar") < 0.3

    def test_liar_caught_on_monitored_service_discounted_everywhere(self):
        model = VuAbererModel()
        model.record_monitor_data("monitored", {"speed": 0.8})
        for t in range(5):
            model.record(facet_fb("liar", "monitored", {"speed": 0.1},
                                  time=float(t)))
        # Liar's reports on an UNmonitored service are now discounted.
        for t in range(5):
            model.record(facet_fb("liar", "unmonitored", {"speed": 0.0},
                                  time=float(t)))
            model.record(facet_fb("honest", "unmonitored", {"speed": 0.7},
                                  time=float(t)))
        # Naive (credibility-blind) pooling would land at 0.35; the
        # defended estimate sits clearly on the honest side.
        assert model.predicted_quality("unmonitored", "speed") > 0.5

    def test_credibility_floor(self):
        model = VuAbererModel(min_credibility=0.05)
        model.record_monitor_data("svc", {"speed": 0.9})
        for t in range(50):
            model.record(facet_fb("liar", "svc", {"speed": 0.0},
                                  time=float(t)))
        assert model.credibility("liar") >= 0.05


class TestPrediction:
    def test_monitor_blend(self):
        model = VuAbererModel(monitor_weight=1.0)
        model.record_monitor_data("svc", {"speed": 0.8})
        model.record(facet_fb("c0", "svc", {"speed": 0.2}))
        assert model.predicted_quality("svc", "speed") == pytest.approx(0.8)

    def test_pure_user_estimate_without_monitor(self):
        model = VuAbererModel()
        model.record(facet_fb("c0", "svc", {"speed": 0.6}))
        assert model.predicted_quality("svc", "speed") == pytest.approx(0.6)

    def test_unknown_service(self):
        assert VuAbererModel().predicted_quality("nothing") == 0.5

    def test_preference_weighted_score(self):
        model = VuAbererModel()
        for i in range(3):
            model.record(facet_fb(f"c{i}", "svc", {"speed": 0.9, "cost": 0.1}))
        model.set_preferences("racer", {"speed": 1.0})
        model.set_preferences("saver", {"cost": 1.0})
        assert model.score("svc", perspective="racer") > 0.8
        assert model.score("svc", perspective="saver") < 0.2

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            VuAbererModel(deviation_tolerance=0.0)
        with pytest.raises(ConfigurationError):
            VuAbererModel(min_credibility=1.0)


class TestPGridDeployment:
    def test_publish_and_query_over_overlay(self):
        peers = [f"reg-{i:02d}" for i in range(16)]
        grid = PGrid(peers, replication=2, rng=0)
        model = VuAbererModel()
        report = facet_fb("consumer", "svc", {"speed": 0.7})
        messages = model.publish_report(grid, "reg-00", report)
        assert messages >= 0
        found, lookup_messages = model.query_reports(grid, "reg-15", "svc")
        assert found == [report]
        assert lookup_messages >= 1
        # Publishing also fed the local model.
        assert model.predicted_quality("svc", "speed") == pytest.approx(0.7)
