"""Tests for the Aberer & Despotovic complaint model."""

import pytest

from repro.common.errors import ConfigurationError
from repro.models.aberer import AbererDespotovicModel
from repro.p2p.pgrid import PGrid

from tests.conftest import feedback


class TestComplaints:
    def test_bad_rating_files_complaint(self):
        model = AbererDespotovicModel(complaint_threshold=0.5)
        model.record(feedback(rater="a", target="b", rating=0.2))
        cr, cf = model.complaints("b")
        assert cr == 1
        assert model.complaints("a") == (0, 1)

    def test_good_rating_files_nothing(self):
        model = AbererDespotovicModel()
        model.record(feedback(rater="a", target="b", rating=0.8))
        assert model.complaints("b") == (0, 0)

    def test_file_complaint_direct(self):
        model = AbererDespotovicModel()
        model.file_complaint("a", "b")
        assert model.complaints("b") == (1, 0)


class TestAssessment:
    def build_population(self):
        model = AbererDespotovicModel()
        # 5 honest peers trading happily...
        for i in range(5):
            for j in range(5):
                if i != j:
                    model.record(feedback(rater=f"h{i}", target=f"h{j}",
                                          rating=0.9))
        # ...and one cheat that misbehaves and complains about everyone.
        for i in range(5):
            model.record(feedback(rater=f"h{i}", target="cheat", rating=0.1))
            model.record(feedback(rater="cheat", target=f"h{i}", rating=0.1))
        return model

    def test_cheat_is_untrustworthy(self):
        model = self.build_population()
        assert not model.is_trustworthy("cheat")
        assert model.is_trustworthy("h0")

    def test_cheat_scores_below_honest(self):
        model = self.build_population()
        assert model.score("cheat") < model.score("h0")

    def test_statistic_multiplicative(self):
        # The cr*cf product punishes peers who both misbehave AND
        # cover themselves with complaints, more than either alone.
        model = AbererDespotovicModel()
        for i in range(4):
            model.file_complaint(f"x{i}", "receiver-only")
            model.file_complaint("filer-only", f"y{i}")
            model.file_complaint(f"z{i}", "both")
            model.file_complaint("both", f"w{i}")
        assert model.statistic("both") > model.statistic("receiver-only")
        assert model.statistic("both") > model.statistic("filer-only")

    def test_unknown_peer_scores_relative_to_average(self):
        model = AbererDespotovicModel()
        score = model.score("stranger")
        assert 0.0 <= score <= 1.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AbererDespotovicModel(complaint_threshold=2.0)
        with pytest.raises(ConfigurationError):
            AbererDespotovicModel(tolerance=0.0)


class TestPGridDeployment:
    def test_complaints_stored_and_fetched(self):
        peers = [f"peer-{i:02d}" for i in range(16)]
        grid = PGrid(peers, replication=2, rng=0)
        model = AbererDespotovicModel()
        messages = model.store_on_pgrid(grid, "peer-00", "peer-01",
                                        "peer-05")
        assert messages >= 0
        count, lookup_messages = model.assess_via_pgrid(
            grid, "peer-02", "peer-05"
        )
        assert count == 1
        assert lookup_messages >= 1
