"""Tests for social-network topology reputation (NodeRanking-style)."""

import math

import pytest

from repro.common.errors import ConfigurationError
from repro.models.socialnetwork import SocialNetworkModel

from tests.conftest import feedback


class TestTopologyAuthority:
    def test_authority_sums_to_one(self):
        model = SocialNetworkModel()
        model.add_relation("a", "b")
        model.add_relation("b", "c")
        model.add_relation("c", "a")
        authority = model.compute()
        assert math.isclose(sum(authority.values()), 1.0, rel_tol=1e-9)

    def test_popular_agent_ranks_highest(self):
        model = SocialNetworkModel()
        for source in ["a", "b", "c", "d", "e"]:
            model.add_relation(source, "star")
        model.add_relation("a", "b")
        assert model.score("star") == 1.0
        assert model.score("star") > model.score("b")

    def test_endorsement_from_authority_counts_more(self):
        model = SocialNetworkModel()
        # "star" is popular; it endorses x. Lone "nobody" endorses y.
        for source in ["a", "b", "c", "d"]:
            model.add_relation(source, "star")
        model.add_relation("star", "x")
        model.add_relation("nobody", "y")
        assert model.score("x") > model.score("y")

    def test_degree(self):
        model = SocialNetworkModel()
        model.add_relation("a", "c")
        model.add_relation("b", "c")
        assert model.degree("c") == 2
        assert model.degree("a") == 0


class TestFeedbackEdges:
    def test_positive_feedback_creates_edge(self):
        model = SocialNetworkModel()
        model.record(feedback(rater="a", target="b", rating=0.9))
        assert model.degree("b") == 1

    def test_negative_feedback_creates_no_edge(self):
        model = SocialNetworkModel()
        model.record(feedback(rater="a", target="b", rating=0.1))
        assert model.degree("b") == 0
        # But both nodes are known to the graph.
        assert model.score("b") <= 0.5 or model.score("b") >= 0.0

    def test_empty_graph(self):
        assert SocialNetworkModel().score("x") == 0.5

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SocialNetworkModel(damping=0.0)
