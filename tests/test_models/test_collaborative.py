"""Tests for collaborative filtering (Breese et al.; Karta's comparison)."""

import pytest

from repro.common.errors import ConfigurationError
from repro.models.collaborative import (
    CollaborativeFilteringModel,
    Similarity,
)

from tests.conftest import feedback


def rate(model, user, item, rating, time=0.0):
    model.record(feedback(rater=user, target=item, rating=rating, time=time))


class TestSimilarity:
    def test_identical_users_similar(self):
        model = CollaborativeFilteringModel(significance_threshold=0)
        for item, r in [("i1", 0.9), ("i2", 0.1), ("i3", 0.5)]:
            rate(model, "u1", item, r)
            rate(model, "u2", item, r)
        assert model.user_similarity("u1", "u2") == pytest.approx(1.0)

    def test_opposite_users_anticorrelated(self):
        model = CollaborativeFilteringModel(significance_threshold=0)
        for item, r in [("i1", 0.9), ("i2", 0.1), ("i3", 0.7)]:
            rate(model, "u1", item, r)
            rate(model, "u2", item, 1.0 - r)
        assert model.user_similarity("u1", "u2") == pytest.approx(-1.0)

    def test_insufficient_overlap_is_none(self):
        model = CollaborativeFilteringModel(min_overlap=3)
        rate(model, "u1", "i1", 0.5)
        rate(model, "u2", "i1", 0.5)
        assert model.user_similarity("u1", "u2") is None

    def test_significance_weighting_devalues_thin_overlap(self):
        thin = CollaborativeFilteringModel(significance_threshold=10)
        full = CollaborativeFilteringModel(significance_threshold=0)
        for m in (thin, full):
            for item, r in [("i1", 0.9), ("i2", 0.1), ("i3", 0.5)]:
                rate(m, "u1", item, r)
                rate(m, "u2", item, r)
        assert thin.user_similarity("u1", "u2") < full.user_similarity("u1", "u2")

    def test_cosine_variant(self):
        model = CollaborativeFilteringModel(
            similarity=Similarity.COSINE, significance_threshold=0
        )
        for item, r in [("i1", 0.9), ("i2", 0.3)]:
            rate(model, "u1", item, r)
            rate(model, "u2", item, r)
        assert model.user_similarity("u1", "u2") == pytest.approx(1.0)


class TestPrediction:
    def build_segmented(self, similarity=Similarity.PEARSON):
        """Two taste segments rating two items oppositely."""
        model = CollaborativeFilteringModel(
            similarity=similarity, significance_threshold=0
        )
        # Segment A loves "artsy", hates "blockbuster"; B the reverse.
        for u in ["a1", "a2", "a3"]:
            rate(model, u, "artsy", 0.9)
            rate(model, u, "blockbuster", 0.2)
            rate(model, u, "neutral", 0.5)
        for u in ["b1", "b2", "b3"]:
            rate(model, u, "artsy", 0.2)
            rate(model, u, "blockbuster", 0.9)
            rate(model, u, "neutral", 0.5)
        return model

    def test_prediction_follows_segment(self):
        model = self.build_segmented()
        # New user with segment-A tastes (rated 2 of 3 items).
        rate(model, "newbie", "blockbuster", 0.2)
        rate(model, "newbie", "neutral", 0.5)
        rate(model, "newbie", "extra", 0.9)
        # a-users agree with newbie on blockbuster+neutral...
        prediction = model.predict("newbie", "artsy")
        assert prediction > 0.6

    def test_own_rating_returned(self):
        model = CollaborativeFilteringModel()
        rate(model, "u", "i", 0.7)
        assert model.predict("u", "i") == 0.7

    def test_unknown_user_gets_item_mean(self):
        model = CollaborativeFilteringModel()
        rate(model, "a", "i", 0.4)
        rate(model, "b", "i", 0.8)
        assert model.predict("stranger", "i") == pytest.approx(0.6)

    def test_unknown_item_for_known_user(self):
        model = CollaborativeFilteringModel()
        rate(model, "u", "i1", 0.9)
        assert model.predict("u", "never-rated") == 0.5

    def test_latest_rating_wins(self):
        model = CollaborativeFilteringModel()
        rate(model, "u", "i", 0.2, time=0.0)
        rate(model, "u", "i", 0.8, time=5.0)
        assert model.rating("u", "i") == 0.8

    def test_score_without_perspective_is_item_mean(self):
        model = CollaborativeFilteringModel()
        rate(model, "a", "i", 0.4)
        rate(model, "b", "i", 0.6)
        assert model.score("i") == pytest.approx(0.5)

    def test_prediction_clipped_to_unit(self):
        model = self.build_segmented()
        rate(model, "fan", "blockbuster", 0.95)
        rate(model, "fan", "neutral", 0.55)
        assert 0.0 <= model.predict("fan", "artsy") <= 1.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CollaborativeFilteringModel(neighbourhood=0)
        with pytest.raises(ConfigurationError):
            CollaborativeFilteringModel(min_overlap=0)


class TestDefaultVoting:
    def test_default_vote_extends_item_universe(self):
        plain = CollaborativeFilteringModel(significance_threshold=0)
        voting = CollaborativeFilteringModel(
            significance_threshold=0, default_vote=0.5
        )
        for m in (plain, voting):
            # Two co-rated items, plus each user rates one private item.
            rate(m, "u1", "shared1", 0.9)
            rate(m, "u2", "shared1", 0.9)
            rate(m, "u1", "shared2", 0.2)
            rate(m, "u2", "shared2", 0.2)
            rate(m, "u1", "only1", 0.9)
            rate(m, "u2", "only2", 0.1)
        # Plain similarity sees perfect agreement; default voting also
        # weighs the disjoint items (filled with 0.5) and so disagrees
        # slightly.
        assert plain.user_similarity("u1", "u2") == pytest.approx(1.0)
        assert voting.user_similarity("u1", "u2") < 1.0

    def test_default_vote_still_requires_min_overlap(self):
        voting = CollaborativeFilteringModel(
            default_vote=0.5, min_overlap=2
        )
        rate(voting, "u1", "i1", 0.9)
        rate(voting, "u2", "i2", 0.9)
        assert voting.user_similarity("u1", "u2") is None

    def test_default_vote_validated(self):
        with pytest.raises(ConfigurationError):
            CollaborativeFilteringModel(default_vote=1.5)


class TestKartaComparison:
    def test_pearson_and_cosine_may_differ(self):
        # Cosine ignores per-user rating bias; Pearson removes it.
        # A user rating uniformly high is "similar" to everyone by
        # cosine but not necessarily by Pearson.
        pearson = CollaborativeFilteringModel(
            similarity=Similarity.PEARSON, significance_threshold=0
        )
        cosine = CollaborativeFilteringModel(
            similarity=Similarity.COSINE, significance_threshold=0
        )
        ratings = [("i1", 0.8, 0.9), ("i2", 0.9, 0.8), ("i3", 0.7, 1.0)]
        for m in (pearson, cosine):
            for item, r1, r2 in ratings:
                rate(m, "u1", item, r1)
                rate(m, "u2", item, r2)
        cos_sim = cosine.user_similarity("u1", "u2")
        pea_sim = pearson.user_similarity("u1", "u2")
        assert cos_sim > 0.95  # both always-high raters
        assert pea_sim < cos_sim  # Pearson sees the disagreement
