"""Tests for Sporas."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError
from repro.common.records import Feedback
from repro.models.sporas import SporasModel

from tests.conftest import feedback, feedback_series


class TestSporas:
    def test_new_user_starts_at_zero(self):
        model = SporasModel()
        assert model.reputation("nobody") == 0.0
        assert model.score("nobody") == 0.0

    def test_good_ratings_grow_reputation(self):
        model = SporasModel()
        model.record_many(feedback_series("s", [1.0] * 50))
        assert model.score("s") > 0.3

    def test_reputation_bounded_by_d(self):
        model = SporasModel(d=100.0, theta=2.0)
        model.record_many(feedback_series("s", [1.0] * 500))
        assert model.reputation("s") <= 100.0
        assert model.score("s") <= 1.0

    def test_reputation_never_negative(self):
        model = SporasModel()
        model.record_many(feedback_series("s", [0.0] * 50))
        assert model.reputation("s") >= 0.0

    def test_damping_slows_high_reputations(self):
        # Phi(R) shrinks as R -> D: increments get smaller.
        model = SporasModel(d=100.0, theta=5.0, sigma=10.0)
        increments = []
        last = 0.0
        for i in range(200):
            model.record(feedback(rater=f"c{i}", target="s", time=float(i),
                                  rating=1.0))
            now = model.reputation("s")
            increments.append(now - last)
            last = now
        assert increments[-1] < increments[0]

    def test_identity_switch_cannot_gain(self):
        # A user with bad reputation restarts at 0 -- which is also the
        # floor, so switching gains nothing (Zacharia's design goal).
        model = SporasModel()
        model.record_many(feedback_series("cheat", [0.0] * 20))
        assert model.reputation("cheat") == pytest.approx(0.0, abs=1e-6)
        assert model.reputation("fresh-identity") == 0.0

    def test_reliability_deviation_tracks_volatility(self):
        stable = SporasModel()
        stable.record_many(feedback_series("s", [0.8] * 100))
        volatile = SporasModel()
        volatile.record_many(
            feedback_series("s", [1.0, 0.0] * 50)
        )
        assert (
            volatile.reliability_deviation("s")
            > stable.reliability_deviation("s")
        )

    def test_rater_reputation_weights_update(self):
        model = SporasModel(d=100.0)
        # Build up the rater's own reputation first.
        model.record_many(feedback_series("heavy-rater", [1.0] * 100))
        light = SporasModel(d=100.0)

        heavy_fb = Feedback(rater="heavy-rater", target="s", time=0.0,
                            rating=1.0)
        light_fb = Feedback(rater="nobody", target="s", time=0.0, rating=1.0)
        model.record(heavy_fb)
        light.record(light_fb)
        assert model.reputation("s") > light.reputation("s")

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            SporasModel(d=0)
        with pytest.raises(ConfigurationError):
            SporasModel(theta=1.0)
        with pytest.raises(ConfigurationError):
            SporasModel(rd_memory=1.0)

    def test_ratings_seen(self):
        model = SporasModel()
        model.record_many(feedback_series("s", [0.5] * 3))
        assert model.ratings_seen("s") == 3

    @given(st.lists(st.floats(0.0, 1.0), max_size=60))
    def test_property_score_bounded(self, ratings):
        model = SporasModel()
        for i, r in enumerate(ratings):
            model.record(Feedback(rater=f"c{i}", target="s", time=float(i),
                                  rating=r))
        assert 0.0 <= model.score("s") <= 1.0
