"""Tests for the Amazon review model."""

import pytest

from repro.common.errors import ConfigurationError
from repro.core.decay import NoDecay
from repro.models.amazon import AmazonModel

from tests.conftest import feedback, feedback_series


class TestAmazon:
    def test_mean_rating(self):
        model = AmazonModel(decay=NoDecay())
        model.record_many(feedback_series("p", [0.2, 0.4, 0.6]))
        assert model.score("p") == pytest.approx(0.4)

    def test_star_rating_mapping(self):
        model = AmazonModel(decay=NoDecay())
        model.record_many(feedback_series("p", [1.0] * 3))
        assert model.star_rating("p") == pytest.approx(5.0)
        model2 = AmazonModel(decay=NoDecay())
        model2.record_many(feedback_series("q", [0.0] * 3))
        assert model2.star_rating("q") == pytest.approx(1.0)

    def test_star_rating_none_without_reviews(self):
        assert AmazonModel().star_rating("nothing") is None

    def test_helpful_votes_weight_reviews(self):
        model = AmazonModel(decay=NoDecay(), helpfulness_weight=1.0)
        model.record(feedback(rater="expert", target="p", rating=1.0))
        model.record(feedback(rater="rando", target="p", rating=0.0))
        base = model.score("p")
        model.vote_helpful("p", "expert", votes=8)
        assert model.score("p") > base

    def test_recency_weighting(self):
        model = AmazonModel()  # default exponential decay
        model.record(feedback(rater="old", target="p", time=0.0, rating=0.1))
        model.record(feedback(rater="new", target="p", time=990.0,
                              rating=0.9))
        # At time 1000 the old review has decayed away.
        assert model.score("p", now=1000.0) > 0.8
        # Without a clock, reviews weigh equally.
        assert model.score("p") == pytest.approx(0.5)

    def test_no_reviews_scores_half(self):
        assert AmazonModel().score("p") == 0.5

    def test_review_count(self):
        model = AmazonModel()
        model.record_many(feedback_series("p", [0.5] * 4))
        assert model.review_count("p") == 4

    def test_negative_votes_rejected(self):
        model = AmazonModel()
        model.record(feedback(target="p"))
        with pytest.raises(ConfigurationError):
            model.vote_helpful("p", "c0", votes=-1)

    def test_helpfulness_weight_validation(self):
        with pytest.raises(ConfigurationError):
            AmazonModel(helpfulness_weight=-0.5)
