"""Batch-vs-scalar scoring equivalence across the whole registry.

The batch ranking API (``score_many``) and the incremental caches
behind the graph models must be *pure optimizations*: under any
interleaving of feedback and queries, the batched scores, the
per-candidate scalar scores, and the scores of a fresh model replaying
the same history have to agree to 1e-9.  A stale dirty flag, a missed
invalidation, or a warm start landing on a different fixed point shows
up exactly as one of these three paths diverging.
"""

from __future__ import annotations

import random
from typing import List

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.common.records import Feedback
from repro.core.registry import default_registry
from repro.models.base import ReputationModel

REGISTRY = default_registry(rng_seed=0)
MODEL_NAMES = REGISTRY.names()
#: Referral-network adaptation mutates weights on query, so consecutive
#: queries legitimately differ (same exemption as test_properties).
QUERY_MUTATING = {"yolum_singh"}

RATERS = [f"r{i}" for i in range(6)]
RATED = ["svc-a", "svc-b", "svc-c", "svc-d"]
#: Queried set includes an id no feedback ever mentions — the cache
#: index maps must not choke on (or invent evidence for) unknowns.
QUERIED = RATED + ["never-seen"]


@st.composite
def chunked_streams(draw) -> List[List[Feedback]]:
    """A feedback stream split into chunks; queries run between chunks,
    so caches get invalidated and re-warmed several times per example."""
    n_chunks = draw(st.integers(1, 4))
    chunks: List[List[Feedback]] = []
    t = 0
    for _ in range(n_chunks):
        size = draw(st.integers(0, 12))
        chunk = []
        for _ in range(size):
            chunk.append(
                Feedback(
                    rater=draw(st.sampled_from(RATERS)),
                    target=draw(st.sampled_from(RATED)),
                    time=float(t),
                    rating=draw(st.floats(0.0, 1.0, allow_nan=False)),
                )
            )
            t += 1
        chunks.append(chunk)
    return chunks


@pytest.mark.parametrize("name", MODEL_NAMES)
@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    chunks=chunked_streams(),
    perspective=st.sampled_from([None, "r0", "r5"]),
)
def test_property_batch_equals_scalar_equals_fresh(name, chunks, perspective):
    """score_many == per-candidate score() == fresh-model replay, at
    every point of an interleaved record/query history."""
    if name in QUERY_MUTATING:
        pytest.skip("query-time adaptation makes consecutive queries differ")
    live = REGISTRY.create(name)
    seen: List[Feedback] = []
    for chunk in chunks:
        live.record_many(chunk)
        seen.extend(chunk)
        now = seen[-1].time + 1.0 if seen else 0.0
        batch = live.score_many(QUERIED, perspective, now)
        assert len(batch) == len(QUERIED)
        scalar = [live.score(t, perspective, now) for t in QUERIED]
        assert batch == pytest.approx(scalar, abs=1e-9), (
            f"{name}: batched scores diverge from per-candidate scores"
        )
        fresh = REGISTRY.create(name)
        fresh.record_many(seen)
        fresh_batch = fresh.score_many(QUERIED, perspective, now)
        assert batch == pytest.approx(fresh_batch, abs=1e-9), (
            f"{name}: warm incremental scores diverge from a cold replay"
        )


@pytest.mark.parametrize("name", MODEL_NAMES)
@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(chunks=chunked_streams())
def test_property_batch_matches_base_fallback(name, chunks):
    """A custom score_many kernel must return exactly what the
    base-class score() loop would (the naive reference path)."""
    if name in QUERY_MUTATING:
        pytest.skip("query-time adaptation makes consecutive queries differ")
    model = REGISTRY.create(name)
    for chunk in chunks:
        model.record_many(chunk)
    now = float(sum(len(c) for c in chunks)) + 1.0
    batch = model.score_many(QUERIED, "r0", now)
    fallback = ReputationModel.score_many(model, QUERIED, "r0", now)
    assert batch == pytest.approx(fallback, abs=1e-9)


#: Models whose score_many runs a columnar numpy kernel over the shared
#: EventStore; each also keeps a scalar replay path as the reference.
COLUMNAR = [
    "amazon", "beta", "ebay", "histos", "maximilien_singh", "peertrust",
    "sporas", "wang_vassileva",
]
#: Subset exposing the pre-columnar python batch path for three-way checks.
WITH_REFERENCE = ["beta", "ebay", "sporas", "peertrust", "wang_vassileva"]
FACET_NAMES = ["latency", "accuracy", "cost"]


def _random_stream(
    rng, n: int, raters: List[str], targets: List[str], facets: bool = False
) -> List[Feedback]:
    stream = []
    for t in range(n):
        facet_ratings = {}
        if facets and rng.random() < 0.5:
            for facet in rng.sample(FACET_NAMES, rng.randint(1, 3)):
                facet_ratings[facet] = rng.random()
        stream.append(
            Feedback(
                rater=rng.choice(raters),
                target=rng.choice(targets),
                time=float(t) if rng.random() < 0.8 else float(rng.randint(0, n)),
                rating=rng.random(),
                facet_ratings=facet_ratings,
            )
        )
    return stream


def _assert_three_way_parity(name, model, seen, perspectives, now):
    """Columnar kernel == base score() loop == cold replay, to 1e-9."""
    for persp in perspectives:
        batch = model.score_many(QUERIED, persp, now)
        fallback = ReputationModel.score_many(model, QUERIED, persp, now)
        assert batch == pytest.approx(fallback, abs=1e-9), (
            f"{name}: columnar kernel diverges from scalar loop ({persp=})"
        )
        fresh = REGISTRY.create(name)
        fresh.record_many(seen)
        assert fresh.score_many(QUERIED, persp, now) == pytest.approx(
            batch, abs=1e-9
        ), f"{name}: warm kernel diverges from cold replay ({persp=})"
        if hasattr(model, "score_many_reference"):
            reference = model.score_many_reference(QUERIED, persp, now)
            assert batch == pytest.approx(reference, abs=1e-9), (
                f"{name}: kernel diverges from reference batch path ({persp=})"
            )


class TestSeededColumnarParity:
    """Rotating-seed randomized parity sweeps (sklearn's
    global_random_seed idiom: must hold for every seed in [0, 99])."""

    @pytest.mark.parametrize("name", COLUMNAR)
    def test_disjoint_stream_parity(self, name, global_random_seed):
        rng = random.Random(global_random_seed)
        model = REGISTRY.create(name)
        seen: List[Feedback] = []
        for _ in range(3):
            chunk = _random_stream(
                rng, rng.randint(0, 40), RATERS, RATED, facets=True
            )
            model.record_many(chunk)
            seen.extend(chunk)
            now = (max((f.time for f in seen), default=0.0)) + 1.0
            _assert_three_way_parity(
                name, model, seen, [None, "r0", "never-seen"], now
            )

    @pytest.mark.parametrize("name", COLUMNAR)
    def test_coupled_stream_parity(self, name, global_random_seed):
        """Raters that are also rated couple the entity graph (Sporas'
        rank kernel must detect this and fall back to scalar replay)."""
        rng = random.Random(global_random_seed)
        everyone = RATERS + RATED
        model = REGISTRY.create(name)
        seen = _random_stream(rng, rng.randint(10, 50), everyone, everyone)
        model.record_many(seen)
        now = max(f.time for f in seen) + 1.0
        _assert_three_way_parity(name, model, seen, [None, "r0"], now)

    @pytest.mark.parametrize("name", COLUMNAR)
    def test_chunk_size_invariance(self, name, global_random_seed):
        """Scores are bitwise independent of the store's chunking."""
        from repro.store import EventStore

        rng = random.Random(global_random_seed)
        seen = _random_stream(rng, 60, RATERS, RATED, facets=True)
        scores = []
        for chunk_size in (1, 7, 64, 4096):
            model = REGISTRY.create(name)
            model._store = EventStore(chunk_size=chunk_size)
            model.record_many(seen)
            scores.append(model.score_many(QUERIED, "r0", 61.0))
        assert all(s == scores[0] for s in scores[1:]), name

    def test_wang_recommendations_and_facet_weights(self, global_random_seed):
        from repro.models.wang_vassileva import WangVassilevaModel

        rng = random.Random(global_random_seed)
        model = WangVassilevaModel(
            facet_weights={"latency": 2.0, "accuracy": 1.0}
        )
        mirror = WangVassilevaModel(
            facet_weights={"latency": 2.0, "accuracy": 1.0}
        )
        seen = _random_stream(rng, 40, RATERS, RATED, facets=True)
        for i, fb in enumerate(seen):
            model.record(fb)
            if i % 5 == 0:
                # Recommenders drawn from the rated pool too: a pair
                # whose target also receives feedback from other raters
                # exercises the recommendation-only-pair pooling path.
                args = (
                    rng.choice(RATERS),
                    rng.choice(RATERS + RATED),
                    rng.random(),
                    rng.random(),
                )
                model.record_recommendation(*args)
                mirror.record_recommendation(*args)
        mirror.record_many(seen)
        # Query everyone — recommenders included — so pair-universe
        # mismatches between kernel and scalar paths can't hide.
        queried = QUERIED + RATERS
        for persp in (None, "r0", "r5", "never-seen"):
            batch = model.score_many(queried, persp, 41.0)
            assert batch == pytest.approx(
                ReputationModel.score_many(model, queried, persp, 41.0),
                abs=1e-9,
            )
            assert batch == pytest.approx(
                model.score_many_reference(queried, persp, 41.0), abs=1e-9
            )
            # Recommendation ordering relative to ratings doesn't matter.
            assert mirror.score_many(queried, persp, 41.0) == pytest.approx(
                batch, abs=1e-9
            )

    def test_wang_recommendation_only_pair_parity(self):
        """Regression: an entity named only as a *recommender* joins the
        pooled reputation as an empty partner model (trust 0.5) on every
        path — kernel, scalar score(), and the batch reference alike."""
        from repro.models.wang_vassileva import WangVassilevaModel

        model = WangVassilevaModel()
        model.record(Feedback(rater="c", target="x", time=0.0, rating=1.0))
        model.record(Feedback(rater="c", target="x", time=1.0, rating=1.0))
        model.record_recommendation("a", "x", 0.8, 0.8)
        batch = model.score_many(["x"], "b", 2.0)
        # Pooled over b's view: c's 0.75 and a's empty 0.5, equal weight.
        assert batch == pytest.approx([0.625], abs=1e-9)
        assert batch == pytest.approx(
            [model.score("x", "b", 2.0)], abs=1e-9
        )
        assert batch == pytest.approx(
            model.score_many_reference(["x"], "b", 2.0), abs=1e-9
        )

    def test_peertrust_tvm_parity(self, global_random_seed):
        from repro.models.peertrust import CredibilityMeasure, PeerTrustModel

        rng = random.Random(global_random_seed)
        model = PeerTrustModel(
            credibility=CredibilityMeasure.TVM, window=8, tvm_depth=3
        )
        seen = _random_stream(rng, rng.randint(20, 60), RATERS, RATED)
        model.record_many(seen)
        now = max(f.time for f in seen) + 1.0
        for persp in (None, "r0", "never-seen"):
            batch = model.score_many(QUERIED, persp, now)
            assert batch == pytest.approx(
                ReputationModel.score_many(model, QUERIED, persp, now),
                abs=1e-9,
            )
            assert batch == pytest.approx(
                model.score_many_reference(QUERIED, persp, now), abs=1e-9
            )

    def test_amazon_votes_parity(self, global_random_seed):
        from repro.models.amazon import AmazonModel

        rng = random.Random(global_random_seed)
        model = AmazonModel()
        seen = _random_stream(rng, 40, RATERS, RATED)
        # votes[i] applies right after seen[i] is recorded — a vote only
        # reaches the reviews existing at vote time, so the cold replay
        # must interleave identically.
        votes = {}
        for i, fb in enumerate(seen):
            model.record(fb)
            if i % 4 == 0:
                vote = (rng.choice(RATED), fb.rater, rng.randint(1, 3))
                model.vote_helpful(*vote)
                votes[i] = vote
        now = max(f.time for f in seen) + 1.0
        batch = model.score_many(QUERIED, None, now)
        assert batch == pytest.approx(
            ReputationModel.score_many(model, QUERIED, None, now), abs=1e-9
        )
        fresh = AmazonModel()
        for i, fb in enumerate(seen):
            fresh.record(fb)
            if i in votes:
                fresh.vote_helpful(*votes[i])
        assert fresh.score_many(QUERIED, None, now) == pytest.approx(
            batch, abs=1e-9
        )


@pytest.mark.parametrize("name", MODEL_NAMES)
def test_score_many_empty_and_rank_shape(name):
    model = REGISTRY.create(name)
    assert model.score_many([]) == []
    model.record_many(
        [
            Feedback(rater=f"r{i % 3}", target=RATED[i % 4], time=float(i),
                     rating=(i % 10) / 10.0)
            for i in range(20)
        ]
    )
    ranking = model.rank(QUERIED, perspective="r0", now=21.0)
    assert sorted(st_.target for st_ in ranking) == sorted(QUERIED)
    scores = [st_.score for st_ in ranking]
    assert scores == sorted(scores, reverse=True)
