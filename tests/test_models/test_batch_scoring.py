"""Batch-vs-scalar scoring equivalence across the whole registry.

The batch ranking API (``score_many``) and the incremental caches
behind the graph models must be *pure optimizations*: under any
interleaving of feedback and queries, the batched scores, the
per-candidate scalar scores, and the scores of a fresh model replaying
the same history have to agree to 1e-9.  A stale dirty flag, a missed
invalidation, or a warm start landing on a different fixed point shows
up exactly as one of these three paths diverging.
"""

from __future__ import annotations

from typing import List

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.common.records import Feedback
from repro.core.registry import default_registry
from repro.models.base import ReputationModel

REGISTRY = default_registry(rng_seed=0)
MODEL_NAMES = REGISTRY.names()
#: Referral-network adaptation mutates weights on query, so consecutive
#: queries legitimately differ (same exemption as test_properties).
QUERY_MUTATING = {"yolum_singh"}

RATERS = [f"r{i}" for i in range(6)]
RATED = ["svc-a", "svc-b", "svc-c", "svc-d"]
#: Queried set includes an id no feedback ever mentions — the cache
#: index maps must not choke on (or invent evidence for) unknowns.
QUERIED = RATED + ["never-seen"]


@st.composite
def chunked_streams(draw) -> List[List[Feedback]]:
    """A feedback stream split into chunks; queries run between chunks,
    so caches get invalidated and re-warmed several times per example."""
    n_chunks = draw(st.integers(1, 4))
    chunks: List[List[Feedback]] = []
    t = 0
    for _ in range(n_chunks):
        size = draw(st.integers(0, 12))
        chunk = []
        for _ in range(size):
            chunk.append(
                Feedback(
                    rater=draw(st.sampled_from(RATERS)),
                    target=draw(st.sampled_from(RATED)),
                    time=float(t),
                    rating=draw(st.floats(0.0, 1.0, allow_nan=False)),
                )
            )
            t += 1
        chunks.append(chunk)
    return chunks


@pytest.mark.parametrize("name", MODEL_NAMES)
@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    chunks=chunked_streams(),
    perspective=st.sampled_from([None, "r0", "r5"]),
)
def test_property_batch_equals_scalar_equals_fresh(name, chunks, perspective):
    """score_many == per-candidate score() == fresh-model replay, at
    every point of an interleaved record/query history."""
    if name in QUERY_MUTATING:
        pytest.skip("query-time adaptation makes consecutive queries differ")
    live = REGISTRY.create(name)
    seen: List[Feedback] = []
    for chunk in chunks:
        live.record_many(chunk)
        seen.extend(chunk)
        now = seen[-1].time + 1.0 if seen else 0.0
        batch = live.score_many(QUERIED, perspective, now)
        assert len(batch) == len(QUERIED)
        scalar = [live.score(t, perspective, now) for t in QUERIED]
        assert batch == pytest.approx(scalar, abs=1e-9), (
            f"{name}: batched scores diverge from per-candidate scores"
        )
        fresh = REGISTRY.create(name)
        fresh.record_many(seen)
        fresh_batch = fresh.score_many(QUERIED, perspective, now)
        assert batch == pytest.approx(fresh_batch, abs=1e-9), (
            f"{name}: warm incremental scores diverge from a cold replay"
        )


@pytest.mark.parametrize("name", MODEL_NAMES)
@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(chunks=chunked_streams())
def test_property_batch_matches_base_fallback(name, chunks):
    """A custom score_many kernel must return exactly what the
    base-class score() loop would (the naive reference path)."""
    if name in QUERY_MUTATING:
        pytest.skip("query-time adaptation makes consecutive queries differ")
    model = REGISTRY.create(name)
    for chunk in chunks:
        model.record_many(chunk)
    now = float(sum(len(c) for c in chunks)) + 1.0
    batch = model.score_many(QUERIED, "r0", now)
    fallback = ReputationModel.score_many(model, QUERIED, "r0", now)
    assert batch == pytest.approx(fallback, abs=1e-9)


@pytest.mark.parametrize("name", MODEL_NAMES)
def test_score_many_empty_and_rank_shape(name):
    model = REGISTRY.create(name)
    assert model.score_many([]) == []
    model.record_many(
        [
            Feedback(rater=f"r{i % 3}", target=RATED[i % 4], time=float(i),
                     rating=(i % 10) / 10.0)
            for i in range(20)
        ]
    )
    ranking = model.rank(QUERIED, perspective="r0", now=21.0)
    assert sorted(st_.target for st_ in ranking) == sorted(QUERIED)
    scores = [st_.score for st_ in ranking]
    assert scores == sorted(scores, reverse=True)
