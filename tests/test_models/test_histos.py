"""Tests for Histos personalized reputation."""

import pytest

from repro.common.errors import ConfigurationError
from repro.models.histos import HistosModel

from tests.conftest import feedback


class TestHistos:
    def test_direct_rating_wins(self):
        model = HistosModel()
        model.record(feedback(rater="alice", target="svc", rating=0.9))
        assert model.score("svc", perspective="alice") == 0.9

    def test_latest_direct_rating_wins(self):
        model = HistosModel()
        model.record(feedback(rater="alice", target="svc", time=0.0,
                              rating=0.2))
        model.record(feedback(rater="alice", target="svc", time=5.0,
                              rating=0.8))
        assert model.score("svc", perspective="alice") == 0.8

    def test_transitive_trust_one_hop(self):
        # alice trusts bob 0.8; bob rates svc 1.0 -> alice sees 1.0
        # (weights only select among neighbours, values propagate).
        model = HistosModel()
        model.record(feedback(rater="alice", target="bob", rating=0.8))
        model.record(feedback(rater="bob", target="svc", rating=1.0))
        assert model.score("svc", perspective="alice") == pytest.approx(1.0)

    def test_transitive_weighting_two_witnesses(self):
        model = HistosModel()
        model.record(feedback(rater="alice", target="bob", rating=0.9))
        model.record(feedback(rater="alice", target="carol", rating=0.1))
        model.record(feedback(rater="bob", target="svc", rating=1.0))
        model.record(feedback(rater="carol", target="svc", rating=0.0))
        # Bob's strongly-trusted opinion dominates.
        score = model.score("svc", perspective="alice")
        assert score == pytest.approx((0.9 * 1.0 + 0.1 * 0.0) / 1.0)

    def test_unreachable_target_gets_prior(self):
        model = HistosModel(prior=0.5)
        model.record(feedback(rater="alice", target="bob", rating=0.9))
        assert model.score("mystery", perspective="alice") == 0.5

    def test_depth_limit_respected(self):
        model = HistosModel(max_depth=2)
        # Chain alice -> b1 -> b2 -> b3 -> svc is 4 hops: too deep.
        model.record(feedback(rater="alice", target="b1", rating=1.0))
        model.record(feedback(rater="b1", target="b2", rating=1.0))
        model.record(feedback(rater="b2", target="b3", rating=1.0))
        model.record(feedback(rater="b3", target="svc", rating=1.0))
        assert model.score("svc", perspective="alice") == 0.5  # prior

    def test_cycles_do_not_loop(self):
        model = HistosModel()
        model.record(feedback(rater="a", target="b", rating=0.9))
        model.record(feedback(rater="b", target="a", rating=0.9))
        model.record(feedback(rater="b", target="svc", rating=0.7))
        assert model.score("svc", perspective="a") == pytest.approx(0.7)

    def test_distrusted_neighbors_excluded(self):
        model = HistosModel()
        model.record(feedback(rater="alice", target="mallory", rating=0.0))
        model.record(feedback(rater="mallory", target="svc", rating=1.0))
        # Zero-weight edge contributes nothing -> prior.
        assert model.score("svc", perspective="alice") == 0.5

    def test_personalization_differs_between_roots(self):
        model = HistosModel()
        model.record(feedback(rater="alice", target="bob", rating=1.0))
        model.record(feedback(rater="eve", target="carol", rating=1.0))
        model.record(feedback(rater="bob", target="svc", rating=0.9))
        model.record(feedback(rater="carol", target="svc", rating=0.1))
        assert model.score("svc", perspective="alice") > model.score(
            "svc", perspective="eve"
        )

    def test_global_fallback_without_perspective(self):
        model = HistosModel()
        model.record(feedback(rater="a", target="svc", rating=0.2))
        model.record(feedback(rater="b", target="svc", rating=0.8))
        assert model.score("svc") == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            HistosModel(max_depth=0)
        with pytest.raises(ConfigurationError):
            HistosModel(prior=2.0)
