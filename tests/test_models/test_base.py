"""Tests for the ReputationModel base-class defaults."""

from typing import Optional

from repro.common.ids import EntityId
from repro.models.base import ReputationModel, ScoredTarget

from tests.conftest import feedback


class FixedScores(ReputationModel):
    """Minimal model: scores from a dict, records counted."""

    name = "fixed"

    def __init__(self, scores):
        self.scores = scores
        self.recorded = []

    def record(self, fb) -> None:
        self.recorded.append(fb)

    def score(self, target: EntityId, perspective=None,
              now: Optional[float] = None) -> float:
        return self.scores.get(target, 0.5)


class TestBaseDefaults:
    def test_record_many(self):
        model = FixedScores({})
        model.record_many([feedback(), feedback(rater="c1")])
        assert len(model.recorded) == 2

    def test_rank_sorted_desc_with_deterministic_ties(self):
        model = FixedScores({"a": 0.5, "b": 0.9, "c": 0.5})
        ranking = model.rank(["c", "a", "b"])
        assert ranking == [
            ScoredTarget("b", 0.9),
            ScoredTarget("a", 0.5),
            ScoredTarget("c", 0.5),
        ]

    def test_best(self):
        model = FixedScores({"a": 0.2, "b": 0.7})
        assert model.best(["a", "b"]) == "b"
        assert model.best([]) is None

    def test_rank_empty(self):
        assert FixedScores({}).rank([]) == []

    def test_repr(self):
        assert "FixedScores" in repr(FixedScores({}))
