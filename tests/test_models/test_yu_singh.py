"""Tests for the Yu & Singh belief model and Dempster combination."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError
from repro.models.yu_singh import (
    Testimony,
    YuSinghModel,
    dempster_combine,
    discount,
)

from tests.conftest import feedback


@st.composite
def belief_masses(draw):
    bt = draw(st.floats(0.0, 1.0))
    bn = draw(st.floats(0.0, 1.0 - bt))
    return (bt, bn, 1.0 - bt - bn)


class TestDempsterCombine:
    def test_vacuous_is_identity(self):
        m = (0.6, 0.1, 0.3)
        assert dempster_combine(m, (0.0, 0.0, 1.0)) == pytest.approx(m)

    def test_agreement_reinforces(self):
        m = (0.6, 0.0, 0.4)
        combined = dempster_combine(m, m)
        assert combined[0] > 0.6

    def test_total_conflict_raises(self):
        with pytest.raises(ConfigurationError):
            dempster_combine((1.0, 0.0, 0.0), (0.0, 1.0, 0.0))

    def test_invalid_mass_rejected(self):
        with pytest.raises(ConfigurationError):
            dempster_combine((0.9, 0.9, 0.9), (0.0, 0.0, 1.0))

    @given(belief_masses(), belief_masses())
    def test_property_valid_output(self, m1, m2):
        bt1, bn1, _ = m1
        bt2, bn2, _ = m2
        conflict = bt1 * bn2 + bn1 * bt2
        if conflict >= 1.0 - 1e-9:
            return  # total conflict raises; tested separately
        bt, bn, u = dempster_combine(m1, m2)
        assert bt >= -1e-9 and bn >= -1e-9 and u >= -1e-9
        assert math.isclose(bt + bn + u, 1.0, rel_tol=1e-6)

    @given(belief_masses(), belief_masses())
    def test_property_commutative(self, m1, m2):
        bt1, bn1, _ = m1
        bt2, bn2, _ = m2
        if bt1 * bn2 + bn1 * bt2 >= 1.0 - 1e-9:
            return
        a = dempster_combine(m1, m2)
        b = dempster_combine(m2, m1)
        assert a == pytest.approx(b)


class TestDiscount:
    def test_full_factor_is_identity(self):
        m = (0.5, 0.2, 0.3)
        assert discount(m, 1.0) == pytest.approx(m)

    def test_zero_factor_is_vacuous(self):
        assert discount((0.5, 0.5, 0.0), 0.0) == (0.0, 0.0, 1.0)

    def test_mass_moves_to_uncertainty(self):
        bt, bn, u = discount((0.6, 0.2, 0.2), 0.5)
        assert bt == 0.3 and bn == 0.1 and u == pytest.approx(0.6)

    def test_invalid_factor(self):
        with pytest.raises(ConfigurationError):
            discount((0.5, 0.2, 0.3), 1.5)


class TestYuSinghModel:
    def test_local_mass_from_history(self):
        model = YuSinghModel(upper=0.7, lower=0.3)
        for i, r in enumerate([0.9, 0.9, 0.1, 0.5]):
            model.record(feedback(rater="me", target="svc", time=float(i),
                                  rating=r))
        bt, bn, u = model.local_mass("me", "svc")
        assert bt == 0.5 and bn == 0.25 and u == 0.25

    def test_history_window(self):
        model = YuSinghModel(history=2)
        for i, r in enumerate([0.1, 0.1, 0.9, 0.9]):
            model.record(feedback(rater="me", target="svc", time=float(i),
                                  rating=r))
        bt, bn, u = model.local_mass("me", "svc")
        assert bt == 1.0  # only the last 2 ratings count

    def test_sufficient_local_experience_skips_witnesses(self):
        model = YuSinghModel(min_local=3)
        for i in range(5):
            model.record(feedback(rater="me", target="svc", time=float(i),
                                  rating=0.9))
        # A badmouthing witness should not matter.
        for i in range(5):
            model.record(feedback(rater="liar", target="svc",
                                  time=float(i), rating=0.0))
        assert model.score("svc", perspective="me") > 0.9

    def test_witnesses_fill_in_for_newcomer(self):
        model = YuSinghModel()
        for i in range(5):
            model.record(feedback(rater="w1", target="svc", time=float(i),
                                  rating=0.9))
            model.record(feedback(rater="w2", target="svc", time=float(i),
                                  rating=0.9))
        assert model.score("svc", perspective="newcomer") > 0.7

    def test_no_evidence_scores_half(self):
        assert YuSinghModel().score("svc", perspective="me") == 0.5

    def test_chain_length_discounts_testimony(self):
        model = YuSinghModel(referral_discount=0.5)
        for i in range(10):
            model.record(feedback(rater="w", target="svc", time=float(i),
                                  rating=1.0))
        near = model.combine_testimonies(
            (0.0, 0.0, 1.0), [model.testimony_from("w", "svc", 1)]
        )
        far = model.combine_testimonies(
            (0.0, 0.0, 1.0), [model.testimony_from("w", "svc", 4)]
        )
        assert near[0] > far[0]

    def test_conflicting_testimony_dropped_not_fatal(self):
        model = YuSinghModel(referral_discount=1.0)
        combined = model.combine_testimonies(
            (1.0, 0.0, 0.0),
            [Testimony(witness="w", mass=(0.0, 1.0, 0.0), chain_length=0)],
        )
        assert combined == (1.0, 0.0, 0.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            YuSinghModel(upper=0.3, lower=0.7)
        with pytest.raises(ConfigurationError):
            YuSinghModel(history=0)
        with pytest.raises(ConfigurationError):
            YuSinghModel(referral_discount=0.0)

    def test_score_with_referrals_over_network(self):
        from repro.p2p.referral import ReferralNetwork

        network = ReferralNetwork(degree=4, branching=3, rng=1)
        model = YuSinghModel()
        agents = [f"agent-{i:02d}" for i in range(15)]
        for agent in agents:
            network.join(agent)
        # A witness somewhere in the network has strong evidence.
        for t in range(8):
            fb = feedback(rater="agent-07", target="svc", time=float(t),
                          rating=0.95)
            model.record(fb)
            network.record_experience("agent-07", fb)
        trust, messages = model.score_with_referrals(
            network, "agent-00", "svc", depth_limit=6
        )
        assert trust > 0.6
        assert messages > 0

    def test_score_with_referrals_prefers_own_experience(self):
        from repro.p2p.referral import ReferralNetwork

        network = ReferralNetwork(degree=2, rng=2)
        model = YuSinghModel(min_local=3)
        for agent in ["a", "b", "c"]:
            network.join(agent)
        for t in range(5):
            model.record(feedback(rater="a", target="svc", time=float(t),
                                  rating=0.9))
        trust, messages = model.score_with_referrals(network, "a", "svc")
        assert trust > 0.8
        assert messages == 0  # no query needed

    def test_degree_of_trust(self):
        assert YuSinghModel.degree_of_trust((1.0, 0.0, 0.0)) == 1.0
        assert YuSinghModel.degree_of_trust((0.0, 1.0, 0.0)) == 0.0
        assert YuSinghModel.degree_of_trust((0.0, 0.0, 1.0)) == 0.5
