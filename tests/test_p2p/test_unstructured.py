"""Tests for the unstructured flooding overlay."""

import pytest

from repro.common.errors import ConfigurationError, UnknownEntityError
from repro.common.records import Feedback
from repro.p2p.unstructured import UnstructuredOverlay
from repro.sim.network import Network


def build(n=20, degree=3, seed=0, network=None):
    overlay = UnstructuredOverlay(degree=degree, network=network, rng=seed)
    for i in range(n):
        overlay.join(f"peer-{i:02d}")
    return overlay


class TestMembership:
    def test_join_wires_neighbors(self):
        overlay = build(10, degree=3)
        for peer in overlay.peers():
            assert len(peer.neighbors) >= 1

    def test_duplicate_join_rejected(self):
        overlay = build(3)
        with pytest.raises(ConfigurationError):
            overlay.join("peer-00")

    def test_leave_unlinks(self):
        overlay = build(5)
        overlay.leave("peer-00")
        assert "peer-00" not in overlay
        for peer in overlay.peers():
            assert "peer-00" not in peer.neighbors

    def test_unknown_peer(self):
        with pytest.raises(UnknownEntityError):
            build(2).peer("nope")

    def test_first_peer_has_no_neighbors(self):
        overlay = UnstructuredOverlay(rng=0)
        first = overlay.join("solo")
        assert first.neighbors == set()


class TestFlood:
    def test_ttl_zero_reaches_only_origin(self):
        overlay = build(10)
        visited = []
        reached, messages = overlay.flood(
            "peer-00", 0, lambda p: visited.append(p.peer_id)
        )
        assert visited == ["peer-00"]
        assert messages == 0

    def test_large_ttl_reaches_connected_component(self):
        overlay = build(20, degree=3)
        reached, _ = overlay.flood("peer-00", 20, lambda p: None)
        assert reached == 20

    def test_offline_peers_do_not_forward(self):
        overlay = build(20, degree=2, seed=1)
        # Knock half the overlay offline.
        for peer in overlay.peers()[::2]:
            peer.online = False
        reached, _ = overlay.flood("peer-01", 20, lambda p: None)
        assert reached < 20

    def test_negative_ttl_rejected(self):
        with pytest.raises(ConfigurationError):
            build(3).flood("peer-00", -1, lambda p: None)

    def test_message_accounting(self):
        net = Network(rng=0)
        overlay = build(10, network=net)
        overlay.flood("peer-00", 5, lambda p: None)
        assert net.stats.total_messages > 0


class TestPollOpinions:
    def test_collects_deposited_feedback(self):
        overlay = build(15, degree=3)
        fb = Feedback(rater="peer-05", target="resource-x", time=0.0,
                      rating=0.9)
        overlay.deposit("peer-05", fb)
        opinions, messages = overlay.poll_opinions(
            "peer-00", "resource-x", ttl=15
        )
        assert opinions == [fb]
        assert messages > 0

    def test_no_opinions_when_none_deposited(self):
        overlay = build(10)
        opinions, _ = overlay.poll_opinions("peer-00", "resource-x", ttl=10)
        assert opinions == []

    def test_poll_includes_own_store(self):
        overlay = build(5)
        fb = Feedback(rater="peer-00", target="r", time=0.0, rating=0.5)
        overlay.deposit("peer-00", fb)
        opinions, _ = overlay.poll_opinions("peer-00", "r", ttl=0)
        assert opinions == [fb]
