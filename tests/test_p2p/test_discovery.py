"""Tests for decentralized service discovery over P-Grid."""

import pytest

from repro.common.errors import RegistryError
from repro.p2p.discovery import DistributedServiceRegistry
from repro.p2p.pgrid import PGrid
from repro.services.description import QoSAdvertisement, ServiceDescription
from repro.sim.network import Network


def peer_ids(n=32):
    return [f"peer-{i:03d}" for i in range(n)]


def desc(service="svc-0", category="weather"):
    return ServiceDescription(service=service, provider="prov",
                              category=category)


def build(network=None):
    grid = PGrid(peer_ids(), replication=2, network=network, rng=0)
    return grid, DistributedServiceRegistry(grid)


class TestPublishSearch:
    def test_roundtrip(self):
        _, registry = build()
        registry.publish("peer-000", desc())
        found, messages = registry.search("peer-031", "weather")
        assert [d.service for d in found] == ["svc-0"]
        assert messages >= 1

    def test_search_from_every_origin(self):
        _, registry = build()
        registry.publish("peer-000", desc())
        for origin in peer_ids():
            found, _ = registry.search(origin, "weather")
            assert len(found) == 1, origin

    def test_categories_are_disjoint(self):
        _, registry = build()
        registry.publish("peer-000", desc("a", category="weather"))
        registry.publish("peer-001", desc("b", category="flights"))
        weather, _ = registry.search("peer-002", "weather")
        flights, _ = registry.search("peer-002", "flights")
        assert [d.service for d in weather] == ["a"]
        assert [d.service for d in flights] == ["b"]

    def test_republish_replaces(self):
        _, registry = build()
        registry.publish("peer-000", desc(service="svc-0"))
        registry.publish(
            "peer-000",
            ServiceDescription(service="svc-0", provider="prov",
                               category="weather", version=2),
        )
        found, _ = registry.search("peer-001", "weather")
        assert len(found) == 1
        assert found[0].version == 2

    def test_unknown_category_empty(self):
        _, registry = build()
        found, _ = registry.search("peer-000", "nothing-here")
        assert found == []

    def test_unpublish(self):
        _, registry = build()
        registry.publish("peer-000", desc())
        registry.unpublish("peer-001", "svc-0", "weather")
        found, _ = registry.search("peer-002", "weather")
        assert found == []


class TestAdvertisements:
    def test_advertisement_roundtrip(self):
        _, registry = build()
        ad = QoSAdvertisement(service="svc-0",
                              claimed={"availability": 0.9})
        registry.publish("peer-000", desc(), advertisement=ad)
        fetched, _ = registry.advertisement("peer-031", "svc-0", "weather")
        assert fetched is not None
        assert fetched.claimed["availability"] == 0.9

    def test_mismatched_advertisement_rejected(self):
        _, registry = build()
        ad = QoSAdvertisement(service="other", claimed={})
        with pytest.raises(RegistryError):
            registry.publish("peer-000", desc(), advertisement=ad)


class TestResilience:
    def test_survives_one_holder_failure(self):
        grid, registry = build()
        registry.publish("peer-000", desc())
        holders = grid.responsible_peers("weather")
        grid.peer(holders[0]).online = False
        origin = next(
            pid for pid in peer_ids()
            if pid not in holders and grid.peer(pid).online
        )
        found, _ = registry.search(origin, "weather")
        assert len(found) == 1

    def test_no_central_hotspot(self):
        net = Network(rng=0)
        grid, registry = build(network=net)
        categories = [f"cat-{i}" for i in range(12)]
        for i, category in enumerate(categories):
            registry.publish(
                peer_ids()[i], desc(f"svc-{i}", category=category)
            )
        for i, category in enumerate(categories):
            registry.search(peer_ids()[-1 - i], category)
        assert net.stats.load_imbalance() < 8.0

    def test_messages_counted(self):
        net = Network(rng=0)
        _, registry = build(network=net)
        registry.publish("peer-000", desc())
        registry.search("peer-001", "weather")
        assert net.stats.by_kind["discovery-publish"] > 0
        assert net.stats.by_kind["discovery-response"] > 0
