"""Stateful property test: P-Grid behaves like a replicated dict.

Hypothesis drives random interleavings of inserts, lookups, dynamic
joins, and single-replica failures; the invariant is that any record
inserted remains retrievable from any online non-responsible origin as
long as at least one replica of its key stays online.
"""

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.common.records import Feedback
from repro.p2p.pgrid import PGrid

N_PEERS = 16
KEYS = [f"key-{i}" for i in range(6)]


class PGridMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.peers = [f"peer-{i:02d}" for i in range(N_PEERS)]
        self.grid = PGrid(self.peers, replication=2, refs_per_level=3,
                          rng=0)
        self.expected = {}  # key -> list of feedback
        self.joined = 0

    def _online_origin(self, key):
        responsible = set(self.grid.responsible_peers(key))
        for peer in self.grid.peers():
            if peer.online and peer.peer_id not in responsible:
                return peer.peer_id
        return None

    def _replicas_online(self, key):
        return any(
            self.grid.peer(pid).online
            for pid in self.grid.responsible_peers(key)
        )

    @rule(key=st.sampled_from(KEYS), rating=st.floats(0.0, 1.0))
    def insert(self, key, rating):
        origin = self._online_origin(key)
        if origin is None or not self._replicas_online(key):
            return
        fb = Feedback(
            rater=origin, target=key,
            time=float(len(self.expected.get(key, []))), rating=rating,
        )
        try:
            self.grid.insert(origin, key, fb)
        except Exception:
            return  # routing refs all offline: acceptable, no state change
        self.expected.setdefault(key, []).append(fb)

    @rule()
    def fail_one_replica(self):
        # Knock out at most one replica per path so data never vanishes.
        for key in KEYS:
            replicas = self.grid.responsible_peers(key)
            online = [
                pid for pid in replicas if self.grid.peer(pid).online
            ]
            if len(online) >= 2:
                self.grid.peer(online[0]).online = False
                return

    @rule()
    def heal_everyone(self):
        for peer in self.grid.peers():
            peer.online = True

    @precondition(lambda self: self.joined < 4)
    @rule()
    def join_newcomer(self):
        self.grid.join(f"new-{self.joined:02d}")
        self.joined += 1

    @invariant()
    def inserted_records_retrievable(self):
        if not hasattr(self, "grid"):
            return
        for key, records in self.expected.items():
            if not self._replicas_online(key):
                continue
            origin = self._online_origin(key)
            if origin is None:
                continue
            try:
                found, _ = self.grid.lookup(origin, key, key)
            except Exception:
                continue  # routing degraded; data integrity untested
            # Every record we inserted while >=1 replica was up must be
            # present at whichever replica answered, up to replica lag
            # (records inserted while THIS replica was down).
            assert len(found) <= len(records)
            for fb in found:
                assert fb in records


# Scope the settings to this state machine only (a global profile
# would leak into every other hypothesis test in the session).
PGridMachine.TestCase.settings = settings(
    max_examples=20, stateful_step_count=30, deadline=None
)

TestPGridStateful = PGridMachine.TestCase
