"""Tests for the Chord-like DHT."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError, RoutingError
from repro.p2p.dht import ChordDHT
from repro.sim.network import Network


def node_ids(n):
    return [f"node-{i:03d}" for i in range(n)]


class TestConstruction:
    def test_needs_nodes(self):
        with pytest.raises(ConfigurationError):
            ChordDHT([])

    def test_duplicate_rejected(self):
        with pytest.raises(ConfigurationError):
            ChordDHT(["a", "a"])

    def test_positions_unique(self):
        dht = ChordDHT(node_ids(100), bits=16)
        positions = [dht.node(n).position for n in node_ids(100)]
        assert len(set(positions)) == 100


class TestLookup:
    def test_lookup_reaches_owner(self):
        dht = ChordDHT(node_ids(64), bits=16)
        owner, hops = dht.lookup("node-000", "some-key")
        assert owner == dht.responsible_node("some-key")

    def test_lookup_from_any_origin_agrees(self):
        dht = ChordDHT(node_ids(32), bits=16)
        owners = {
            dht.lookup(origin, "key-q")[0] for origin in node_ids(32)
        }
        assert len(owners) == 1

    def test_hops_logarithmic(self):
        dht = ChordDHT(node_ids(128), bits=16)
        worst = max(
            dht.lookup("node-000", f"key-{i}")[1] for i in range(50)
        )
        # O(log N): 128 nodes -> expect well under 16 hops.
        assert worst <= 16

    def test_offline_owner_skipped_to_successor(self):
        dht = ChordDHT(node_ids(16), bits=16)
        owner = dht.responsible_node("key-x")
        dht.set_online(owner, False)
        origin = next(n for n in node_ids(16) if n != owner)
        found, _ = dht.lookup(origin, "key-x")
        assert found != owner
        assert dht.node(found).online

    def test_all_offline_raises(self):
        dht = ChordDHT(node_ids(4), bits=16)
        for n in node_ids(4):
            dht.set_online(n, False)
        with pytest.raises(RoutingError):
            dht.lookup("node-000", "key")

    @settings(max_examples=25, deadline=None)
    @given(st.text(min_size=1, max_size=20))
    def test_property_lookup_matches_responsible(self, key):
        dht = ChordDHT(node_ids(32), bits=16)
        owner, _ = dht.lookup("node-000", key)
        assert owner == dht.responsible_node(key)


class TestStorage:
    def test_put_get_roundtrip(self):
        dht = ChordDHT(node_ids(32), bits=16)
        dht.put("node-000", "trust:alice", 0.9)
        dht.put("node-001", "trust:alice", 0.7)
        values, _ = dht.get("node-031", "trust:alice")
        assert sorted(values) == [0.7, 0.9]

    def test_get_missing_key(self):
        dht = ChordDHT(node_ids(8), bits=16)
        values, _ = dht.get("node-000", "missing")
        assert values == []

    def test_storage_balance(self):
        dht = ChordDHT(node_ids(64), bits=16)
        for i in range(500):
            dht.put("node-000", f"key-{i}", i)
        load = dht.storage_load()
        populated = sum(1 for v in load.values() if v > 0)
        assert populated > 20  # spread across many nodes

    def test_network_accounting(self):
        net = Network(rng=0)
        dht = ChordDHT(node_ids(32), bits=16, network=net)
        dht.put("node-000", "k", 1)
        dht.get("node-001", "k")
        assert net.stats.total_messages > 0
