"""Tests for the P-Grid structured overlay."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError, RoutingError
from repro.common.records import Feedback
from repro.p2p.pgrid import PGrid, shard_path
from repro.sim.network import Network


def peer_ids(n):
    return [f"peer-{i:03d}" for i in range(n)]


def fb(target="svc", rating=0.8):
    return Feedback(rater="peer-000", target=target, time=0.0, rating=rating)


class TestConstruction:
    def test_depth_from_replication(self):
        # 64 peers, replication 2 -> 32 leaf paths -> depth 5
        assert PGrid(peer_ids(64), replication=2, rng=0).depth == 5
        # 64 peers, replication 4 -> depth 4
        assert PGrid(peer_ids(64), replication=4, rng=0).depth == 4

    def test_single_peer_depth_zero(self):
        grid = PGrid(["only"], rng=0)
        assert grid.depth == 0
        assert grid.peer("only").path == ""

    def test_every_path_has_replicas(self):
        grid = PGrid(peer_ids(64), replication=2, rng=0)
        paths = {p.path for p in grid.peers()}
        assert len(paths) == 32
        for path in paths:
            assert len(grid.replicas_for_path(path)) == 2

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ConfigurationError):
            PGrid(["a", "a"], rng=0)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            PGrid([], rng=0)

    def test_references_cover_every_level(self):
        grid = PGrid(peer_ids(32), replication=1, rng=0)
        for peer in grid.peers():
            for level in range(len(peer.path)):
                assert peer.references.get(level), (
                    f"{peer.peer_id} missing refs at level {level}"
                )


class TestRouting:
    def test_route_reaches_responsible_peer(self):
        grid = PGrid(peer_ids(64), replication=2, rng=0)
        target, hops = grid.route("peer-000", "some-service")
        assert target.responsible_for(grid.key_bits("some-service"))
        assert hops <= grid.depth + 2

    def test_route_from_every_origin(self):
        grid = PGrid(peer_ids(32), replication=2, rng=0)
        for origin in peer_ids(32):
            target, hops = grid.route(origin, "svc-x")
            assert target.responsible_for(grid.key_bits("svc-x"))

    def test_hop_count_logarithmic(self):
        grid = PGrid(peer_ids(128), replication=2, rng=0)
        max_hops = 0
        for key in [f"key-{i}" for i in range(30)]:
            _, hops = grid.route("peer-000", key)
            max_hops = max(max_hops, hops)
        assert max_hops <= grid.depth  # <= log2(paths)

    def test_offline_reference_bypassed(self):
        grid = PGrid(peer_ids(64), replication=2, refs_per_level=2, rng=0)
        # Find the first-choice reference of the origin at level 0 and
        # knock it offline; routing must still succeed via alternates.
        origin = grid.peer("peer-000")
        bits = grid.key_bits("svc-y")
        if origin.responsible_for(bits):
            pytest.skip("origin already responsible for the key")
        level = origin.first_mismatch(bits)
        first_ref = origin.references[level][0]
        grid.peer(first_ref).online = False
        target, _ = grid.route("peer-000", "svc-y")
        assert target.responsible_for(bits)

    def test_all_replicas_offline_raises(self):
        grid = PGrid(peer_ids(16), replication=2, refs_per_level=2, rng=0)
        for pid in grid.responsible_peers("svc-z"):
            grid.peer(pid).online = False
        with pytest.raises(RoutingError):
            origin = next(
                p.peer_id
                for p in grid.peers()
                if p.online and not p.responsible_for(grid.key_bits("svc-z"))
            )
            grid.route(origin, "svc-z")

    @settings(max_examples=25, deadline=None)
    @given(st.text(min_size=1, max_size=20))
    def test_property_routing_always_lands_responsible(self, key):
        grid = PGrid(peer_ids(32), replication=2, rng=0)
        target, _ = grid.route("peer-000", key)
        assert target.responsible_for(grid.key_bits(key))


class TestExchangeBootstrap:
    """Aberer's decentralized pairwise-split construction."""

    def build(self, n=64, seed=3):
        return PGrid.build_by_exchanges(
            peer_ids(n), replication=2, rng=seed, max_rounds=500
        )

    def test_trie_refines_to_near_log_depth(self):
        grid = self.build()
        depths = [len(p.path) for p in grid.peers()]
        # 64 peers / replication 2 -> ideal depth 5.
        assert 4 <= min(depths)
        assert max(depths) <= 7

    def test_no_peer_left_covering_everything(self):
        grid = self.build()
        assert all(len(p.path) >= 1 for p in grid.peers())

    def test_routing_correct_from_every_origin(self):
        grid = self.build(n=32)
        record = fb()
        grid.insert("peer-000", "svc", record)
        for origin in peer_ids(32):
            found, _ = grid.lookup(origin, "svc", "svc")
            assert found == [record], origin

    def test_storage_spreads_across_peers(self):
        grid = self.build()
        for i in range(200):
            grid.insert(
                "peer-001", f"k-{i}", fb(target=f"k-{i}")
            )
        load = grid.storage_load()
        assert max(load.values()) < 40  # nobody hoards the key space

    def test_deterministic_given_seed(self):
        a = self.build(seed=9)
        b = self.build(seed=9)
        assert {p.peer_id: p.path for p in a.peers()} == {
            p.peer_id: p.path for p in b.peers()
        }

    def test_exchange_messages_counted(self):
        from repro.sim.network import Network

        net = Network(rng=0)
        PGrid.build_by_exchanges(
            peer_ids(16), replication=2, network=net, rng=0
        )
        assert net.stats.by_kind["pgrid-exchange"] > 0

    def test_single_peer(self):
        grid = PGrid.build_by_exchanges(["solo"], rng=0)
        assert grid.peer("solo").path == ""
        record = fb(target="x")
        grid.insert("solo", "x", record)
        assert grid.lookup("solo", "x", "x")[0] == [record]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PGrid.build_by_exchanges([], rng=0)
        with pytest.raises(ConfigurationError):
            PGrid.build_by_exchanges(["a", "a"], rng=0)


class TestDynamicJoin:
    def test_newcomer_lands_on_a_leaf_path(self):
        grid = PGrid(peer_ids(32), replication=2, rng=0)
        leaf_paths = {p.path for p in grid.peers()}
        newcomer = grid.join("newbie")
        assert newcomer.path in leaf_paths

    def test_newcomer_can_route(self):
        grid = PGrid(peer_ids(32), replication=2, rng=0)
        record = fb()
        grid.insert("peer-000", "svc", record)
        grid.join("newbie")
        found, _ = grid.lookup("newbie", "svc", "svc")
        assert found == [record]

    def test_newcomer_copies_replica_data(self):
        grid = PGrid(peer_ids(32), replication=2, rng=0)
        record = fb()
        grid.insert("peer-000", "svc", record)
        # Join enough peers that some land on svc's path.
        copied = False
        resp_path = grid.peer(grid.responsible_peers("svc")[0]).path
        for j in range(40):
            newcomer = grid.join(f"new-{j:02d}")
            if newcomer.path == resp_path:
                assert newcomer.store.for_target("svc") == [record]
                copied = True
        assert copied

    def test_duplicate_join_rejected(self):
        grid = PGrid(peer_ids(4), rng=0)
        with pytest.raises(ConfigurationError):
            grid.join("peer-000")

    def test_join_into_singleton_grid(self):
        grid = PGrid(["solo"], rng=0)
        newcomer = grid.join("second")
        assert newcomer.path == grid.peer("solo").path == ""

    def test_newcomer_serves_lookups_after_original_replicas_fail(self):
        grid = PGrid(peer_ids(32), replication=2, rng=0)
        record = fb()
        grid.insert("peer-000", "svc", record)
        originals = set(grid.responsible_peers("svc"))
        resp_path = grid.peer(next(iter(originals))).path
        replacement = None
        for j in range(60):
            newcomer = grid.join(f"new-{j:02d}")
            if newcomer.path == resp_path:
                replacement = newcomer
                break
        if replacement is None:
            pytest.skip("random joins never hit the target path")
        for pid in originals:
            grid.peer(pid).online = False
        origin = next(
            p.peer_id for p in grid.peers()
            if p.online and p.peer_id not in originals
            and p.path != resp_path
        )
        found, _ = grid.lookup(origin, "svc", "svc")
        assert found == [record]


class TestStorage:
    def test_insert_replicates(self):
        grid = PGrid(peer_ids(64), replication=2, rng=0)
        grid.insert("peer-000", "svc", fb())
        replicas = grid.responsible_peers("svc")
        for pid in replicas:
            assert len(grid.peer(pid).store.for_target("svc")) == 1

    def test_lookup_finds_inserted(self):
        grid = PGrid(peer_ids(64), replication=2, rng=0)
        record = fb()
        grid.insert("peer-000", "svc", record)
        found, messages = grid.lookup("peer-063", "svc", "svc")
        assert found == [record]
        assert messages >= 1

    def test_lookup_survives_one_replica_failure(self):
        grid = PGrid(peer_ids(64), replication=2, rng=0)
        grid.insert("peer-000", "svc", fb())
        replicas = grid.responsible_peers("svc")
        grid.peer(replicas[0]).online = False
        origin = next(
            p.peer_id for p in grid.peers()
            if p.online and p.peer_id not in replicas
        )
        found, _ = grid.lookup(origin, "svc", "svc")
        assert len(found) == 1

    def test_storage_load_spread(self):
        grid = PGrid(peer_ids(64), replication=2, rng=0)
        for i in range(100):
            grid.insert("peer-000", f"svc-{i}", fb(target=f"svc-{i}"))
        load = grid.storage_load()
        # Data must not all land on one peer.
        assert sum(1 for v in load.values() if v > 0) > 10

    def test_messages_counted_on_network(self):
        net = Network(rng=0)
        grid = PGrid(peer_ids(32), replication=2, network=net, rng=0)
        grid.insert("peer-000", "svc", fb())
        assert net.stats.total_messages > 0


class TestShardAlignment:
    def test_shard_path_is_key_hash_prefix(self):
        from repro.p2p.hashing import to_bits

        for entity in ("svc-0001", "consumer-0000042"):
            for depth in (1, 3, 6):
                assert shard_path(entity, depth) == to_bits(
                    str(entity), depth
                )
        assert shard_path("svc-0001", 0) == ""

    def test_shard_path_matches_range_partition(self):
        from repro.experiments.sharded import shard_of

        for i in range(32):
            entity = f"consumer-{i:07d}"
            for depth in (1, 2, 4):
                assert shard_of(entity, 2 ** depth) == int(
                    shard_path(entity, depth), 2
                )


class TestStorageImbalance:
    def test_empty_grid_is_balanced(self):
        grid = PGrid(peer_ids(8), replication=1, rng=0)
        assert grid.storage_imbalance() == pytest.approx(1.0)

    def test_hot_key_skews_the_ratio(self):
        grid = PGrid(peer_ids(8), replication=1, rng=0)
        key = "svc-hot"
        for _ in range(6):
            grid.insert("peer-000", key, fb(target=key))
        imbalance = grid.storage_imbalance()
        # all records land in one subtree; mean includes empty peers
        assert imbalance > 1.0
        loads = grid.storage_load()
        assert imbalance == pytest.approx(
            max(loads.values()) / (sum(loads.values()) / len(loads))
        )
