"""Tests for deterministic overlay hashing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.p2p.hashing import stable_hash, to_bits


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash("abc") == stable_hash("abc")

    def test_reference_value_is_stable(self):
        # Guards against accidental algorithm changes breaking overlay
        # placement reproducibility.
        assert stable_hash("svc-0001", 16) == stable_hash("svc-0001", 16)
        assert 0 <= stable_hash("svc-0001", 16) < 2 ** 16

    def test_bits_bound_output(self):
        for bits in [1, 8, 32, 64]:
            assert 0 <= stable_hash("x", bits) < 2 ** bits

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            stable_hash("x", 0)
        with pytest.raises(ValueError):
            stable_hash("x", 300)

    @given(st.text(max_size=50), st.integers(1, 64))
    def test_property_in_range(self, key, bits):
        assert 0 <= stable_hash(key, bits) < 2 ** bits


class TestToBits:
    def test_length(self):
        assert len(to_bits("hello", 10)) == 10

    def test_binary_alphabet(self):
        assert set(to_bits("hello", 32)) <= {"0", "1"}

    def test_prefix_consistency(self):
        # Longer keys extend shorter ones (same underlying hash).
        assert to_bits("x", 16).startswith(to_bits("x", 8))

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            to_bits("x", 0)
