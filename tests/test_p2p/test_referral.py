"""Tests for referral networks."""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.records import Feedback
from repro.p2p.referral import ReferralNetwork


def fb(rater, target="svc", rating=0.9):
    return Feedback(rater=rater, target=target, time=0.0, rating=rating)


def build(n=20, degree=4, branching=3, seed=0):
    net = ReferralNetwork(degree=degree, branching=branching, rng=seed)
    for i in range(n):
        net.join(f"agent-{i:02d}")
    return net


class TestMembership:
    def test_join_wires_mutual_links(self):
        net = build(10)
        for agent in net.agents():
            for neighbor in agent.neighbors:
                assert agent.peer_id in net.agent(neighbor).neighbors

    def test_duplicate_join_rejected(self):
        net = build(3)
        with pytest.raises(ConfigurationError):
            net.join("agent-00")


class TestQuery:
    def test_finds_witness_with_experience(self):
        net = build(20, degree=4, branching=4, seed=1)
        net.record_experience("agent-10", fb("agent-10"))
        responses, messages = net.query("agent-00", "svc", depth_limit=6)
        witnesses = {r.witness for r in responses}
        assert "agent-10" in witnesses
        assert messages > 0

    def test_chain_length_recorded(self):
        net = build(20, degree=4, branching=4, seed=1)
        net.record_experience("agent-10", fb("agent-10"))
        responses, _ = net.query("agent-00", "svc", depth_limit=6)
        for r in responses:
            assert r.chain[0] == "agent-00"
            assert r.chain[-1] == r.witness
            assert r.chain_length == len(r.chain) - 1

    def test_depth_limit_bounds_search(self):
        net = build(30, degree=2, branching=1, seed=2)
        net.record_experience("agent-29", fb("agent-29"))
        responses, _ = net.query("agent-00", "svc", depth_limit=1)
        # With branching 1 and depth 1 at most one neighbour is asked.
        assert len(responses) <= 1

    def test_witnesses_answer_instead_of_referring(self):
        net = build(10, degree=9, branching=9, seed=0)
        # Everyone is everyone's neighbour (degree 9 over 10 agents).
        net.record_experience("agent-05", fb("agent-05"))
        responses, _ = net.query("agent-00", "svc", depth_limit=3)
        assert {r.witness for r in responses} == {"agent-05"}

    def test_offline_agents_silent(self):
        net = build(10, degree=9, branching=9, seed=0)
        net.record_experience("agent-05", fb("agent-05"))
        net.agent("agent-05").online = False
        responses, _ = net.query("agent-00", "svc", depth_limit=3)
        assert responses == []


class TestAdaptation:
    def test_reinforce_moves_weight(self):
        net = build(10, seed=0)
        before = net.weight("agent-00", "agent-05")
        net.reinforce("agent-00", "agent-05", useful=True)
        assert net.weight("agent-00", "agent-05") > before
        net.reinforce("agent-00", "agent-05", useful=False)
        net.reinforce("agent-00", "agent-05", useful=False)
        assert net.weight("agent-00", "agent-05") < 0.7

    def test_useful_witness_promoted_to_neighbor(self):
        net = build(10, degree=2, seed=3)
        agent = net.agent("agent-00")
        outsider = next(
            a.peer_id for a in net.agents()
            if a.peer_id not in agent.neighbors and a.peer_id != "agent-00"
        )
        for _ in range(10):
            net.reinforce("agent-00", outsider, useful=True)
        assert outsider in agent.neighbors

    def test_invalid_rate(self):
        net = build(3)
        with pytest.raises(ConfigurationError):
            net.reinforce("agent-00", "agent-01", True, rate=0.0)
