"""Tests for the selection engine and policies."""

import pytest

from repro.common.errors import ConfigurationError
from repro.core.selection import (
    EpsilonGreedyPolicy,
    GreedyPolicy,
    SelectionEngine,
    SoftmaxPolicy,
)
from repro.models.base import ScoredTarget
from repro.models.beta import BetaReputation
from repro.registry.uddi import UDDIRegistry
from repro.services.description import ServiceDescription

from tests.conftest import feedback_series


RANKING = [
    ScoredTarget("best", 0.9),
    ScoredTarget("mid", 0.5),
    ScoredTarget("worst", 0.1),
]


class TestGreedyPolicy:
    def test_picks_top(self):
        assert GreedyPolicy().choose(RANKING) == "best"

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            GreedyPolicy().choose([])


class TestEpsilonGreedyPolicy:
    def test_zero_epsilon_is_greedy(self):
        policy = EpsilonGreedyPolicy(epsilon=0.0, rng=0)
        assert all(policy.choose(RANKING) == "best" for _ in range(20))

    def test_full_epsilon_explores(self):
        policy = EpsilonGreedyPolicy(epsilon=1.0, rng=0)
        chosen = {policy.choose(RANKING) for _ in range(50)}
        assert chosen == {"best", "mid", "worst"}

    def test_tied_top_randomized(self):
        tied = [ScoredTarget("a", 0.5), ScoredTarget("b", 0.5)]
        policy = EpsilonGreedyPolicy(epsilon=0.0, rng=0)
        chosen = {policy.choose(tied) for _ in range(50)}
        assert chosen == {"a", "b"}

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            EpsilonGreedyPolicy(epsilon=1.5)


class TestSoftmaxPolicy:
    def test_low_temperature_concentrates(self):
        policy = SoftmaxPolicy(temperature=0.01, rng=0)
        picks = [policy.choose(RANKING) for _ in range(50)]
        assert picks.count("best") > 45

    def test_high_temperature_spreads(self):
        policy = SoftmaxPolicy(temperature=100.0, rng=0)
        picks = {policy.choose(RANKING) for _ in range(100)}
        assert picks == {"best", "mid", "worst"}

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SoftmaxPolicy(temperature=0.0)


class TestSelectionEngine:
    def build(self):
        registry = UDDIRegistry()
        for svc in ["good-svc", "bad-svc"]:
            registry.publish(ServiceDescription(
                service=svc, provider="p0", category="weather"
            ))
        registry.publish(ServiceDescription(
            service="other", provider="p0", category="flights"
        ))
        model = BetaReputation()
        model.record_many(feedback_series("good-svc", [0.9] * 5))
        model.record_many(feedback_series("bad-svc", [0.1] * 5))
        return SelectionEngine(registry, model)

    def test_candidates_filtered_by_category(self):
        engine = self.build()
        assert sorted(engine.candidates("weather")) == ["bad-svc", "good-svc"]

    def test_select_best(self):
        engine = self.build()
        assert engine.select("weather") == "good-svc"
        assert engine.selections_made == 1

    def test_select_empty_category(self):
        engine = self.build()
        assert engine.select("nonexistent") is None
        assert engine.selections_made == 0

    def test_rank_exposes_scores(self):
        engine = self.build()
        ranking = engine.rank("weather")
        assert ranking[0].target == "good-svc"
        assert ranking[0].score > ranking[1].score
