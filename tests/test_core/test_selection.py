"""Tests for the selection engine and policies."""

import pytest

from repro.common.errors import ConfigurationError
from repro.core.selection import (
    EpsilonGreedyPolicy,
    GreedyPolicy,
    SelectionEngine,
    SoftmaxPolicy,
)
from repro.models.base import ScoredTarget
from repro.models.beta import BetaReputation
from repro.registry.uddi import UDDIRegistry
from repro.services.description import ServiceDescription

from tests.conftest import feedback_series


RANKING = [
    ScoredTarget("best", 0.9),
    ScoredTarget("mid", 0.5),
    ScoredTarget("worst", 0.1),
]


class TestGreedyPolicy:
    def test_picks_top(self):
        assert GreedyPolicy().choose(RANKING) == "best"

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            GreedyPolicy().choose([])


class TestEpsilonGreedyPolicy:
    def test_zero_epsilon_is_greedy(self):
        policy = EpsilonGreedyPolicy(epsilon=0.0, rng=0)
        assert all(policy.choose(RANKING) == "best" for _ in range(20))

    def test_full_epsilon_explores(self):
        policy = EpsilonGreedyPolicy(epsilon=1.0, rng=0)
        chosen = {policy.choose(RANKING) for _ in range(50)}
        assert chosen == {"best", "mid", "worst"}

    def test_tied_top_randomized(self):
        tied = [ScoredTarget("a", 0.5), ScoredTarget("b", 0.5)]
        policy = EpsilonGreedyPolicy(epsilon=0.0, rng=0)
        chosen = {policy.choose(tied) for _ in range(50)}
        assert chosen == {"a", "b"}

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            EpsilonGreedyPolicy(epsilon=1.5)


class TestSoftmaxPolicy:
    def test_low_temperature_concentrates(self):
        policy = SoftmaxPolicy(temperature=0.01, rng=0)
        picks = [policy.choose(RANKING) for _ in range(50)]
        assert picks.count("best") > 45

    def test_high_temperature_spreads(self):
        policy = SoftmaxPolicy(temperature=100.0, rng=0)
        picks = {policy.choose(RANKING) for _ in range(100)}
        assert picks == {"best", "mid", "worst"}

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SoftmaxPolicy(temperature=0.0)


class TestSelectionEngine:
    def build(self):
        registry = UDDIRegistry()
        for svc in ["good-svc", "bad-svc"]:
            registry.publish(ServiceDescription(
                service=svc, provider="p0", category="weather"
            ))
        registry.publish(ServiceDescription(
            service="other", provider="p0", category="flights"
        ))
        model = BetaReputation()
        model.record_many(feedback_series("good-svc", [0.9] * 5))
        model.record_many(feedback_series("bad-svc", [0.1] * 5))
        return SelectionEngine(registry, model)

    def test_candidates_filtered_by_category(self):
        engine = self.build()
        assert sorted(engine.candidates("weather")) == ["bad-svc", "good-svc"]

    def test_select_best(self):
        engine = self.build()
        assert engine.select("weather") == "good-svc"
        assert engine.selections_made == 1

    def test_select_empty_category(self):
        engine = self.build()
        assert engine.select("nonexistent") is None
        assert engine.selections_made == 0

    def test_rank_exposes_scores(self):
        engine = self.build()
        ranking = engine.rank("weather")
        assert ranking[0].target == "good-svc"
        assert ranking[0].score > ranking[1].score


# ---------------------------------------------------------------------------
# Graceful degradation: stale-ranking fallback
# ---------------------------------------------------------------------------

from repro.common.errors import RegistryError  # noqa: E402
from repro.faults.degradation import StaleRankingFallback  # noqa: E402
from repro.models.base import ReputationModel  # noqa: E402


class FlickeringModel(ReputationModel):
    """Scores 0.9/0.1 while up; raises RegistryError while down."""

    name = "flickering"

    def __init__(self):
        self.up = True

    def record(self, feedback):
        pass

    def score(self, target, perspective=None, now=None):
        if not self.up:
            raise RegistryError("backend down")
        return 0.9 if target == "good" else 0.1


def degradable_engine(fallback=None):
    registry = UDDIRegistry()
    for svc in ("good", "bad"):
        registry.publish(
            ServiceDescription(service=svc, provider="p", category="cat")
        )
    model = FlickeringModel()
    return SelectionEngine(registry, model, fallback=fallback), model


class TestSelectionFallback:
    def test_no_fallback_propagates_failure(self):
        engine, model = degradable_engine()
        model.up = False
        with pytest.raises(RegistryError):
            engine.select("cat", now=0.0)
        assert engine.degraded_selections == 0

    def test_degrades_to_cached_ranking(self):
        engine, model = degradable_engine(StaleRankingFallback())
        assert engine.select("cat", now=0.0) == "good"
        model.up = False
        assert engine.select("cat", now=1.0) == "good"
        assert engine.degraded_selections == 1
        assert engine.selections_made == 2

    def test_cold_cache_failure_returns_none(self):
        engine, model = degradable_engine(StaleRankingFallback())
        model.up = False
        assert engine.select("cat", now=0.0) is None
        assert engine.failed_selections == 1
        assert engine.degraded_selections == 0

    def test_fallback_is_per_category_and_perspective(self):
        engine, model = degradable_engine(StaleRankingFallback())
        engine.select("cat", perspective="c0", now=0.0)
        model.up = False
        # same category, different perspective: cold key
        assert engine.select("cat", perspective="c1", now=1.0) is None
        assert engine.select("cat", perspective="c0", now=1.0) == "good"

    def test_recovery_resumes_fresh_path(self):
        engine, model = degradable_engine(StaleRankingFallback())
        engine.select("cat", now=0.0)
        model.up = False
        engine.select("cat", now=1.0)
        model.up = True
        engine.select("cat", now=2.0)
        assert engine.degraded_selections == 1
        assert engine.failed_selections == 0
