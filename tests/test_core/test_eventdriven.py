"""Tests for the event-driven scenario."""

import pytest

from repro.common.errors import ConfigurationError
from repro.core.eventdriven import EventDrivenScenario
from repro.core.selection import EpsilonGreedyPolicy
from repro.experiments.workloads import make_world
from repro.models.beta import BetaReputation


def build(seed=7, arrival_rate=2.0, feedback_delay=0.1, epsilon=0.1):
    world = make_world(
        n_providers=4, services_per_provider=1, n_consumers=8,
        seed=seed, quality_spread=0.3,
    )
    scenario = EventDrivenScenario(
        services=world.services,
        consumers=world.consumers,
        model=BetaReputation(),
        taxonomy=world.taxonomy,
        policy=EpsilonGreedyPolicy(epsilon, rng=world.seeds.rng("policy")),
        arrival_rate=arrival_rate,
        feedback_delay=feedback_delay,
        rng=world.seeds.rng("events"),
    )
    return world, scenario


class TestEventDrivenScenario:
    def test_arrivals_follow_poisson_rate(self):
        _, scenario = build(arrival_rate=2.0)
        result = scenario.run(horizon=50.0)
        # 8 consumers x rate 2 x 50 time units ~ 800 selections.
        assert 600 < result.selections < 1000

    def test_all_feedback_eventually_filed(self):
        _, scenario = build(feedback_delay=0.5)
        result = scenario.run(horizon=20.0)
        assert result.feedback_filed == result.selections

    def test_learning_converges(self):
        _, scenario = build()
        result = scenario.run(horizon=60.0)
        assert result.accuracy > 0.5
        assert result.mean_regret < 0.1

    def test_deterministic_given_seed(self):
        results = []
        for _ in range(2):
            _, scenario = build(seed=9)
            results.append(scenario.run(horizon=20.0).selections)
        assert results[0] == results[1]

    def test_zero_delay_allowed(self):
        _, scenario = build(feedback_delay=0.0)
        result = scenario.run(horizon=10.0)
        assert result.feedback_filed == result.selections

    def test_stale_feedback_slows_learning(self):
        # With a huge report latency, consumers select on stale scores
        # for longer; early regret should be at least as bad.
        _, fast = build(seed=3, feedback_delay=0.01)
        _, slow = build(seed=3, feedback_delay=20.0)
        fast_result = fast.run(horizon=30.0)
        slow_result = slow.run(horizon=30.0)
        assert slow_result.mean_regret >= fast_result.mean_regret - 0.02

    def test_validation(self):
        world, _ = build()
        with pytest.raises(ConfigurationError):
            EventDrivenScenario(
                services=world.services, consumers=world.consumers,
                model=BetaReputation(), taxonomy=world.taxonomy,
                arrival_rate=0.0,
            )
        _, scenario = build()
        with pytest.raises(ConfigurationError):
            scenario.run(horizon=0.0)

    def test_tracks_regime_change_with_decay(self):
        # Event-driven + decaying facet trust follows a mid-run quality
        # collapse, tying the kernel and the decay machinery together.
        from repro.core.decay import ExponentialDecay
        from repro.core.facets import FacetTrust
        from repro.models.base import ReputationModel
        from repro.services.description import ServiceDescription
        from repro.services.provider import DegradingBehavior, Service
        from repro.services.qos import DEFAULT_METRICS, QoSProfile
        from repro.experiments.workloads import make_consumers
        from repro.common.randomness import SeedSequenceFactory

        class FacetModel(ReputationModel):
            name = "facet"

            def __init__(self):
                self.trust = FacetTrust(ExponentialDecay(half_life=5.0))

            def record(self, fb):
                self.trust.observe_feedback(fb)

            def score(self, target, perspective=None, now=None):
                return self.trust.overall(target, now=now)

        def svc(sid, quality, behavior=None):
            kwargs = dict(
                description=ServiceDescription(
                    service=sid, provider="p", category="c"
                ),
                profile=QoSProfile(
                    quality={m.name: quality for m in DEFAULT_METRICS},
                    noise=0.03,
                ),
            )
            if behavior:
                kwargs["behavior"] = behavior
            return Service(**kwargs)

        seeds = SeedSequenceFactory(31)
        services = [
            svc("star", 0.9, DegradingBehavior(drop=0.6, onset=25.0)),
            svc("steady", 0.65),
        ]
        scenario = EventDrivenScenario(
            services=services,
            consumers=make_consumers(6, DEFAULT_METRICS, seeds),
            model=FacetModel(),
            taxonomy=DEFAULT_METRICS,
            policy=EpsilonGreedyPolicy(0.1, rng=seeds.rng("policy")),
            arrival_rate=2.0,
            feedback_delay=0.1,
            rng=seeds.rng("events"),
        )
        result = scenario.run(horizon=60.0)
        # After the collapse, 'steady' must dominate selections.
        assert result.selection_counts["steady"] > (
            result.selection_counts["star"]
        )

    def test_selection_counts_sum(self):
        _, scenario = build()
        result = scenario.run(horizon=15.0)
        assert sum(result.selection_counts.values()) == result.selections
