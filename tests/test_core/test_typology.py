"""Tests for the typology (Figure 4) and the model registry."""

import pytest

from repro.core.registry import default_registry
from repro.core.typology import (
    PAPER_FIGURE_4,
    Architecture,
    Scope,
    Subject,
    Typology,
    classification_tree,
)


class TestTypology:
    def test_branch_path(self):
        t = Typology(Architecture.CENTRALIZED, Subject.RESOURCE,
                     Scope.GLOBAL)
        assert t.branch() == ("centralized", "resource", "global")
        assert str(t) == "centralized/resource/global"


class TestClassificationTree:
    def test_tree_groups_by_branch(self):
        tree = classification_tree({
            "ebay": PAPER_FIGURE_4["ebay"],
            "sporas": PAPER_FIGURE_4["sporas"],
            "epinions": PAPER_FIGURE_4["epinions"],
        })
        assert tree.systems_at(
            Architecture.CENTRALIZED, Subject.PERSON_AGENT, Scope.GLOBAL
        ) == ["ebay", "sporas"]
        assert tree.systems_at(
            Architecture.CENTRALIZED, Subject.RESOURCE, Scope.PERSONALIZED
        ) == ["epinions"]

    def test_render_shape(self):
        tree = classification_tree(PAPER_FIGURE_4)
        text = "\n".join(tree.render())
        assert text.startswith("Trust and Reputation System")
        assert "centralized" in text
        assert "decentralized" in text
        assert "- ebay" in text
        assert "- vu_aberer" in text


class TestFigure4Reproduction:
    """The paper's Figure 4, leaf for leaf."""

    def test_registry_tree_matches_paper(self):
        registry = default_registry(rng_seed=0)
        derived = registry.figure4_tree()
        paper = classification_tree(PAPER_FIGURE_4)
        assert set(derived.leaves) == set(paper.leaves)
        for branch, systems in paper.leaves.items():
            assert sorted(derived.leaves[branch]) == sorted(systems), branch

    def test_paper_bold_systems_are_centralized_resource_personalized(self):
        # Section 5: the web-service mechanisms [13, 16-21] all fall in
        # one branch: centralized / resources / personalized.
        bold = ["maximilien_singh", "liu_ngu_zeng",
                "collaborative_filtering", "day"]
        for name in bold:
            assert PAPER_FIGURE_4[name].branch() == (
                "centralized", "resource", "personalized"
            )

    def test_vu_aberer_is_the_only_decentralized_ws_approach(self):
        t = PAPER_FIGURE_4["vu_aberer"]
        assert t.architecture is Architecture.DECENTRALIZED
        assert t.subject is Subject.PERSON_AGENT_AND_RESOURCE

    def test_every_model_class_typology_matches_paper(self):
        registry = default_registry(rng_seed=0)
        for info in registry.infos():
            if info.name in PAPER_FIGURE_4:
                assert info.typology == PAPER_FIGURE_4[info.name], info.name


class TestModelRegistry:
    def test_create_instances(self):
        registry = default_registry(rng_seed=0)
        for name in registry.names():
            model = registry.create(name)
            assert model.score("anything") >= 0.0

    def test_duplicate_registration_rejected(self):
        from repro.common.errors import ConfigurationError
        from repro.core.registry import ModelInfo, ModelRegistry
        from repro.models.ebay import EbayModel

        registry = ModelRegistry()
        info = ModelInfo(
            name="x", factory=EbayModel, typology=EbayModel.typology,
            paper_ref="", label="x",
        )
        registry.register(info)
        with pytest.raises(ConfigurationError):
            registry.register(info)

    def test_unknown_model(self):
        from repro.common.errors import UnknownEntityError

        with pytest.raises(UnknownEntityError):
            default_registry().get("nope")

    def test_all_paper_leaves_implemented(self):
        registry = default_registry(rng_seed=0)
        for name in PAPER_FIGURE_4:
            assert name in registry, f"paper system {name} not implemented"
