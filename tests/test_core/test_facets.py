"""Tests for multi-faceted, context-specific, dynamic trust."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError
from repro.core.decay import ExponentialDecay
from repro.core.facets import FacetTrust, combine_facets

from tests.conftest import feedback


class TestCombineFacets:
    def test_weighted(self):
        assert combine_facets({"a": 1.0, "b": 0.0}, {"a": 3.0, "b": 1.0}) == 0.75

    def test_unweighted_mean(self):
        assert combine_facets({"a": 0.2, "b": 0.8}) == pytest.approx(0.5)

    def test_no_overlap_falls_back(self):
        assert combine_facets({"a": 0.4}, {"z": 1.0}) == 0.4

    def test_empty_default(self):
        assert combine_facets({}, default=0.7) == 0.7

    @given(
        st.dictionaries(st.sampled_from("abcde"), st.floats(0.0, 1.0),
                        min_size=1),
        st.dictionaries(st.sampled_from("abcde"), st.floats(0.0, 10.0)),
    )
    def test_property_bounded(self, scores, weights):
        assert 0.0 <= combine_facets(scores, weights) <= 1.0


class TestFacetTrust:
    def test_no_evidence_is_half(self):
        assert FacetTrust().facet("svc", "speed") == 0.5

    def test_evidence_moves_trust(self):
        trust = FacetTrust()
        for t in range(10):
            trust.observe("svc", "speed", 0.9, time=float(t))
        assert trust.facet("svc", "speed") > 0.8

    def test_multi_faceted(self):
        # The paper's example: differentiated trust per QoS aspect.
        trust = FacetTrust()
        for t in range(10):
            trust.observe("svc", "response_time", 0.9, time=float(t))
            trust.observe("svc", "accuracy", 0.2, time=float(t))
        facets = trust.facets("svc")
        assert facets["response_time"] > 0.8
        assert facets["accuracy"] < 0.3
        # Preference weighting flips the overall judgement.
        speed_first = trust.overall("svc", {"response_time": 1.0})
        accuracy_first = trust.overall("svc", {"accuracy": 1.0})
        assert speed_first > 0.8 > 0.3 > accuracy_first

    def test_context_specific(self):
        # Mike trusts John as a doctor but not as a mechanic.
        trust = FacetTrust()
        for t in range(10):
            trust.observe("john", "competence", 0.95, time=float(t),
                          context="doctor")
            trust.observe("john", "competence", 0.05, time=float(t),
                          context="mechanic")
        assert trust.facet("john", "competence", context="doctor") > 0.8
        assert trust.facet("john", "competence", context="mechanic") < 0.2
        assert sorted(trust.contexts()) == ["doctor", "mechanic"]

    def test_dynamic_decay(self):
        trust = FacetTrust(decay=ExponentialDecay(half_life=5.0))
        for t in range(10):
            trust.observe("svc", "speed", 0.1, time=float(t))
        for t in range(96, 101):
            trust.observe("svc", "speed", 0.9, time=float(t))
        # Queried at t=100 the old bad experiences have decayed away...
        assert trust.facet("svc", "speed", now=100.0) > 0.7
        # ...while an undecayed view still sees the bad majority.
        undecayed = FacetTrust()
        for t in range(10):
            undecayed.observe("svc", "speed", 0.1, time=float(t))
        for t in range(96, 101):
            undecayed.observe("svc", "speed", 0.9, time=float(t))
        assert undecayed.facet("svc", "speed", now=100.0) < 0.5

    def test_observe_feedback(self):
        trust = FacetTrust()
        trust.observe_feedback(
            feedback(target="svc", rating=0.8, facets={"speed": 0.9})
        )
        assert trust.facet("svc", "speed") > 0.5

    def test_facetless_feedback_becomes_overall(self):
        trust = FacetTrust()
        trust.observe_feedback(feedback(target="svc", rating=0.8))
        assert "overall" in trust.facets("svc")

    def test_confidence_grows(self):
        trust = FacetTrust()
        assert trust.confidence("svc") == 0.0
        trust.observe("svc", "speed", 0.8)
        low = trust.confidence("svc")
        for t in range(10):
            trust.observe("svc", "speed", 0.8, time=float(t))
        assert trust.confidence("svc") > low

    def test_value_validated(self):
        with pytest.raises(ConfigurationError):
            FacetTrust().observe("svc", "speed", 1.5)
