"""Tests for the Figure 1 scenario runners."""

import pytest

from repro.common.errors import ConfigurationError
from repro.core.scenarios import (
    DirectSelectionScenario,
    MediatedSelectionScenario,
)
from repro.core.selection import EpsilonGreedyPolicy
from repro.experiments.workloads import make_consumers, make_world
from repro.common.randomness import SeedSequenceFactory
from repro.models.beta import BetaReputation
from repro.services.description import ServiceDescription
from repro.services.general import GeneralService, IntermediaryService
from repro.services.provider import Service
from repro.services.qos import DEFAULT_METRICS, QoSProfile


class TestDirectSelectionScenario:
    def build(self, seed=7):
        world = make_world(
            n_providers=4, services_per_provider=1, n_consumers=6,
            seed=seed, quality_spread=0.35,
        )
        scenario = DirectSelectionScenario(
            services=world.services,
            consumers=world.consumers,
            model=BetaReputation(),
            taxonomy=world.taxonomy,
            policy=EpsilonGreedyPolicy(epsilon=0.1,
                                       rng=world.seeds.rng("policy")),
            rng=world.seeds.rng("invoke"),
        )
        return world, scenario

    def test_learning_converges_high(self):
        _, scenario = self.build()
        result = scenario.run(40)
        # Far better than the 1/4 random-choice baseline by the end
        # (the first rounds may already be lucky, so we assert the
        # converged level rather than strict improvement).
        assert result.tail_accuracy(0.25) > 0.6

    def test_counts_consistent(self):
        _, scenario = self.build()
        result = scenario.run(10)
        assert result.selections == 60  # 6 consumers x 10 rounds
        assert sum(result.selection_counts.values()) == 60
        assert len(result.regrets) == 60
        assert len(result.round_accuracy) == 10

    def test_regret_nonnegative(self):
        _, scenario = self.build()
        result = scenario.run(10)
        assert all(r >= -1e-9 for r in result.regrets)

    def test_time_advances(self):
        _, scenario = self.build()
        scenario.run(5)
        assert scenario.time == 5.0

    def test_mixed_categories_rejected(self):
        world = make_world(seed=1)
        world.services[0].description = ServiceDescription(
            service=world.services[0].service_id,
            provider=world.services[0].provider_id,
            category="different",
        )
        with pytest.raises(ConfigurationError):
            DirectSelectionScenario(
                services=world.services,
                consumers=world.consumers,
                model=BetaReputation(),
                taxonomy=world.taxonomy,
            )

    def test_needs_rounds(self):
        _, scenario = self.build()
        with pytest.raises(ConfigurationError):
            scenario.run(0)

    def test_provider_rating_mode(self):
        world = make_world(
            n_providers=3, services_per_provider=2, n_consumers=4, seed=5
        )
        model = BetaReputation()
        scenario = DirectSelectionScenario(
            services=world.services,
            consumers=world.consumers,
            model=model,
            taxonomy=world.taxonomy,
            rate_providers=True,
            rng=world.seeds.rng("invoke"),
        )
        scenario.run(5)
        # Providers accumulated reputation alongside their services.
        provider_ids = {p.provider_id for p in world.providers}
        assert any(model.evidence(pid) != (0.0, 0.0) for pid in provider_ids)


class TestMediatedSelectionScenario:
    def build(self):
        seeds = SeedSequenceFactory(11)
        rng = seeds.rng("build")
        intermediaries = []
        # Intermediary i's best flight has quality 0.3 + 0.2*i.
        for i in range(3):
            svc = Service(
                description=ServiceDescription(
                    service=f"booker-{i}", provider=f"prov-{i}",
                    category="flight_booking",
                ),
                profile=QoSProfile(
                    quality={m.name: 0.7 for m in DEFAULT_METRICS},
                    noise=0.0,
                ),
            )
            catalog = [
                GeneralService(
                    general_id=f"flight-{i}-{j}",
                    domain="flight",
                    quality={"comfort": 0.3 + 0.2 * i,
                             "punctuality": 0.3 + 0.2 * i},
                    noise=0.02,
                )
                for j in range(2)
            ]
            intermediaries.append(
                IntermediaryService(svc, catalog, rng=seeds.rng(f"i{i}"))
            )
        consumers = make_consumers(6, DEFAULT_METRICS, seeds)
        scenario = MediatedSelectionScenario(
            intermediaries=intermediaries,
            consumers=consumers,
            model=BetaReputation(),
            taxonomy=DEFAULT_METRICS,
            policy=EpsilonGreedyPolicy(epsilon=0.15, rng=seeds.rng("pol")),
            rng=seeds.rng("invoke"),
        )
        return scenario

    def test_selection_driven_by_general_service_quality(self):
        # All intermediaries have IDENTICAL web-service QoS; only the
        # general services differ.  The mechanism must still learn to
        # pick booker-2 (the best flights) -- the paper's point that in
        # scenario B the general service decides the selection.
        scenario = self.build()
        result = scenario.run(50)
        assert result.tail_accuracy(0.2) > 0.5
        best_picks = result.selection_counts.get("booker-2", 0)
        worst_picks = result.selection_counts.get("booker-0", 0)
        assert best_picks > worst_picks

    def test_achievable_quality_ordering(self):
        scenario = self.build()
        consumer = scenario.consumers[0]
        q = [
            scenario.achievable_quality(f"booker-{i}", consumer)
            for i in range(3)
        ]
        assert q[0] < q[1] < q[2]

    def test_optimal_is_best_booker(self):
        scenario = self.build()
        assert scenario.optimal_for(scenario.consumers[0]) == "booker-2"
