"""Tests for decay policies."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError
from repro.core.decay import (
    DecayPolicy,
    ExponentialDecay,
    NoDecay,
    SlidingWindow,
)


class TestNoDecay:
    def test_always_one(self):
        policy = NoDecay()
        assert policy(0.0) == 1.0
        assert policy(1e9) == 1.0


class TestExponentialDecay:
    def test_half_life(self):
        policy = ExponentialDecay(half_life=10.0)
        assert policy(10.0) == pytest.approx(0.5)
        assert policy(20.0) == pytest.approx(0.25)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ExponentialDecay(half_life=0.0)

    @given(st.floats(0.0, 1e5), st.floats(0.0, 1e5))
    def test_property_monotone(self, a, b):
        policy = ExponentialDecay(half_life=25.0)
        young, old = min(a, b), max(a, b)
        assert policy(young) >= policy(old)


class TestSlidingWindow:
    def test_inside_window(self):
        policy = SlidingWindow(window=10.0)
        assert policy(10.0) == 1.0
        assert policy(0.0) == 1.0

    def test_outside_window(self):
        assert SlidingWindow(window=10.0)(10.1) == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SlidingWindow(window=0.0)

    def test_repr(self):
        assert "10" in repr(SlidingWindow(10.0))
        assert "NoDecay" in repr(NoDecay())


class TestVectorizedWeights:
    """The numpy kernels must agree exactly with the scalar ones."""

    POLICIES = [
        NoDecay(),
        ExponentialDecay(half_life=25.0),
        SlidingWindow(window=10.0),
    ]

    @pytest.mark.parametrize("policy", POLICIES, ids=repr)
    @given(ages=st.lists(st.floats(-5.0, 1e5, allow_nan=False), max_size=40))
    def test_property_weights_match_scalar(self, policy, ages):
        vector = policy.weights(np.array(ages, dtype=float))
        assert vector.shape == (len(ages),)
        scalars = [policy.weight(a) for a in ages]
        assert vector.tolist() == pytest.approx(scalars, abs=1e-12)

    @pytest.mark.parametrize("policy", POLICIES, ids=repr)
    def test_empty_ages(self, policy):
        assert policy.weights(np.array([], dtype=float)).shape == (0,)

    def test_default_weights_maps_scalar_kernel(self):
        class Staircase(DecayPolicy):
            def weight(self, age: float) -> float:
                return 1.0 / (1.0 + (age // 10.0))

        policy = Staircase()
        ages = np.array([0.0, 9.0, 10.0, 35.0])
        assert policy.weights(ages).tolist() == [
            policy.weight(a) for a in ages
        ]
