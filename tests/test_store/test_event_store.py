"""EventStore contracts: the ISSUE-pinned properties.

The two invariants the columnar kernels stand on:

* snapshot/merge **byte-identity across chunkings** — the canonical
  encoding covers logical content only, so chunk_size ∈ {1, 7, 64,
  4096} (and any append/extend interleaving) is invisible;
* **interner insertion stability** — ``record_many``-style bulk extends
  assign the same codes a looped ``record`` would.
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.store import EventStore, OVERALL_FACET, latest_rows

CHUNK_SIZES = (1, 7, 64, 4096)

RATERS = [f"r{i}" for i in range(5)]
TARGETS = ["svc-a", "svc-b", "svc-c"]
FACETS = [None, "latency", "accuracy"]

EVENTS = st.lists(
    st.tuples(
        st.sampled_from(RATERS),
        st.sampled_from(TARGETS),
        st.sampled_from(FACETS),
        st.floats(0.0, 1.0, allow_nan=False),
        st.floats(0.0, 100.0, allow_nan=False),
    ),
    max_size=60,
)


def _fill(store, events):
    for rater, target, facet, value, time in events:
        store.append(rater, target, value, time, facet=facet)
    return store


class TestCanonicalBytes:
    @given(EVENTS)
    @settings(max_examples=50)
    def test_byte_identical_across_chunk_sizes(self, events):
        encodings = {
            _fill(EventStore(chunk_size=size), events).canonical_bytes()
            for size in CHUNK_SIZES
        }
        assert len(encodings) == 1

    @given(EVENTS, st.integers(0, 60))
    @settings(max_examples=50)
    def test_extend_matches_append_loop(self, events, split):
        """Bulk ingest (the record_many path) is indistinguishable from
        looped appends: same codes, same rows, same bytes."""
        overall = [e for e in events if e[2] is None]
        split = min(split, len(overall))
        looped = EventStore(chunk_size=7)
        for rater, target, _facet, value, time in overall:
            looped.append(rater, target, value, time)
        bulk = EventStore(chunk_size=7)
        head = overall[:split]
        if head:
            bulk.extend(
                [e[0] for e in head],
                [e[1] for e in head],
                [e[3] for e in head],
                [e[4] for e in head],
            )
        for rater, target, _facet, value, time in overall[split:]:
            bulk.append(rater, target, value, time)
        assert looped.canonical_bytes() == bulk.canonical_bytes()
        assert looped.entities.values() == bulk.entities.values()

    @given(EVENTS, st.integers(0, 60))
    @settings(max_examples=50)
    def test_merge_is_chunking_invariant_concatenation(self, events, split):
        split = min(split, len(events))
        whole = _fill(EventStore(chunk_size=64), events)
        merged = {}
        for size in CHUNK_SIZES:
            left = _fill(EventStore(chunk_size=size), events[:split])
            right = _fill(
                EventStore(chunk_size=CHUNK_SIZES[::-1][0]), events[split:]
            )
            left.merge_from(right)
            merged[size] = left.canonical_bytes()
        assert set(merged.values()) == {whole.canonical_bytes()}

    def test_merge_reinterns_through_own_tables(self):
        a = EventStore()
        a.append("r0", "svc", 0.9, 1.0)
        b = EventStore()
        b.append("other", "svc", 0.2, 2.0, facet="latency")
        b.append("r0", "extra", 0.4, 3.0)
        a.merge_from(b)
        columns = a.snapshot()
        assert a.entities.values() == ("r0", "svc", "other", "extra")
        assert [a.entities.value(c) for c in columns.rater.tolist()] == [
            "r0", "other", "r0",
        ]
        assert [a.entities.value(c) for c in columns.target.tolist()] == [
            "svc", "svc", "extra",
        ]
        assert columns.facet.tolist()[0] == OVERALL_FACET
        assert a.facets.value(int(columns.facet[1])) == "latency"


class TestRandomizedParityStreams:
    def test_chunking_invariance_for_any_seed(self, global_random_seed):
        """The rotating-seed sweep of the byte-identity property."""
        rng = random.Random(global_random_seed)
        events = [
            (
                f"r{rng.randrange(8)}",
                f"svc-{rng.randrange(6)}",
                rng.choice(FACETS),
                rng.random(),
                float(rng.randrange(1000)),
            )
            for _ in range(rng.randrange(5, 120))
        ]
        encodings = {
            _fill(EventStore(chunk_size=size), events).canonical_bytes()
            for size in CHUNK_SIZES
        }
        assert len(encodings) == 1


class TestSnapshotAndIndexes:
    def test_snapshot_is_cached_per_version(self):
        store = EventStore(chunk_size=4)
        store.append("r0", "a", 0.5, 0.0)
        first = store.snapshot()
        assert store.snapshot() is first
        store.append("r0", "b", 0.6, 1.0)
        assert store.snapshot() is not first
        assert store.snapshot().n == 2

    def test_group_rows_preserve_append_order(self):
        store = EventStore(chunk_size=2)
        ratings = [("a", 0.1), ("b", 0.2), ("a", 0.3), ("a", 0.4), ("b", 0.5)]
        for i, (target, value) in enumerate(ratings):
            store.append("r0", target, value, float(i))
        index = store.by_target()
        code = store.entities.code
        columns = store.snapshot()
        assert columns.value[index.rows(code("a"))].tolist() == [0.1, 0.3, 0.4]
        assert columns.value[index.rows(code("b"))].tolist() == [0.2, 0.5]
        assert index.rows(999).tolist() == []
        assert index.group_sizes().tolist() in ([3, 2], [2, 3])

    def test_by_target_time_orders_out_of_order_streams(self):
        store = EventStore(chunk_size=3)
        times = [5.0, 1.0, 3.0, 2.0, 4.0]
        for i, t in enumerate(times):
            store.append("r0", "svc", float(i) / 10.0, t)
        assert not store.times_monotonic
        rows = store.by_target_time().rows(store.entities.code("svc"))
        assert store.snapshot().time[rows].tolist() == sorted(times)

    def test_iter_rows_from_offset(self):
        store = EventStore(chunk_size=3)
        for i in range(10):
            store.append(f"r{i % 2}", "svc", i / 10.0, float(i))
        tail = list(store.iter_rows(7))
        assert [row[3] for row in tail] == [0.7, 0.8, 0.9]
        assert len(list(store.iter_rows(0))) == 10

    def test_ranks_align_with_order(self):
        store = EventStore(chunk_size=2)
        for i, target in enumerate(["a", "b", "a", "b", "a"]):
            store.append("r0", target, 0.5, float(i))
        index = store.by_target()
        ranks = index.ranks()
        # Within each group the ranks count up from 0 in append order.
        for code in index.codes.tolist():
            rows = index.rows(code)
            start = index.starts[index.slot(code)]
            end = index.ends[index.slot(code)]
            assert ranks[start:end].tolist() == list(range(len(rows)))

    def test_latest_rows_prefers_time_then_row_id(self):
        keys = np.array([1, 1, 2, 2], dtype=np.int64)
        times = np.array([5.0, 3.0, 1.0, 1.0])
        unique_keys, rows = latest_rows(keys, times)
        assert unique_keys.tolist() == [1, 2]
        # key 1: later time wins; key 2: tie -> later row wins.
        assert rows.tolist() == [0, 3]


class TestValidation:
    def test_chunk_size_must_be_positive(self):
        with pytest.raises(ValueError):
            EventStore(chunk_size=0)

    def test_empty_store_shapes(self):
        store = EventStore()
        assert len(store) == 0
        assert store.version == 0
        assert store.snapshot().n == 0
        assert store.canonical_bytes() == EventStore().canonical_bytes()


class TestIntegerTimeColumns:
    def test_int64_round_trip_and_dtype(self):
        store = EventStore(time_dtype="int64")
        store.append("c0", "svc-0", 0.5, 1 << 20)
        store.extend(["c1"], ["svc-1"], [0.75], np.array([2 << 20], dtype=np.int64))
        cols = store.snapshot()
        assert cols.time.dtype == np.int64
        assert cols.time.tolist() == [1 << 20, 2 << 20]

    def test_int64_append_rejects_floats(self):
        store = EventStore(time_dtype="int64")
        with pytest.raises(TypeError):
            store.append("c0", "svc-0", 0.5, 1.5)

    def test_int64_extend_rejects_float_arrays(self):
        store = EventStore(time_dtype="int64")
        with pytest.raises(TypeError):
            store.extend(["c0"], ["svc-0"], [0.5], [1.5])

    def test_headers_distinguish_time_dtypes(self):
        float_store = EventStore()
        tick_store = EventStore(time_dtype="int64")
        float_store.append("c0", "svc-0", 0.5, 1.0)
        tick_store.append("c0", "svc-0", 0.5, 1)
        assert float_store.canonical_bytes() != tick_store.canonical_bytes()

    def test_merge_rejects_time_dtype_mismatch(self):
        tick_store = EventStore(time_dtype="int64")
        float_store = EventStore()
        float_store.append("c0", "svc-0", 0.5, 1.0)
        with pytest.raises(ValueError):
            tick_store.merge_from(float_store)

    def test_unknown_time_dtype_rejected(self):
        with pytest.raises(ValueError):
            EventStore(time_dtype="float32")

    def test_int64_merge_matches_direct_appends(self):
        direct = EventStore(time_dtype="int64")
        split_a = EventStore(time_dtype="int64")
        split_b = EventStore(time_dtype="int64")
        rows = [("c0", "svc-0", 0.5, 10), ("c1", "svc-1", 0.25, 20),
                ("c0", "svc-1", 0.75, 30)]
        for rater, target, value, tick in rows:
            direct.append(rater, target, value, tick)
        for rater, target, value, tick in rows[:2]:
            split_a.append(rater, target, value, tick)
        split_b.append(*rows[2])
        merged = EventStore(time_dtype="int64")
        merged.merge_from(split_a)
        merged.merge_from(split_b)
        assert merged.canonical_bytes() == direct.canonical_bytes()
