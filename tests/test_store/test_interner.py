"""Interner contracts: stable first-appearance codes."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.store import MISSING_CODE, Interner

IDS = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126),
    max_size=8,
)


class TestInterner:
    def test_first_appearance_order(self):
        interner = Interner()
        assert interner.intern("b") == 0
        assert interner.intern("a") == 1
        assert interner.intern("b") == 0
        assert interner.values() == ("b", "a")
        assert len(interner) == 2
        assert "a" in interner and "z" not in interner

    def test_code_is_query_side(self):
        interner = Interner()
        interner.intern("x")
        assert interner.code("x") == 0
        assert interner.code("nope") == MISSING_CODE
        assert len(interner) == 1  # code() never interns

    def test_codes_bulk_lookup(self):
        interner = Interner()
        interner.intern_many(["a", "b"])
        codes = interner.codes(["b", "zz", "a"])
        assert codes.dtype == np.int32
        assert codes.tolist() == [1, MISSING_CODE, 0]

    def test_value_roundtrip(self):
        interner = Interner()
        for name in ("x", "y", "z"):
            interner.intern(name)
        assert [interner.value(c) for c in range(3)] == ["x", "y", "z"]

    @given(st.lists(IDS, max_size=40))
    def test_intern_many_equals_looped_intern(self, ids):
        looped = Interner()
        codes_a = [looped.intern(v) for v in ids]
        bulk = Interner()
        codes_b = bulk.intern_many(ids).tolist()
        assert codes_a == codes_b
        assert looped.values() == bulk.values()
        assert looped.canonical_bytes() == bulk.canonical_bytes()

    @given(st.lists(IDS, max_size=40), st.integers(0, 39))
    def test_canonical_bytes_chunking_invariant(self, ids, split):
        """Interning the same stream in any call pattern encodes the
        same — the substrate of store snapshot/merge byte-identity."""
        split = min(split, len(ids))
        one = Interner()
        one.intern_many(ids)
        two = Interner()
        two.intern_many(ids[:split])
        for v in ids[split:]:
            two.intern(v)
        assert one.canonical_bytes() == two.canonical_bytes()

    def test_canonical_bytes_orders_matter(self):
        a, b = Interner(), Interner()
        a.intern_many(["x", "y"])
        b.intern_many(["y", "x"])
        assert a.canonical_bytes() != b.canonical_bytes()

    def test_empty_canonical_bytes(self):
        assert Interner().canonical_bytes() == (0).to_bytes(8, "little")
