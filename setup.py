"""Setup shim.

Kept alongside pyproject.toml so that editable installs work in offline
environments lacking the ``wheel`` package (legacy ``setup.py develop``
path): ``pip install -e . --no-build-isolation --no-use-pep517``.
"""

from setuptools import setup

setup()
