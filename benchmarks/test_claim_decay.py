"""C4 — §3: trust is *dynamic* — "new experiences are more important
than old ones since old experiences may become obsolete".

A good service degrades mid-run.  Facet trust with three decay
policies (none / exponential / sliding window) drives selection; the
post-shift regret shows that forgetting is what lets a mechanism track
the regime change, and the pre-shift accuracy shows the cost decay pays
in stability while nothing is changing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import pytest

from repro.common.ids import EntityId
from repro.common.randomness import SeedSequenceFactory
from repro.core.decay import (
    DecayPolicy,
    ExponentialDecay,
    NoDecay,
    SlidingWindow,
)
from repro.core.facets import FacetTrust
from repro.core.selection import EpsilonGreedyPolicy
from repro.experiments.workloads import make_consumers
from repro.models.base import ReputationModel
from repro.services.description import ServiceDescription
from repro.services.invocation import InvocationEngine
from repro.services.provider import DegradingBehavior, Service
from repro.services.qos import DEFAULT_METRICS, QoSProfile

from benchmarks.conftest import print_table

ROUNDS = 80
SHIFT_AT = 40.0

POLICIES = {
    "no_decay": lambda: NoDecay(),
    "exponential(hl=10)": lambda: ExponentialDecay(half_life=10.0),
    "window(20)": lambda: SlidingWindow(window=20.0),
}


class FacetTrustModel(ReputationModel):
    """Adapter: FacetTrust as a ReputationModel with pluggable decay."""

    name = "facet_trust"

    def __init__(self, decay: DecayPolicy) -> None:
        self.trust = FacetTrust(decay=decay)

    def record(self, feedback) -> None:
        self.trust.observe_feedback(feedback)

    def score(self, target: EntityId, perspective=None,
              now: Optional[float] = None) -> float:
        return self.trust.overall(target, now=now)


def build_services():
    """'fallen-star' starts excellent and collapses at SHIFT_AT;
    'steady' is solidly good throughout."""
    fallen = Service(
        description=ServiceDescription(
            service="fallen-star", provider="p0", category="compute"
        ),
        profile=QoSProfile(
            quality={m.name: 0.9 for m in DEFAULT_METRICS}, noise=0.03
        ),
        behavior=DegradingBehavior(drop=0.5, onset=SHIFT_AT),
    )
    steady = Service(
        description=ServiceDescription(
            service="steady", provider="p1", category="compute"
        ),
        profile=QoSProfile(
            quality={m.name: 0.7 for m in DEFAULT_METRICS}, noise=0.03
        ),
    )
    return [fallen, steady]


@dataclass
class DecayOutcome:
    pre_shift_accuracy: float
    post_shift_accuracy: float
    recovery_round: float  # first post-shift round mostly on 'steady'


def run_policy(decay: DecayPolicy, seed: int = 0) -> DecayOutcome:
    seeds = SeedSequenceFactory(seed)
    services = build_services()
    by_id = {s.service_id: s for s in services}
    consumers = make_consumers(10, DEFAULT_METRICS, seeds)
    engine = InvocationEngine(DEFAULT_METRICS, rng=seeds.rng("invoke"))
    model = FacetTrustModel(decay)
    policy = EpsilonGreedyPolicy(0.1, rng=seeds.rng("policy"))
    pre_hits = pre_total = post_hits = post_total = 0
    recovery = float("inf")
    for t in range(ROUNDS):
        time = float(t)
        correct_now = "fallen-star" if time < SHIFT_AT else "steady"
        round_hits = 0
        for consumer in consumers:
            chosen = policy.choose(
                model.rank(list(by_id), consumer.consumer_id, now=time)
            )
            hit = chosen == correct_now
            round_hits += hit
            if time < SHIFT_AT:
                pre_hits += hit
                pre_total += 1
            else:
                post_hits += hit
                post_total += 1
            interaction = engine.invoke(consumer, by_id[chosen], time)
            model.record(consumer.rate(interaction, DEFAULT_METRICS))
        if (
            time >= SHIFT_AT
            and round_hits > len(consumers) / 2
            and recovery == float("inf")
        ):
            recovery = time - SHIFT_AT
    return DecayOutcome(
        pre_shift_accuracy=pre_hits / pre_total,
        post_shift_accuracy=post_hits / post_total,
        recovery_round=recovery,
    )


class TestDecayClaim:
    @pytest.fixture(scope="class")
    def outcomes(self):
        return {name: run_policy(make()) for name, make in POLICIES.items()}

    def test_no_decay_tracks_the_shift_worst(self, outcomes):
        no_decay = outcomes["no_decay"]
        for name in ["exponential(hl=10)", "window(20)"]:
            decaying = outcomes[name]
            assert (
                decaying.post_shift_accuracy
                > no_decay.post_shift_accuracy + 0.2
            ), name
            assert decaying.recovery_round < no_decay.recovery_round, name

    def test_decaying_policies_recover(self, outcomes):
        for name in ["exponential(hl=10)", "window(20)"]:
            assert outcomes[name].post_shift_accuracy > 0.5, name
            assert outcomes[name].recovery_round < 15, name

    def test_all_policies_fine_before_the_shift(self, outcomes):
        for name, outcome in outcomes.items():
            assert outcome.pre_shift_accuracy > 0.7, name

    def test_report(self, outcomes):
        rows = [
            [
                name,
                f"{o.pre_shift_accuracy:.3f}",
                f"{o.post_shift_accuracy:.3f}",
                ("never" if o.recovery_round == float("inf")
                 else f"{o.recovery_round:.0f}"),
            ]
            for name, o in outcomes.items()
        ]
        print_table(
            f"C4: decay policies across a quality collapse at t={SHIFT_AT:.0f} "
            f"({ROUNDS} rounds)",
            ["policy", "pre-shift acc", "post-shift acc",
             "rounds to recover"],
            rows,
        )


@pytest.mark.benchmark(group="c4")
def test_bench_decay_run(benchmark):
    benchmark(lambda: run_policy(ExponentialDecay(half_life=10.0), seed=1))
