"""C6 — §4: "mechanisms in centralized systems are less complex and
easier to implement … but … this server-centric framework will suffer a
single point of failure."

Three deployments of the same reputation workload:

* **central** — one QoS registry collects every report and serves every
  query;
* **eigentrust-dht** — distributed EigenTrust with score managers over
  a Chord DHT;
* **pgrid** — Vu-style QoS registries over a P-Grid.

Measured: messages per operation, load concentration (max/mean received
messages), storage balance, and what happens to each when the most
loaded node fails.
"""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.common.errors import RegistryError
from repro.common.randomness import SeedSequenceFactory
from repro.common.records import Feedback
from repro.experiments.parallel import jobs_from_env, parallel_map
from repro.models.eigentrust import DistributedEigenTrust, EigenTrustModel
from repro.models.vu_aberer import VuAbererModel
from repro.p2p.dht import ChordDHT
from repro.p2p.pgrid import PGrid
from repro.registry.qos_registry import CentralQoSRegistry
from repro.sim.network import Network

from benchmarks.conftest import print_table

N_PEERS = 32
N_SERVICES = 8
REPORTS_PER_PEER = 6


def workload(seed=0):
    """(rater, service, rating) triples: every peer reports on a few
    services."""
    rng = SeedSequenceFactory(seed).rng("workload")
    peers = [f"peer-{i:03d}" for i in range(N_PEERS)]
    services = [f"svc-{i}" for i in range(N_SERVICES)]
    quality = {s: 0.2 + 0.6 * i / (N_SERVICES - 1)
               for i, s in enumerate(services)}
    entries = []
    t = 0.0
    for peer in peers:
        picks = rng.choice(N_SERVICES, size=REPORTS_PER_PEER, replace=True)
        for index in picks:
            service = services[int(index)]
            rating = min(1.0, max(
                0.0, quality[service] + float(rng.normal(0, 0.05))
            ))
            entries.append((peer, service, rating, t))
            t += 1.0
    return peers, services, entries


@dataclass
class DeploymentReport:
    name: str
    messages: int
    load_imbalance: float
    survives_top_node_failure: bool


def run_central():
    peers, services, entries = workload()
    net = Network(rng=0)
    registry = CentralQoSRegistry(network=net)
    for rater, service, rating, t in entries:
        registry.report(Feedback(rater=rater, target=service, time=t,
                                 rating=rating))
    for peer in peers:
        for service in services:
            registry.query(peer, service)
    imbalance = net.stats.load_imbalance()
    messages = net.stats.total_messages
    # Fail the hub: every subsequent query fails.
    registry.fail()
    survives = True
    try:
        registry.query(peers[0], services[0])
    except RegistryError:
        survives = False
    return DeploymentReport("central", messages, imbalance, survives)


def run_eigentrust_dht():
    # EigenTrust models *peer* trust (person-agent in the typology), so
    # its workload is peer-to-peer ratings of the same volume.
    peers, _, _ = workload()
    rng = SeedSequenceFactory(1).rng("p2p-ratings")
    net = Network(rng=0)
    model = EigenTrustModel(pre_trusted=[peers[0]])
    t = 0.0
    for peer in peers:
        picks = rng.choice(N_PEERS, size=REPORTS_PER_PEER, replace=True)
        for index in picks:
            target = peers[int(index)]
            if target == peer:
                continue
            quality = 0.2 + 0.6 * int(index) / (N_PEERS - 1)
            model.record(Feedback(
                rater=peer, target=target, time=t,
                rating=min(1.0, max(0.0, quality + float(rng.normal(0, 0.05)))),
            ))
            t += 1.0
    dht = ChordDHT(peers, bits=16, network=net)
    distributed = DistributedEigenTrust(model, dht)
    distributed.run(rounds=5)
    imbalance = net.stats.load_imbalance()
    messages = net.stats.total_messages
    # Fail the most loaded node: lookups reroute to successors.
    top = max(net.stats.received_by, key=net.stats.received_by.get)
    dht.set_online(top, False)
    origin = next(p for p in peers if p != top)
    survives = True
    try:
        dht.get(origin, f"trust:{peers[1]}")
    except Exception:
        survives = False
    return DeploymentReport("eigentrust-dht", messages, imbalance, survives)


def run_pgrid():
    peers, services, entries = workload()
    net = Network(rng=0)
    grid = PGrid(peers, replication=2, network=net, rng=0)
    model = VuAbererModel()
    for rater, service, rating, t in entries:
        fb = Feedback(rater=rater, target=service, time=t, rating=rating)
        model.publish_report(grid, rater, fb)
    for peer in peers:
        for service in services:
            grid.lookup(peer, service, service)
    imbalance = net.stats.load_imbalance()
    messages = net.stats.total_messages
    # Fail the most loaded registry peer: replicas take over.
    top = max(net.stats.received_by, key=net.stats.received_by.get)
    grid.peer(top).online = False
    origin = next(
        p.peer_id for p in grid.peers() if p.online and p.peer_id != top
    )
    survives = True
    try:
        grid.lookup(origin, services[0], services[0])
    except Exception:
        survives = False
    return DeploymentReport("pgrid", messages, imbalance, survives)


#: Deployment name -> runner; each builds its own workload and network,
#: so the three deployments are independent trials.
RUNNERS = {
    "central": run_central,
    "eigentrust-dht": run_eigentrust_dht,
    "pgrid": run_pgrid,
}


def run_deployment(name: str) -> DeploymentReport:
    return RUNNERS[name]()


def run_all_deployments(max_workers: int = None):
    """All three deployments, fanned out across the pool when
    REPRO_JOBS (or *max_workers*) asks for it."""
    if max_workers is None:
        max_workers = jobs_from_env(1)
    reports = parallel_map(
        run_deployment, list(RUNNERS), max_workers=max_workers
    )
    return {r.name: r for r in reports}


class TestCentralVsDecentral:
    @pytest.fixture(scope="class")
    def reports(self):
        return run_all_deployments()

    def test_central_is_cheapest(self, reports):
        # "Less complex and easier to implement" shows up as messages:
        # one hop per operation vs O(log N) routing.
        assert reports["central"].messages < reports["pgrid"].messages
        assert reports["central"].messages < reports["eigentrust-dht"].messages

    def test_central_concentrates_load(self, reports):
        assert reports["central"].load_imbalance > 10
        assert reports["pgrid"].load_imbalance < reports["central"].load_imbalance
        assert (
            reports["eigentrust-dht"].load_imbalance
            < reports["central"].load_imbalance
        )

    def test_single_point_of_failure(self, reports):
        assert not reports["central"].survives_top_node_failure
        assert reports["pgrid"].survives_top_node_failure
        assert reports["eigentrust-dht"].survives_top_node_failure

    def test_report(self, reports):
        rows = [
            [
                r.name,
                r.messages,
                f"{r.load_imbalance:.1f}",
                "yes" if r.survives_top_node_failure else "NO",
            ]
            for r in reports.values()
        ]
        print_table(
            f"C6: deployments compared ({N_PEERS} peers, {N_SERVICES} "
            f"services, {REPORTS_PER_PEER} reports/peer + full query sweep)",
            ["deployment", "messages", "load max/mean",
             "survives hub failure"],
            rows,
        )


@pytest.mark.benchmark(group="c6")
@pytest.mark.parametrize("runner", [run_central, run_pgrid],
                         ids=["central", "pgrid"])
def test_bench_deployment(benchmark, runner):
    benchmark(runner)
