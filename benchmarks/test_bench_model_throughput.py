"""Micro-benchmarks: per-mechanism record/score throughput.

Times the two hot operations of every registered mechanism — ingesting
one feedback record and answering one score query — on a pre-warmed
store of 1,000 records, plus the expensive batch operations (EigenTrust
/ PageRank power iteration).
"""

from __future__ import annotations

import pytest

from repro.common.records import Feedback
from repro.core.registry import default_registry
from repro.models.eigentrust import EigenTrustModel
from repro.models.pagerank import PageRankModel

REGISTRY = default_registry(rng_seed=0)

#: A representative subset across the typology; the full registry would
#: make the timing run tediously long without adding information.
TIMED = [
    "beta", "ebay", "sporas", "histos", "amazon", "epinions",
    "collaborative_filtering", "yu_singh", "peertrust",
    "maximilien_singh", "liu_ngu_zeng", "vu_aberer", "wang_vassileva",
]


def warm_stream(n=1000):
    return [
        Feedback(
            rater=f"r{i % 20}",
            target=f"svc-{i % 10}",
            time=float(i),
            rating=((i * 7) % 100) / 100.0,
            facet_ratings={"response_time": ((i * 3) % 100) / 100.0},
        )
        for i in range(n)
    ]


@pytest.fixture(scope="module")
def stream():
    return warm_stream()


@pytest.mark.benchmark(group="throughput-record")
@pytest.mark.parametrize("name", TIMED)
def test_bench_record(benchmark, name, stream):
    model = REGISTRY.create(name)
    model.record_many(stream)
    extra = Feedback(rater="r0", target="svc-0", time=9999.0, rating=0.7)
    benchmark(lambda: model.record(extra))


@pytest.mark.benchmark(group="throughput-score")
@pytest.mark.parametrize("name", TIMED)
def test_bench_score(benchmark, name, stream):
    model = REGISTRY.create(name)
    model.record_many(stream)
    benchmark(lambda: model.score("svc-0", perspective="r0", now=1000.0))


@pytest.mark.benchmark(group="power-iteration")
def test_bench_eigentrust_compute(benchmark, stream):
    model = EigenTrustModel(pre_trusted=["r0"])
    model.record_many(stream)

    def compute():
        model._trust = None  # force a full recomputation
        return model.compute()

    benchmark(compute)


@pytest.mark.benchmark(group="power-iteration")
def test_bench_eigentrust_compute_dense(benchmark, stream):
    model = EigenTrustModel(pre_trusted=["r0"])
    model.record_many(stream)

    def compute():
        model._trust = None
        return model.compute_dense()

    benchmark(compute)


@pytest.mark.benchmark(group="power-iteration")
def test_bench_pagerank_compute(benchmark, stream):
    model = PageRankModel()
    model.record_many(stream)
    benchmark(model.compute)


@pytest.mark.benchmark(group="scale")
def test_bench_large_world_round(benchmark):
    """One full selection round at laptop scale: 100 services, 200
    consumers."""
    from repro.core.scenarios import DirectSelectionScenario
    from repro.core.selection import EpsilonGreedyPolicy
    from repro.experiments.workloads import make_world
    from repro.models.beta import BetaReputation

    world = make_world(
        n_providers=50, services_per_provider=2, n_consumers=200, seed=0,
    )
    scenario = DirectSelectionScenario(
        services=world.services,
        consumers=world.consumers,
        model=BetaReputation(),
        taxonomy=world.taxonomy,
        policy=EpsilonGreedyPolicy(0.1, rng=world.seeds.rng("policy")),
        rng=world.seeds.rng("invoke"),
    )
    from repro.core.scenarios import ScenarioResult

    result = ScenarioResult(rounds=1, selections=0, optimal_selections=0)
    benchmark(lambda: scenario.run_round(result))
