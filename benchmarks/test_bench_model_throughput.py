"""Micro-benchmarks + regression harness: per-mechanism throughput.

Two layers:

* pytest-benchmark timings of the two hot scalar operations (ingest one
  record, answer one score) for a representative subset across the
  typology — the mechanisms *not* in that subset are reported
  explicitly, not silently dropped;
* a regression harness (:func:`test_regression_batch_vs_naive`) that
  times every mechanism carrying a custom ``score_many`` kernel on a
  1,000-record warm store with a 100-candidate batch, compares the
  batched path against the naive per-candidate path (for the graph
  models: a cold power-iteration recompute, which is what every query
  cost before the incremental cache), and writes the results to
  ``BENCH_models.json`` at the repo root.  The harness *fails* when a
  batched path is slower than its naive path, and requires the
  headline >= 5x batch speedup on EigenTrust and PageRank.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Callable, Dict, List

import pytest

from repro.common.records import Feedback
from repro.core.registry import default_registry
from repro.models.base import ReputationModel
from repro.models.eigentrust import EigenTrustModel
from repro.models.pagerank import PageRankModel

REGISTRY = default_registry(rng_seed=0)

#: A representative subset across the typology; the full registry would
#: make the pytest-benchmark run tediously long without adding
#: information.  The regression harness below covers every mechanism
#: with a batch kernel and lists the rest in BENCH_models.json.
TIMED = [
    "beta", "ebay", "sporas", "histos", "amazon", "epinions",
    "collaborative_filtering", "yu_singh", "peertrust",
    "maximilien_singh", "liu_ngu_zeng", "vu_aberer", "wang_vassileva",
]

#: Registered mechanisms the scalar timings above do NOT cover — kept
#: visible so the subset can't silently drift from the registry.
NOT_TIMED = sorted(set(REGISTRY.names()) - set(TIMED))

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_models.json"

WARM_RECORDS = 1000
BATCH_SIZE = 100
REPEATS = 7


def test_timed_subset_is_reported(table_printer):
    """The scalar-timing subset must be an explicit, visible choice."""
    unknown = sorted(set(TIMED) - set(REGISTRY.names()))
    assert not unknown, f"TIMED names not in the registry: {unknown}"
    table_printer(
        "Scalar timing coverage",
        ["mechanism", "timed"],
        [[name, "yes" if name in TIMED else "no (see BENCH_models.json)"]
         for name in REGISTRY.names()],
    )


@pytest.mark.benchmark(group="throughput-record")
@pytest.mark.parametrize("name", TIMED)
def test_bench_record(benchmark, name, stream):
    model = REGISTRY.create(name)
    model.record_many(stream)
    extra = Feedback(rater="r0", target="svc-0", time=9999.0, rating=0.7)
    benchmark(lambda: model.record(extra))


@pytest.mark.benchmark(group="throughput-score")
@pytest.mark.parametrize("name", TIMED)
def test_bench_score(benchmark, name, stream):
    model = REGISTRY.create(name)
    model.record_many(stream)
    benchmark(lambda: model.score("svc-0", perspective="r0", now=1000.0))


@pytest.mark.benchmark(group="power-iteration")
def test_bench_eigentrust_compute(benchmark, stream):
    """The pure-Python scalar reference iteration (cold every call)."""
    model = EigenTrustModel(pre_trusted=["r0"])
    model.record_many(stream)

    def compute():
        model._trust = None  # force a full recomputation
        return model.compute()

    benchmark(compute)


@pytest.mark.benchmark(group="power-iteration")
def test_bench_eigentrust_compute_dense(benchmark, stream):
    """The incremental numpy engine (warm-started after the first call)."""
    model = EigenTrustModel(pre_trusted=["r0"])
    model.record_many(stream)

    def compute():
        model._trust = None
        return model.compute_dense()

    benchmark(compute)


@pytest.mark.benchmark(group="power-iteration")
def test_bench_pagerank_compute(benchmark, stream):
    model = PageRankModel()
    model.record_many(stream)
    benchmark(model.compute)


@pytest.mark.benchmark(group="scale")
def test_bench_large_world_round(benchmark):
    """One full selection round at laptop scale: 100 services, 200
    consumers."""
    from repro.core.scenarios import DirectSelectionScenario, ScenarioResult
    from repro.core.selection import EpsilonGreedyPolicy
    from repro.experiments.workloads import make_world
    from repro.models.beta import BetaReputation

    world = make_world(
        n_providers=50, services_per_provider=2, n_consumers=200, seed=0,
    )
    scenario = DirectSelectionScenario(
        services=world.services,
        consumers=world.consumers,
        model=BetaReputation(),
        taxonomy=world.taxonomy,
        policy=EpsilonGreedyPolicy(0.1, rng=world.seeds.rng("policy")),
        rng=world.seeds.rng("invoke"),
    )
    result = ScenarioResult(rounds=1, selections=0, optimal_selections=0)
    benchmark(lambda: scenario.run_round(result))


# ---------------------------------------------------------------------------
# Regression harness: batched scoring vs the naive path, tracked in
# BENCH_models.json.
# ---------------------------------------------------------------------------

def _best_ns(fn: Callable[[], object], repeats: int = REPEATS) -> int:
    """Minimum wall time of *fn* over *repeats* runs (ns) — the min is
    the standard noise-robust estimator for micro-timings."""
    best = None
    for _ in range(repeats):
        start = time.perf_counter_ns()
        fn()
        elapsed = time.perf_counter_ns() - start
        if best is None or elapsed < best:
            best = elapsed
    assert best is not None
    return best


def _has_batch_kernel(model: ReputationModel) -> bool:
    return type(model).score_many is not ReputationModel.score_many


def _naive_scores(
    model: ReputationModel,
    targets: List[str],
    perspective: str,
    now: float,
) -> List[float]:
    """The pre-batch-engine query path.

    Graph models pay a cold power-iteration recompute (what every
    ranking query cost when ``record`` simply discarded the stationary
    vector); everything else runs the base-class per-candidate loop.
    """
    if isinstance(model, PageRankModel):
        ranks = model.compute_naive()
        if not ranks:
            return [0.5] * len(targets)
        top = max(ranks.values())
        if top <= 0:
            return [0.5] * len(targets)
        return [ranks.get(t, 0.0) / top for t in targets]
    if isinstance(model, EigenTrustModel):
        trust = model.compute()  # scalar reference; ignores the cache
        if not trust:
            return [0.5] * len(targets)
        top = max(trust.values())
        if top <= 0:
            return [0.5] * len(targets)
        return [trust.get(t, 0.0) / top for t in targets]
    return ReputationModel.score_many(model, targets, perspective, now)


def _warmed(name: str, records: List[Feedback]) -> ReputationModel:
    model = REGISTRY.create(name)
    model.record_many(records)
    return model


def test_regression_batch_vs_naive(table_printer, wide_stream):
    """Time batch vs naive scoring for every batch-kernel mechanism and
    write the tracked baseline to BENCH_models.json."""
    records = wide_stream
    batch = [f"svc-{i}" for i in range(BATCH_SIZE)]
    extras = [
        Feedback(
            rater=f"r{i % 20}",
            target=f"svc-{i % BATCH_SIZE}",
            time=float(WARM_RECORDS + i),
            rating=((i * 11) % 100) / 100.0,
        )
        for i in range(100)
    ]
    now = float(WARM_RECORDS)
    perspective = "r0"

    report: Dict[str, Dict[str, object]] = {}
    skipped: Dict[str, str] = {}
    for name in REGISTRY.names():
        probe = REGISTRY.create(name)
        if not _has_batch_kernel(probe):
            skipped[name] = "no batch kernel (base-class score loop)"
            continue

        # Numerical equivalence before any timing: batched == naive.
        check = _warmed(name, records)
        fresh = _warmed(name, records)
        batched = check.score_many(batch, perspective, now)
        naive = _naive_scores(fresh, batch, perspective, now)
        assert batched == pytest.approx(naive, abs=1e-9), (
            f"{name}: batched scores diverge from the naive path"
        )

        # record: amortized over a burst of fresh feedback.
        recorder = _warmed(name, records)
        record_ns = _best_ns(
            lambda m=recorder: [m.record(f) for f in extras]
        ) / len(extras)

        # warm scalar score / per-candidate loop / batched call, all on
        # one instance with no interleaved feedback (steady-state query).
        scorer = _warmed(name, records)
        scorer.score(batch[0], perspective, now)  # warm any lazy cache
        score_ns = _best_ns(
            lambda m=scorer: m.score(batch[0], perspective, now)
        )
        loop_ns = _best_ns(
            lambda m=scorer: ReputationModel.score_many(
                m, batch, perspective, now
            )
        )
        batch_ns = _best_ns(
            lambda m=scorer: m.score_many(batch, perspective, now)
        )

        # naive path on its own instance (graph models mutate caches).
        naive_model = _warmed(name, records)
        naive_ns = _best_ns(
            lambda m=naive_model: _naive_scores(m, batch, perspective, now)
        )

        report[name] = {
            "record_ns_per_op": round(record_ns, 1),
            "score_ns_per_op": score_ns,
            "score_many_ns_per_batch": batch_ns,
            "score_many_ns_per_candidate": round(batch_ns / len(batch), 1),
            "score_loop_ns_per_batch": loop_ns,
            "naive_ns_per_batch": naive_ns,
            "speedup_vs_score_loop": round(loop_ns / batch_ns, 2),
            "speedup_vs_naive": round(naive_ns / batch_ns, 2),
        }

    payload = {
        "config": {
            "warm_records": WARM_RECORDS,
            "batch_size": BATCH_SIZE,
            "repeats": REPEATS,
            "timer": "perf_counter_ns/min",
        },
        "models": report,
        "skipped": skipped,
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    table_printer(
        "Batch scoring vs naive path (1000 warm records, batch of 100)",
        ["mechanism", "batch ns", "naive ns", "speedup"],
        [
            [
                name,
                row["score_many_ns_per_batch"],
                row["naive_ns_per_batch"],
                f"x{row['speedup_vs_naive']}",
            ]
            for name, row in sorted(report.items())
        ],
    )
    if skipped:
        table_printer(
            "Mechanisms without a batch kernel (not gated)",
            ["mechanism", "reason"],
            sorted(skipped.items()),
        )

    # -- the regression gates ------------------------------------------
    slow = {
        name: row["speedup_vs_naive"]
        for name, row in report.items()
        if row["naive_ns_per_batch"] < row["score_many_ns_per_batch"]
    }
    assert not slow, f"batched path slower than naive path: {slow}"
    for headline in ("eigentrust", "pagerank"):
        assert report[headline]["speedup_vs_naive"] >= 5.0, (
            f"{headline}: expected >= 5x batch speedup, got "
            f"{report[headline]['speedup_vs_naive']}"
        )


# ---------------------------------------------------------------------------
# Observability overhead gate: a disabled recorder must be (near) free.
# ---------------------------------------------------------------------------

#: Relative budget for instrumentation with the no-op recorder installed.
OBS_OVERHEAD_LIMIT = 0.05
#: Absolute slack per measured burst: on a quiet machine a rank burst
#: runs in the low-millisecond range, so jitter can exceed 5% of the
#: signal even with min-of-7.  The relative gate carries the meaning;
#: the slack keeps the gate from flaking on timer noise.
OBS_SLACK_NS = 500_000
RANK_BURST = 50


def _rank_uninstrumented(model, candidates, perspective, now):
    """The exact rank() body minus the recorder guard — the pre-obs
    baseline the instrumented path is gated against."""
    from repro.models.base import ScoredTarget

    candidates = list(candidates)
    scores = model.score_many(candidates, perspective, now)
    scored = [
        ScoredTarget(target=c, score=float(s))
        for c, s in zip(candidates, scores)
    ]
    scored.sort(key=lambda st: (-st.score, st.target))
    return scored


def test_obs_disabled_recorder_overhead(table_printer, wide_stream):
    """Instrumented rank() under the default no-op recorder vs the same
    body with no instrumentation at all: <= 5% + noise slack, recorded
    in BENCH_models.json under "obs"."""
    from repro.obs.recorder import get_recorder

    assert get_recorder().enabled is False, (
        "a live recorder leaked into the benchmark process"
    )
    model = _warmed("beta", wide_stream)
    batch = [f"svc-{i}" for i in range(BATCH_SIZE)]
    now = float(WARM_RECORDS)
    model.rank(batch, "r0", now)  # warm lazy caches on both paths

    def instrumented():
        for _ in range(RANK_BURST):
            model.rank(batch, "r0", now)

    def bare():
        for _ in range(RANK_BURST):
            _rank_uninstrumented(model, batch, "r0", now)

    # Interleave the two measurements so slow-start noise (CPU
    # frequency, cache warmth) cannot land on one side only.
    instrumented_ns = None
    bare_ns = None
    for _ in range(REPEATS):
        b = _best_ns(bare, repeats=1)
        i = _best_ns(instrumented, repeats=1)
        bare_ns = b if bare_ns is None else min(bare_ns, b)
        instrumented_ns = (
            i if instrumented_ns is None else min(instrumented_ns, i)
        )

    overhead = instrumented_ns / bare_ns - 1.0
    table_printer(
        f"Disabled-recorder overhead (rank x{RANK_BURST}, "
        f"batch of {BATCH_SIZE})",
        ["path", "best ns", "overhead"],
        [
            ["uninstrumented", bare_ns, "-"],
            ["instrumented (no-op)", instrumented_ns, f"{overhead:+.1%}"],
        ],
    )

    if BENCH_PATH.exists():
        payload = json.loads(BENCH_PATH.read_text())
    else:
        payload = {}
    payload["obs"] = {
        "rank_burst": RANK_BURST,
        "batch_size": BATCH_SIZE,
        "uninstrumented_ns": bare_ns,
        "instrumented_noop_ns": instrumented_ns,
        "overhead_fraction": round(overhead, 4),
        "limit_fraction": OBS_OVERHEAD_LIMIT,
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    assert instrumented_ns <= bare_ns * (1.0 + OBS_OVERHEAD_LIMIT) + (
        OBS_SLACK_NS
    ), (
        f"disabled instrumentation costs {overhead:.1%} "
        f"(> {OBS_OVERHEAD_LIMIT:.0%} + slack) on the rank hot path"
    )
