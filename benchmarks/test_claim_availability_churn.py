"""C14 — §4: the single point of failure, measured under chaos.

The survey's architectural claim (centralized registries are simpler
but "suffer a single point of failure"; decentralized overlays trade
messages for resilience) is usually left qualitative.  This benchmark
injects the *same* seeded fault plan — consumer churn, 2% message loss,
two registry outage windows, one slow provider — into three deployments
of the same selection workload and measures what each architecture
actually delivers:

* **central-naive** — selection availability collapses to zero inside
  the registry outage windows;
* **central-resilient** — retry + circuit breaker + stale-cache
  fallback keep selection available through the outages, but every
  outage-window answer is degraded (age-discounted stale data), and the
  breaker's closed→open→half-open→closed cycle is visible in its
  transition log;
* **pgrid** — replicated overlay storage keeps selection almost
  entirely *fresh* through the registry outages (only its own peer
  churn degrades it), at a multiple of the message cost.

Run with ``-s`` to see the comparison table.
"""

from __future__ import annotations

import pytest

from repro.experiments.chaos import (
    CENTRAL_NAIVE,
    CENTRAL_RESILIENT,
    PGRID,
    ChaosConfig,
    run_chaos_comparison,
    run_chaos_deployment,
)
from repro.experiments.parallel import jobs_from_env

from benchmarks.conftest import print_table

CONFIG = ChaosConfig()


@pytest.fixture(scope="module")
def reports():
    # REPRO_JOBS > 1 fans the three churn conditions across processes;
    # by the parallel==serial contract the reports are identical.
    return run_chaos_comparison(CONFIG, max_workers=jobs_from_env(1))


def test_chaos_runs_are_deterministic():
    first = run_chaos_deployment(CENTRAL_RESILIENT, CONFIG)
    second = run_chaos_deployment(CENTRAL_RESILIENT, CONFIG)
    assert first.trace == second.trace
    assert first.breaker_transitions == second.breaker_transitions
    assert first.messages == second.messages


def test_same_plan_across_deployments(reports):
    # Identical worlds + identical fault plans: every deployment faces
    # the same consumer-uptime schedule, hence the same attempt counts.
    attempts = {r.attempts for r in reports.values()}
    assert len(attempts) == 1
    assert reports[CENTRAL_NAIVE].outage_attempts == \
        reports[CENTRAL_RESILIENT].outage_attempts


def test_naive_central_collapses_during_outages(reports):
    naive = reports[CENTRAL_NAIVE]
    assert naive.outage_attempts > 0
    # The single point of failure, quantified: no selection succeeds
    # while the registry is down.
    assert naive.outage_availability <= 0.05
    assert naive.degraded == 0  # nothing to degrade to
    # Outside the outages the same deployment works fine.
    assert naive.availability > 0.4


def test_resilient_central_degrades_gracefully(reports):
    resilient = reports[CENTRAL_RESILIENT]
    # Availability survives the outages ...
    assert resilient.outage_availability >= 0.95
    # ... but only via the stale-fallback path: outage-window answers
    # are degraded, not fresh.
    assert resilient.outage_degraded > 0
    assert resilient.outage_fresh_availability <= 0.05
    assert resilient.degraded > 0
    assert resilient.availability > reports[CENTRAL_NAIVE].availability


def test_breaker_cycles_closed_open_half_open(reports):
    transitions = [
        (frm, to)
        for _, frm, to in reports[CENTRAL_RESILIENT].breaker_transitions
    ]
    assert ("closed", "open") in transitions
    assert ("open", "half_open") in transitions
    # Recovery probes during the outage fail and re-open; after the
    # outage one probe succeeds and the circuit closes again.
    assert ("half_open", "open") in transitions
    assert ("half_open", "closed") in transitions
    # The naive client's breaker is configured to never trip.
    assert reports[CENTRAL_NAIVE].breaker_transitions == []


def test_pgrid_stays_fresh_through_registry_outages(reports):
    pgrid = reports[PGRID]
    # No central registry to lose: outage windows barely register, and
    # the answers that do arrive are fresh overlay lookups.
    assert pgrid.outage_availability >= 0.95
    assert pgrid.outage_fresh_availability >= 0.9
    assert (
        pgrid.outage_fresh_availability
        > reports[CENTRAL_RESILIENT].outage_fresh_availability
    )


def test_resilience_costs_messages(reports):
    # The survey's trade-off: decentralization buys availability with
    # message overhead; client-side resilience sits in between.
    assert reports[PGRID].messages > reports[CENTRAL_NAIVE].messages
    assert reports[CENTRAL_RESILIENT].messages >= \
        reports[CENTRAL_NAIVE].messages


def test_report_table(reports):
    rows = [
        [
            name,
            r.attempts,
            f"{r.availability:.3f}",
            f"{r.outage_availability:.3f}",
            f"{r.outage_fresh_availability:.3f}",
            r.degraded,
            f"{r.mean_regret:.4f}",
            r.messages,
            r.messages_dropped,
            r.reports_lost,
        ]
        for name, r in reports.items()
    ]
    print_table(
        "C14: selection availability under churn + registry outages",
        [
            "deployment",
            "attempts",
            "avail",
            "outage avail",
            "outage fresh",
            "degraded",
            "regret",
            "msgs",
            "dropped",
            "lost reports",
        ],
        rows,
    )
    transitions = reports[CENTRAL_RESILIENT].breaker_transitions
    print_table(
        "C14: circuit breaker transitions (central-resilient)",
        ["t", "from", "to"],
        [[f"{t:.0f}", frm, to] for t, frm, to in transitions],
    )
