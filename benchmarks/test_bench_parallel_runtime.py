"""Throughput regression harness for the parallel experiment runtime.

Times the canonical replication workload (N seeded trials of one model
through :func:`run_selection_experiment`) three ways:

* **serial harness** — the pre-existing path: a plain Python loop
  building a world and model per seed and calling the harness directly;
* **pool @ 1 worker** — :func:`repro.experiments.parallel.run_trials`
  with ``max_workers=1``, i.e. the runtime's serial fallback.  The gate
  requires this to be within noise of the serial harness: the spec
  layer must cost (almost) nothing when it buys no parallelism;
* **pool @ N workers** — the process-pool fan-out, for each worker
  count under test (``REPRO_BENCH_JOBS`` overrides the default 2,4).

Before any timing it asserts the determinism contract on the real
workload: every pooled run must reproduce the serial harness outcomes
*exactly* — final scores, per-round accuracy, regret sequences.

Results are written to ``BENCH_runtime.json`` at the repo root (the
tracked baseline next to ``BENCH_models.json``).  Speedup gates are
core-aware: a 4-worker pool can only be required to beat 2x where four
hardware threads exist, so the file records ``cpu_count`` alongside
every measurement and the assertion tier degrades with the host.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Callable, Dict, List

from repro.core.registry import default_registry
from repro.experiments.harness import (
    SelectionOutcome,
    run_selection_experiment,
)
from repro.experiments.parallel import (
    TrialRunReport,
    replication_specs,
    run_trials,
)
from repro.experiments.workloads import make_world

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_runtime.json"

MODEL = "beta"
TRIALS = 8
ROUNDS = 30
BASE_SEED = 2026
WORLD_PARAMS = dict(
    n_providers=5, services_per_provider=2, n_consumers=25
)
#: min-of-repeats for the two serial timings (noise-robust estimator).
REPEATS = 3
#: repeats for pooled timings — pools are slower to spin up, and the
#: speedup gates have wide margins, so two samples suffice.
POOL_REPEATS = 2
#: pool @ 1 worker may cost at most this factor over the bare loop.
MAX_SERIAL_OVERHEAD = 1.35


def bench_workers() -> List[int]:
    """Worker counts under test; ``REPRO_BENCH_JOBS=n`` narrows the run
    to one count (what CI uses on its 2-core runners)."""
    raw = os.environ.get("REPRO_BENCH_JOBS", "").strip()
    if raw:
        return [max(2, int(raw))]
    return [2, 4]


def _specs():
    return replication_specs(
        MODEL,
        TRIALS,
        base_seed=BASE_SEED,
        rounds=ROUNDS,
        world_params=WORLD_PARAMS,
    )


def run_serial_harness() -> List[SelectionOutcome]:
    """The pre-pool execution path, reproduced exactly: build a world
    and model per derived seed, loop run_selection_experiment."""
    outcomes = []
    for spec in _specs():
        world = make_world(seed=spec.seed, **WORLD_PARAMS)
        model = default_registry(rng_seed=spec.seed).create(MODEL)
        outcomes.append(
            run_selection_experiment(model, world, rounds=ROUNDS)
        )
    return outcomes


def _best_ns(fn: Callable[[], object], repeats: int = REPEATS) -> int:
    best = None
    for _ in range(repeats):
        start = time.perf_counter_ns()
        fn()
        elapsed = time.perf_counter_ns() - start
        if best is None or elapsed < best:
            best = elapsed
    assert best is not None
    return best


def _same_outcomes(
    pooled: List[SelectionOutcome], serial: List[SelectionOutcome]
) -> bool:
    """Exact replay — no tolerances anywhere."""
    if len(pooled) != len(serial):
        return False
    for a, b in zip(pooled, serial):
        if a.final_scores != b.final_scores:
            return False
        if a.result.regrets != b.result.regrets:
            return False
        if a.result.round_accuracy != b.result.round_accuracy:
            return False
        if a.ranking != b.ranking:
            return False
    return True


def test_parallel_runtime_regression(table_printer):
    cores = os.cpu_count() or 1
    specs = _specs()
    reference = run_serial_harness()

    # -- determinism gate first: every execution mode, same outcomes --
    pool_serial: TrialRunReport = run_trials(specs, max_workers=1)
    assert pool_serial.mode == "serial"
    assert _same_outcomes(pool_serial.outcomes, reference), (
        "pool serial fallback diverged from the bare harness loop"
    )
    worker_counts = bench_workers()
    for workers in worker_counts:
        pooled = run_trials(specs, max_workers=workers)
        assert pooled.mode == "process-pool"
        assert _same_outcomes(pooled.outcomes, reference), (
            f"{workers}-worker pool diverged from the serial harness"
        )

    # -- timings ------------------------------------------------------
    serial_ns = _best_ns(run_serial_harness)
    pool1_ns = _best_ns(lambda: run_trials(specs, max_workers=1))
    pool_rows: Dict[int, Dict[str, object]] = {}
    for workers in worker_counts:
        wall_ns = _best_ns(
            lambda w=workers: run_trials(specs, max_workers=w),
            repeats=POOL_REPEATS,
        )
        pool_rows[workers] = {
            "wall_ns": wall_ns,
            "ns_per_trial": round(wall_ns / TRIALS),
            "speedup_vs_serial": round(serial_ns / wall_ns, 2),
        }

    payload = {
        "config": {
            "model": MODEL,
            "trials": TRIALS,
            "rounds": ROUNDS,
            "base_seed": BASE_SEED,
            "world_params": WORLD_PARAMS,
            "repeats": REPEATS,
            "pool_repeats": POOL_REPEATS,
            "timer": "perf_counter_ns/min",
            "cpu_count": cores,
        },
        "serial_harness": {
            "wall_ns": serial_ns,
            "ns_per_trial": round(serial_ns / TRIALS),
        },
        "pool_1_worker": {
            "wall_ns": pool1_ns,
            "ns_per_trial": round(pool1_ns / TRIALS),
            "overhead_vs_serial": round(pool1_ns / serial_ns, 2),
        },
        "pool": {str(w): row for w, row in pool_rows.items()},
    }
    BENCH_PATH.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )

    rows = [
        ["serial harness", serial_ns // TRIALS, "x1.00"],
        [
            "pool @ 1",
            pool1_ns // TRIALS,
            f"x{serial_ns / pool1_ns:.2f}",
        ],
    ] + [
        [
            f"pool @ {w}",
            row["wall_ns"] // TRIALS,
            f"x{row['speedup_vs_serial']}",
        ]
        for w, row in sorted(pool_rows.items())
    ]
    table_printer(
        f"Parallel runtime: {TRIALS} replications x {ROUNDS} rounds "
        f"({MODEL}, {cores} cores)",
        ["mode", "ns/trial", "speedup"],
        rows,
    )

    # -- gates --------------------------------------------------------
    # 1-worker path must stay within noise of the pre-existing loop.
    assert pool1_ns <= serial_ns * MAX_SERIAL_OVERHEAD, (
        f"pool at 1 worker is {pool1_ns / serial_ns:.2f}x the serial "
        f"harness (max allowed {MAX_SERIAL_OVERHEAD}x)"
    )
    # Speedup tiers only bind where the hardware can deliver them:
    # >= 2x when the host has >= 4 cores for a 4-worker pool, >= 1.2x
    # for a 2-worker pool on >= 2 cores.  Measurements are recorded in
    # BENCH_runtime.json either way.
    for workers, row in pool_rows.items():
        if cores >= workers >= 4:
            assert row["speedup_vs_serial"] >= 2.0, (
                f"{workers}-worker speedup {row['speedup_vs_serial']} "
                f"< 2.0 on a {cores}-core host"
            )
        elif cores >= workers >= 2:
            assert row["speedup_vs_serial"] >= 1.2, (
                f"{workers}-worker speedup {row['speedup_vs_serial']} "
                f"< 1.2 on a {cores}-core host"
            )
