"""C10 — §3: "Trust can be transitive … Alice trusts her doctor and her
doctor trusts an eye specialist.  Then Alice can trust the eye
specialist."

How far does transitivity usefully stretch?  Referral chains of
increasing length connect an asker to a witness with perfect knowledge
of the target; we measure how well the asker's derived trust matches
the witness's knowledge:

* Histos propagates the *value* along weighted paths — accurate while
  every link is strong, decaying with link quality;
* Yu & Singh discount *testimony mass* per hop — longer chains converge
  to maximal uncertainty (0.5), which is the conservative behaviour
  their belief model is designed for;
* Jøsang's subjective logic (the paper's [10], see
  :mod:`repro.trustnet`) makes the uncertainty explicit: the derived
  opinion's expectation decays like Yu-Singh's, and its uncertainty
  component *grows* monotonically with chain length.
"""

from __future__ import annotations

from typing import Dict, List

import pytest

from repro.common.records import Feedback
from repro.models.histos import HistosModel
from repro.models.yu_singh import YuSinghModel
from repro.trustnet import Opinion, TrustNetwork

from benchmarks.conftest import print_table

CHAIN_LENGTHS = [1, 2, 3, 4, 5]
TARGET_QUALITY = 0.9
LINK_TRUST = 0.9


def build_chain(length: int):
    """alice -> w1 -> w2 ... -> w_length; the last witness knows the
    target."""
    links: List[Feedback] = []
    nodes = ["alice"] + [f"w{i}" for i in range(1, length + 1)]
    t = 0.0
    for a, b in zip(nodes, nodes[1:]):
        links.append(Feedback(rater=a, target=b, time=t, rating=LINK_TRUST))
        t += 1.0
    witness = nodes[-1]
    for k in range(5):
        links.append(
            Feedback(rater=witness, target="specialist", time=t,
                     rating=TARGET_QUALITY)
        )
        t += 1.0
    return links, witness


def histos_estimate(length: int) -> float:
    model = HistosModel(max_depth=length + 1)
    links, _ = build_chain(length)
    model.record_many(links)
    return model.score("specialist", perspective="alice")


def yu_singh_estimate(length: int) -> float:
    model = YuSinghModel(referral_discount=0.8)
    links, witness = build_chain(length)
    model.record_many(links)
    own = (0.0, 0.0, 1.0)
    testimony = model.testimony_from(witness, "specialist",
                                     chain_length=length)
    combined = model.combine_testimonies(own, [testimony])
    return model.degree_of_trust(combined)


def subjective_logic_estimate(length: int):
    """(expectation, uncertainty) of the TNA-SL derived opinion."""
    net = TrustNetwork(max_depth=length + 1)
    nodes = ["alice"] + [f"w{i}" for i in range(1, length + 1)]
    link = Opinion.from_rating(LINK_TRUST, confidence=0.9)
    for a, b in zip(nodes, nodes[1:]):
        net.add_referral_trust(a, b, link)
    net.add_functional_trust(
        nodes[-1], "specialist", Opinion.from_evidence(9, 1)
    )
    derived = net.derived_trust("alice", "specialist")
    return derived.expectation, derived.uncertainty


class TestTransitivity:
    @pytest.fixture(scope="class")
    def estimates(self) -> Dict[int, Dict[str, float]]:
        table = {}
        for length in CHAIN_LENGTHS:
            expectation, uncertainty = subjective_logic_estimate(length)
            table[length] = {
                "histos": histos_estimate(length),
                "yu_singh": yu_singh_estimate(length),
                "sl_expectation": expectation,
                "sl_uncertainty": uncertainty,
            }
        return table

    def test_one_hop_transitivity_works(self, estimates):
        # The paper's doctor -> specialist example.
        assert estimates[1]["histos"] == pytest.approx(TARGET_QUALITY)
        assert estimates[1]["yu_singh"] > 0.8

    def test_histos_estimate_is_path_stable(self, estimates):
        # Value propagation: a chain of strong links transmits the
        # witness's value essentially unchanged.
        for length in CHAIN_LENGTHS:
            assert estimates[length]["histos"] == pytest.approx(
                TARGET_QUALITY, abs=0.01
            )

    def test_yu_singh_confidence_decays_toward_uncertainty(self, estimates):
        values = [estimates[length]["yu_singh"] for length in CHAIN_LENGTHS]
        # Monotonically approaching the maximal-uncertainty value 0.5
        # from above: longer chains, weaker commitment.
        deltas = [abs(v - 0.5) for v in values]
        assert deltas == sorted(deltas, reverse=True)
        assert values[-1] < values[0]

    def test_subjective_logic_uncertainty_grows_with_chain(self, estimates):
        uncertainties = [
            estimates[length]["sl_uncertainty"] for length in CHAIN_LENGTHS
        ]
        assert uncertainties == sorted(uncertainties)
        expectations = [
            estimates[length]["sl_expectation"] for length in CHAIN_LENGTHS
        ]
        # Expectation decays toward the base rate 0.5 from above.
        assert expectations == sorted(expectations, reverse=True)
        assert expectations[0] > 0.7

    def test_broken_link_stops_histos_propagation(self):
        model = HistosModel()
        links, _ = build_chain(3)
        model.record_many(links)
        # Alice revokes trust in her first contact.
        model.record(Feedback(rater="alice", target="w1", time=99.0,
                              rating=0.0))
        assert model.score("specialist", perspective="alice") == 0.5

    def test_report(self, estimates):
        rows = [
            [
                length,
                f"{estimates[length]['histos']:.3f}",
                f"{estimates[length]['yu_singh']:.3f}",
                f"{estimates[length]['sl_expectation']:.3f}",
                f"{estimates[length]['sl_uncertainty']:.3f}",
            ]
            for length in CHAIN_LENGTHS
        ]
        print_table(
            "C10: derived trust in the specialist vs referral chain "
            f"length (true quality {TARGET_QUALITY}, link trust "
            f"{LINK_TRUST})",
            ["chain length", "histos", "yu_singh", "SL E(x)", "SL u"],
            rows,
        )


@pytest.mark.benchmark(group="c10")
def test_bench_histos_deep_chain(benchmark):
    model = HistosModel(max_depth=6)
    links, _ = build_chain(5)
    model.record_many(links)
    benchmark(lambda: model.score("specialist", perspective="alice"))
