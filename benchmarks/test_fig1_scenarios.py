"""F1 — Figure 1: the two web service usage scenarios.

Reproduces the figure as an experiment: direct selection (A) is driven
by the web service's own QoS; mediated selection (B) by the general
service behind the intermediary.  The table shows that the same
reputation mechanism learns the right target in both scenarios, and
that in B the intermediary's own QoS barely matters (we make all
intermediaries' web QoS identical and the mechanism still separates
them by their general services).
"""

from __future__ import annotations

import pytest

from repro.common.randomness import SeedSequenceFactory
from repro.core.scenarios import (
    DirectSelectionScenario,
    MediatedSelectionScenario,
)
from repro.core.selection import EpsilonGreedyPolicy
from repro.experiments.workloads import make_consumers, make_world
from repro.models.beta import BetaReputation
from repro.services.description import ServiceDescription
from repro.services.general import GeneralService, IntermediaryService
from repro.services.provider import Service
from repro.services.qos import DEFAULT_METRICS, QoSProfile

from benchmarks.conftest import print_table

ROUNDS = 40
SEEDS = [0, 1, 2]


def run_direct(seed: int):
    world = make_world(
        n_providers=5, services_per_provider=1, n_consumers=12,
        seed=seed, quality_spread=0.3,
    )
    scenario = DirectSelectionScenario(
        services=world.services,
        consumers=world.consumers,
        model=BetaReputation(),
        taxonomy=world.taxonomy,
        policy=EpsilonGreedyPolicy(0.1, rng=world.seeds.rng("policy")),
        rng=world.seeds.rng("invoke"),
    )
    return scenario.run(ROUNDS)


def build_mediated(seed: int, intermediary_weight: float = 0.2):
    seeds = SeedSequenceFactory(seed)
    intermediaries = []
    for i in range(4):
        svc = Service(
            description=ServiceDescription(
                service=f"booker-{i}", provider=f"prov-{i}",
                category="flight_booking",
            ),
            # Identical web-service QoS across intermediaries.
            profile=QoSProfile(
                quality={m.name: 0.7 for m in DEFAULT_METRICS}, noise=0.02
            ),
        )
        general_quality = 0.25 + 0.17 * i
        catalog = [
            GeneralService(
                general_id=f"flight-{i}-{j}",
                domain="flight",
                quality={
                    "comfort": general_quality,
                    "punctuality": general_quality,
                },
                noise=0.03,
            )
            for j in range(3)
        ]
        intermediaries.append(
            IntermediaryService(
                svc, catalog, intermediary_weight=intermediary_weight,
                rng=seeds.rng(f"inter-{i}"),
            )
        )
    consumers = make_consumers(12, DEFAULT_METRICS, seeds)
    return MediatedSelectionScenario(
        intermediaries=intermediaries,
        consumers=consumers,
        model=BetaReputation(),
        taxonomy=DEFAULT_METRICS,
        policy=EpsilonGreedyPolicy(0.1, rng=seeds.rng("policy")),
        rng=seeds.rng("invoke"),
    )


def build_conflict_market(seed: int, intermediary_weight: float):
    """Web QoS and general-service quality deliberately anti-correlated.

    booker-0 has the best *web service* but brokers the worst flights;
    booker-3 the reverse.  Which one consumers should (and do) converge
    on depends on the intermediary weight — the paper's claim is that
    in practice that weight is small, so the general service decides.
    """
    seeds = SeedSequenceFactory(seed)
    intermediaries = []
    for i in range(4):
        web_quality = 0.9 - 0.2 * i       # 0.9 .. 0.3
        general_quality = 0.3 + 0.2 * i   # 0.3 .. 0.9
        svc = Service(
            description=ServiceDescription(
                service=f"booker-{i}", provider=f"prov-{i}",
                category="flight_booking",
            ),
            profile=QoSProfile(
                quality={m.name: web_quality for m in DEFAULT_METRICS},
                noise=0.02,
            ),
        )
        catalog = [
            GeneralService(
                general_id=f"flight-{i}-{j}",
                domain="flight",
                quality={"comfort": general_quality,
                         "punctuality": general_quality},
                noise=0.03,
            )
            for j in range(2)
        ]
        intermediaries.append(
            IntermediaryService(
                svc, catalog, intermediary_weight=intermediary_weight,
                rng=seeds.rng(f"inter-{i}"),
            )
        )
    consumers = make_consumers(12, DEFAULT_METRICS, seeds)
    return MediatedSelectionScenario(
        intermediaries=intermediaries,
        consumers=consumers,
        model=BetaReputation(),
        taxonomy=DEFAULT_METRICS,
        policy=EpsilonGreedyPolicy(0.1, rng=seeds.rng("policy")),
        rng=seeds.rng("invoke"),
    )


class TestIntermediaryWeightAblation:
    """How small does the intermediary's part have to be?"""

    WEIGHTS = [0.1, 0.5, 0.9]

    @pytest.fixture(scope="class")
    def winners(self):
        table = {}
        for w in self.WEIGHTS:
            scenario = build_conflict_market(seed=5, intermediary_weight=w)
            result = scenario.run(ROUNDS)
            table[w] = max(
                result.selection_counts, key=result.selection_counts.get
            )
        return table

    def test_small_weight_general_service_decides(self, winners):
        # The paper's regime: intermediary QoS "only plays a small
        # part" -> best flights win despite the worst web service.
        assert winners[0.1] == "booker-3"

    def test_large_weight_web_service_decides(self, winners):
        assert winners[0.9] == "booker-0"

    def test_report(self, winners):
        print_table(
            "Figure 1B ablation: most-selected intermediary vs "
            "intermediary weight (web QoS anti-correlated with flight "
            "quality)",
            ["intermediary weight", "winner"],
            [[f"{w:.1f}", winners[w]] for w in self.WEIGHTS],
        )


class TestFigure1:
    def test_direct_scenario_learns_service_quality(self):
        tails = [run_direct(seed).tail_accuracy(0.25) for seed in SEEDS]
        assert sum(tails) / len(tails) > 0.5

    def test_mediated_scenario_learns_general_service_quality(self):
        tails = []
        for seed in SEEDS:
            scenario = build_mediated(seed)
            result = scenario.run(ROUNDS)
            tails.append(result.tail_accuracy(0.25))
        assert sum(tails) / len(tails) > 0.5

    def test_report(self):
        rows = []
        for seed in SEEDS:
            direct = run_direct(seed)
            mediated = build_mediated(seed).run(ROUNDS)
            rows.append([
                seed,
                f"{direct.accuracy:.3f}",
                f"{direct.tail_accuracy(0.25):.3f}",
                f"{direct.mean_regret:.4f}",
                f"{mediated.accuracy:.3f}",
                f"{mediated.tail_accuracy(0.25):.3f}",
                f"{mediated.mean_regret:.4f}",
            ])
        print_table(
            "Figure 1: direct (A) vs mediated (B) selection "
            "(beta reputation, 40 rounds)",
            ["seed", "A acc", "A tail", "A regret",
             "B acc", "B tail", "B regret"],
            rows,
        )


@pytest.mark.benchmark(group="fig1")
def test_bench_direct_scenario(benchmark):
    benchmark(lambda: run_direct(0))


@pytest.mark.benchmark(group="fig1")
def test_bench_mediated_scenario(benchmark):
    benchmark(lambda: build_mediated(0).run(10))
