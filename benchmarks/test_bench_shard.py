"""Wall-clock regression harness for the sharded single-world runtime.

Times one large world (10^5 agents by default; ``REPRO_BENCH_SHARD_AGENTS``
scales it up to the 10^6 local target) executed two ways:

* **1 shard, serial** — the reference: the sharded runner degenerates
  to a single in-process partition;
* **N shards, process mode** — one worker process per shard with
  epoch-barrier feedback exchange (``REPRO_BENCH_SHARD_JOBS`` narrows
  the shard counts to one, what CI uses on its 2-core runners).

Before any timing it asserts the headline contract on a small world:
1 shard == 2 shards == 4 shards, byte-identical ``canonical_bytes()``,
serial and process mode alike.  Every timed pooled run must also
reproduce the 1-shard reference bytes exactly — a fast comparison that
makes the timings unfalsifiable-by-divergence.

Results go to ``BENCH_shard.json`` at the repo root (tracked baseline).
Speedup gates are core-aware: >= 2x at 4 shards only where >= 4
hardware threads exist, >= 1.2x at 2 shards on >= 2 cores; on smaller
hosts the measurements are recorded without asserting.  Per-shard load
imbalance and cross-shard message cost are read from the dispatch
report's merged network registries, so they follow the same
silent-shard discipline the obs ledger uses.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Callable, Dict, List

from repro.experiments.sharded import (
    PROCESS,
    SERIAL,
    ShardedRunSpec,
    run_sharded_experiment,
)

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_shard.json"

MODEL = "beta"
SEED = 2026
EPOCHS = 2
ROUNDS_PER_EPOCH = 2
AGENTS = int(os.environ.get("REPRO_BENCH_SHARD_AGENTS", "100000"))
WORLD_PARAMS = dict(n_providers=5, services_per_provider=2)
#: the big runs take tens of seconds; one sample per mode suffices
#: (divergence, not noise, is the failure mode the gate guards).
REPEATS = 1

GATE_WORLD = dict(n_providers=3, services_per_provider=2, n_consumers=97)


def bench_shards() -> List[int]:
    raw = os.environ.get("REPRO_BENCH_SHARD_JOBS", "").strip()
    if raw:
        return [max(2, int(raw))]
    return [2, 4]


def _spec(n_consumers: int) -> ShardedRunSpec:
    params = dict(WORLD_PARAMS, n_consumers=n_consumers)
    return ShardedRunSpec(
        model=MODEL,
        seed=SEED,
        epochs=EPOCHS,
        rounds_per_epoch=ROUNDS_PER_EPOCH,
        world_params=params,
    )


def _best_ns(fn: Callable[[], object], repeats: int = REPEATS) -> int:
    best = None
    for _ in range(repeats):
        start = time.perf_counter_ns()
        fn()
        elapsed = time.perf_counter_ns() - start
        if best is None or elapsed < best:
            best = elapsed
    assert best is not None
    return best


def test_shard_runtime_regression(table_printer):
    cores = os.cpu_count() or 1
    shard_counts = bench_shards()

    # -- determinism gate first: small world, every mode, same bytes --
    gate_spec = ShardedRunSpec(
        model=MODEL,
        seed=SEED,
        epochs=EPOCHS,
        rounds_per_epoch=ROUNDS_PER_EPOCH,
        world_params=GATE_WORLD,
    )
    gate_ref = run_sharded_experiment(gate_spec, shards=1, mode=SERIAL)
    gate_bytes = gate_ref.canonical_bytes()
    for shards in (2, 4):
        serial = run_sharded_experiment(gate_spec, shards=shards, mode=SERIAL)
        assert serial.canonical_bytes() == gate_bytes, (
            f"{shards}-shard serial run diverged from the 1-shard bytes"
        )
        assert serial.result == gate_ref.result
    pooled_gate = run_sharded_experiment(gate_spec, shards=2, mode=PROCESS)
    assert pooled_gate.dispatch.mode == PROCESS
    assert pooled_gate.canonical_bytes() == gate_bytes, (
        "process-mode run diverged from the 1-shard bytes"
    )

    # -- timings on the big world -------------------------------------
    spec = _spec(AGENTS)
    total_rows = spec.total_rounds * AGENTS
    reference = run_sharded_experiment(spec, shards=1, mode=SERIAL)
    reference_bytes = reference.canonical_bytes()
    serial_ns = reference.dispatch.wall_ns

    shard_rows: Dict[int, Dict[str, object]] = {}
    for shards in shard_counts:
        report = run_sharded_experiment(spec, shards=shards, mode=PROCESS)
        assert report.canonical_bytes() == reference_bytes, (
            f"{shards}-shard process run diverged from the 1-shard bytes"
        )
        dispatch = report.dispatch
        shard_rows[shards] = {
            "wall_ns": dispatch.wall_ns,
            "ns_per_row": round(dispatch.wall_ns / total_rows),
            "speedup_vs_serial": round(serial_ns / dispatch.wall_ns, 2),
            "load_imbalance": round(dispatch.load_imbalance, 3),
            "cross_shard_rows": dispatch.cross_shard_rows,
            "cross_shard_fraction": round(
                dispatch.cross_shard_rows / total_rows, 4
            ),
            "exchange_messages": dispatch.exchange_stats.total_messages,
            "consumers_per_shard": dispatch.consumers_per_shard,
        }

    payload = {
        "config": {
            "model": MODEL,
            "agents": AGENTS,
            "epochs": EPOCHS,
            "rounds_per_epoch": ROUNDS_PER_EPOCH,
            "rows": total_rows,
            "seed": SEED,
            "world_params": WORLD_PARAMS,
            "repeats": REPEATS,
            "timer": "perf_counter_ns/min",
            "cpu_count": cores,
        },
        "serial_1_shard": {
            "wall_ns": serial_ns,
            "ns_per_row": round(serial_ns / total_rows),
        },
        "sharded": {str(s): row for s, row in shard_rows.items()},
    }
    BENCH_PATH.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )

    rows = [
        ["1 shard (serial)", serial_ns // total_rows, "x1.00", "-", "-"]
    ] + [
        [
            f"{s} shards",
            row["wall_ns"] // total_rows,
            f"x{row['speedup_vs_serial']}",
            f"{row['load_imbalance']}",
            f"{row['cross_shard_fraction']}",
        ]
        for s, row in sorted(shard_rows.items())
    ]
    table_printer(
        f"Sharded runtime: {AGENTS} agents x {spec.total_rounds} rounds "
        f"({MODEL}, {cores} cores)",
        ["mode", "ns/row", "speedup", "imbalance", "cross-shard"],
        rows,
    )

    # -- gates --------------------------------------------------------
    # Speedup tiers only bind where the hardware can deliver them; the
    # measurement lands in BENCH_shard.json either way.
    for shards, row in shard_rows.items():
        if cores >= shards >= 4:
            assert row["speedup_vs_serial"] >= 2.0, (
                f"{shards}-shard speedup {row['speedup_vs_serial']} "
                f"< 2.0 on a {cores}-core host"
            )
        elif cores >= shards >= 2:
            assert row["speedup_vs_serial"] >= 1.2, (
                f"{shards}-shard speedup {row['speedup_vs_serial']} "
                f"< 1.2 on a {cores}-core host"
            )
