"""Design-choice ablations promised by DESIGN.md §5.

* P-Grid replication factor — routing robustness vs. storage overhead;
* EigenTrust pre-trusted set size — collusion resistance;
* PeerTrust credibility source — PSM vs. TVM under badmouthing;
* Sen & Sajja witness budget — accuracy vs. #witnesses at a fixed liar
  fraction.

(The CF similarity ablation lives in C8; the decay ablation is C4; the
threshold-placement ablation is part of F4.)
"""

from __future__ import annotations

import pytest

from repro.common.records import Feedback
from repro.common.randomness import SeedSequenceFactory
from repro.models.eigentrust import EigenTrustModel
from repro.models.peertrust import CredibilityMeasure, PeerTrustModel
from repro.p2p.pgrid import PGrid
from repro.robustness.majority import (
    MajorityOpinion,
    majority_correct_probability,
)

from benchmarks.conftest import print_table


# ---------------------------------------------------------------------------
# P-Grid replication factor
# ---------------------------------------------------------------------------

def pgrid_survival_rate(replication: int, failure_fraction: float,
                        n_peers: int = 64, n_keys: int = 30,
                        n_seeds: int = 3) -> float:
    """Mean fraction of keys still retrievable after random failures.

    Routing redundancy (refs per level) is held generous and constant
    so the sweep isolates the *storage replication* effect.
    """
    total = 0.0
    for seed in range(n_seeds):
        seeds = SeedSequenceFactory(
            seed * 10000 + replication * 100 + int(failure_fraction * 100)
        )
        rng = seeds.rng("failures")
        peers = [f"peer-{i:03d}" for i in range(n_peers)]
        grid = PGrid(peers, replication=replication, refs_per_level=4,
                     rng=seeds.rng("grid"))
        for k in range(n_keys):
            grid.insert(peers[0], f"key-{k}", Feedback(
                rater=peers[0], target=f"key-{k}", time=0.0, rating=0.5,
            ))
        n_failed = int(failure_fraction * n_peers)
        failed = set(
            peers[int(i)] for i in rng.choice(n_peers, size=n_failed,
                                              replace=False)
        )
        for pid in failed:
            grid.peer(pid).online = False
        alive = [p for p in peers if p not in failed]
        retrieved = 0
        for k in range(n_keys):
            origin = alive[k % len(alive)]
            try:
                found, _ = grid.lookup(origin, f"key-{k}", f"key-{k}")
            except Exception:
                continue
            if found:
                retrieved += 1
        total += retrieved / n_keys
    return total / n_seeds


class TestPGridReplicationAblation:
    FAILURES = [0.0, 0.2, 0.4]

    @pytest.fixture(scope="class")
    def survival(self):
        return {
            r: {f: pgrid_survival_rate(r, f) for f in self.FAILURES}
            for r in [1, 2, 4]
        }

    def test_no_failures_everything_survives(self, survival):
        for r in survival:
            assert survival[r][0.0] == 1.0

    def test_replication_buys_failure_tolerance(self, survival):
        assert survival[4][0.4] >= survival[1][0.4]
        assert survival[4][0.4] > 0.6
        assert survival[2][0.2] > 0.7

    def test_report(self, survival):
        rows = [
            [r] + [f"{survival[r][f]:.2f}" for f in self.FAILURES]
            for r in sorted(survival)
        ]
        print_table(
            "Ablation: P-Grid key survival vs replication factor "
            "(64 peers, 30 keys)",
            ["replication"] + [f"{f:.0%} failed" for f in self.FAILURES],
            rows,
        )


# ---------------------------------------------------------------------------
# EigenTrust pre-trusted set size
# ---------------------------------------------------------------------------

def eigentrust_ring_mass(n_pretrusted: int, seed: int = 0) -> float:
    """Trust mass a self-praising ring captures."""
    seeds = SeedSequenceFactory(seed)
    rng = seeds.rng("tx")
    honest = [f"h{i}" for i in range(12)]
    ring = [f"ring{i}" for i in range(4)]
    model = EigenTrustModel(
        pre_trusted=honest[:n_pretrusted] if n_pretrusted else [],
        alpha=0.2 if n_pretrusted else 0.0,
    )
    t = 0.0
    for a in honest:
        for b in honest:
            if a != b and rng.random() < 0.5:
                model.record(Feedback(rater=a, target=b, time=t,
                                      rating=0.9))
                t += 1.0
    for a in ring:
        for b in ring:
            if a != b:
                for _ in range(10):
                    model.record(Feedback(rater=a, target=b, time=t,
                                          rating=1.0))
                    t += 1.0
    trust = model.compute()
    return sum(trust.get(r, 0.0) for r in ring)


class TestEigenTrustPretrustAblation:
    SIZES = [0, 1, 3, 6]

    @pytest.fixture(scope="class")
    def ring_mass(self):
        return {n: eigentrust_ring_mass(n) for n in self.SIZES}

    def test_no_pretrust_ring_prospers(self, ring_mass):
        assert ring_mass[0] > 0.2

    def test_any_pretrust_starves_the_ring(self, ring_mass):
        for n in self.SIZES[1:]:
            assert ring_mass[n] < 0.02, n

    def test_report(self, ring_mass):
        rows = [[n, f"{mass:.3f}"] for n, mass in ring_mass.items()]
        print_table(
            "Ablation: collusion-ring trust mass vs |pre-trusted| "
            "(12 honest + 4-peer ring)",
            ["pre-trusted peers", "ring trust mass"],
            rows,
        )


# ---------------------------------------------------------------------------
# PeerTrust credibility source
# ---------------------------------------------------------------------------

def peertrust_error(measure: CredibilityMeasure) -> float:
    """|estimate - truth| for a badmouthed peer (truth 0.9, 30% liars).

    beta=0 drops the community-context reward so the comparison
    isolates the credibility measure itself.
    """
    model = PeerTrustModel(credibility=measure, alpha=1.0, beta=0.0)
    for subject, quality in [("s1", 0.9), ("s2", 0.2), ("s3", 0.7)]:
        for r in ["h1", "h2", "h3", "h4", "h5", "h6", "h7"]:
            model.record(Feedback(rater=r, target=subject, time=0.0,
                                  rating=quality))
        for liar in ["l1", "l2", "l3"]:
            model.record(Feedback(rater=liar, target=subject, time=0.0,
                                  rating=1.0 - quality))
    for r in ["h1", "h2", "h3", "h4", "h5", "h6", "h7"]:
        model.record(Feedback(rater=r, target="victim", time=1.0,
                              rating=0.9))
    for liar in ["l1", "l2", "l3"]:
        model.record(Feedback(rater=liar, target="victim", time=1.0,
                              rating=0.05))
    return abs(model.score("victim", perspective="h1") - 0.9)


class TestPeerTrustCredibilityAblation:
    def test_both_measures_beat_nothing(self):
        naive = abs((7 * 0.9 + 3 * 0.05) / 10 - 0.9)
        psm = peertrust_error(CredibilityMeasure.PSM)
        tvm = peertrust_error(CredibilityMeasure.TVM)
        assert psm < naive
        assert tvm < naive + 0.05

    def test_psm_is_the_stronger_defense(self):
        # Xiong & Liu's own finding: similarity credibility beats
        # trust-value credibility against collusive raters.
        assert peertrust_error(CredibilityMeasure.PSM) <= peertrust_error(
            CredibilityMeasure.TVM
        ) + 0.02

    def test_report(self):
        rows = [
            ["PSM (similarity)",
             f"{peertrust_error(CredibilityMeasure.PSM):.3f}"],
            ["TVM (trust value)",
             f"{peertrust_error(CredibilityMeasure.TVM):.3f}"],
        ]
        print_table(
            "Ablation: PeerTrust credibility measure, |error| under 30% "
            "badmouthing",
            ["credibility source", "error"],
            rows,
        )


# ---------------------------------------------------------------------------
# Sen & Sajja witness budget
# ---------------------------------------------------------------------------

class TestWitnessBudgetAblation:
    BUDGETS = [1, 3, 7, 15, 31]
    LIAR_FRACTION = 0.3

    def empirical_accuracy(self, budget: int, trials: int = 200) -> float:
        seeds = SeedSequenceFactory(budget)
        rng = seeds.rng("draws")
        correct = 0
        mo = MajorityOpinion(max_witnesses=budget)
        for trial in range(trials):
            feedbacks = []
            for w in range(budget):
                lies = rng.random() < self.LIAR_FRACTION
                feedbacks.append(Feedback(
                    rater=f"w{w}", target="svc", time=float(w),
                    rating=0.1 if lies else 0.9,
                ))
            verdict = mo.verdict(feedbacks)
            if verdict is True:
                correct += 1
        return correct / trials

    @pytest.fixture(scope="class")
    def accuracy(self):
        return {
            n: {
                "empirical": self.empirical_accuracy(n),
                "analytic": majority_correct_probability(
                    n, self.LIAR_FRACTION
                ),
            }
            for n in self.BUDGETS
        }

    def test_empirical_matches_analytic(self, accuracy):
        for n, row in accuracy.items():
            assert row["empirical"] == pytest.approx(
                row["analytic"], abs=0.1
            ), n

    def test_accuracy_grows_with_budget(self, accuracy):
        values = [accuracy[n]["analytic"] for n in self.BUDGETS]
        assert values == sorted(values)

    def test_report(self, accuracy):
        rows = [
            [n, f"{accuracy[n]['empirical']:.3f}",
             f"{accuracy[n]['analytic']:.3f}"]
            for n in self.BUDGETS
        ]
        print_table(
            f"Ablation: majority-verdict accuracy vs witness budget "
            f"(liar fraction {self.LIAR_FRACTION})",
            ["witnesses", "empirical", "analytic"],
            rows,
        )


@pytest.mark.benchmark(group="ablations")
def test_bench_pgrid_survival(benchmark):
    benchmark(lambda: pgrid_survival_rate(2, 0.2, n_peers=32, n_keys=10))
