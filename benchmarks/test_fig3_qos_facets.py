"""F3 — Figure 3: the W3C QoS taxonomy and multi-faceted trust.

Reproduces the figure itself (the 23-metric taxonomy tree) and runs the
multi-faceted-trust experiment it motivates: per-facet trust develops
independently, and the *overall* judgement depends on the consumer's
facet weighting — the same evidence makes one consumer prefer service
X and another prefer service Y.
"""

from __future__ import annotations

import pytest

from repro.common.randomness import SeedSequenceFactory
from repro.core.facets import FacetTrust
from repro.models.liu_ngu_zeng import LiuNguZengModel
from repro.services.consumer import Consumer, PreferenceProfile
from repro.services.description import ServiceDescription
from repro.services.invocation import InvocationEngine
from repro.services.provider import Service
from repro.services.qos import QoSProfile, w3c_taxonomy

from benchmarks.conftest import print_table

TAXONOMY = w3c_taxonomy()


def build_two_tradeoff_services():
    """One service wins on performance, the other on dependability."""
    base = {m.name: 0.5 for m in TAXONOMY}
    perf = dict(base)
    for name in ["processing_time", "throughput", "response_time",
                 "latency"]:
        perf[name] = 0.9
    for name in ["availability", "reliability", "accuracy"]:
        perf[name] = 0.35
    dep = dict(base)
    for name in ["availability", "reliability", "accuracy"]:
        dep[name] = 0.9
    for name in ["processing_time", "throughput", "response_time",
                 "latency"]:
        dep[name] = 0.35
    services = []
    for sid, quality in [("fast-svc", perf), ("steady-svc", dep)]:
        services.append(
            Service(
                description=ServiceDescription(
                    service=sid, provider="p0", category="compute"
                ),
                profile=QoSProfile(quality=quality, noise=0.03),
            )
        )
    return services


def accumulate_trust(services, rounds=30, seed=0):
    seeds = SeedSequenceFactory(seed)
    engine = InvocationEngine(TAXONOMY, rng=seeds.rng("invoke"))
    consumer = Consumer("rater", rating_noise=0.01, rng=seeds.rng("c"))
    trust = FacetTrust()
    model = LiuNguZengModel()
    for t in range(rounds):
        for service in services:
            interaction = engine.invoke(consumer, service, float(t))
            feedback = consumer.rate(interaction, TAXONOMY)
            trust.observe_feedback(feedback)
            model.record(feedback)
    return trust, model


class TestFigure3Taxonomy:
    def test_tree_has_23_leaves_in_5_categories(self):
        assert len(TAXONOMY) == 23
        assert len(TAXONOMY.categories()) == 5

    def test_render_matches_figure_shape(self):
        lines = TAXONOMY.tree_lines()
        print()
        print("== Figure 3: QoS metrics for web services ==")
        for line in lines:
            print(line)
        assert any("performance" in line for line in lines)
        assert any("security" in line for line in lines)


class TestMultiFacetedTrust:
    @pytest.fixture(scope="class")
    def evidence(self):
        services = build_two_tradeoff_services()
        return accumulate_trust(services)

    def test_facet_trust_tracks_truth(self, evidence):
        trust, _ = evidence
        assert trust.facet("fast-svc", "response_time") > 0.75
        assert trust.facet("fast-svc", "reliability") < 0.5
        assert trust.facet("steady-svc", "reliability") > 0.75
        assert trust.facet("steady-svc", "response_time") < 0.5

    def test_facet_weighting_changes_the_winner(self, evidence):
        trust, _ = evidence
        perf_weights = {"response_time": 1.0, "throughput": 1.0,
                        "latency": 1.0}
        dep_weights = {"reliability": 1.0, "availability": 1.0,
                       "accuracy": 1.0}
        assert trust.overall("fast-svc", perf_weights) > trust.overall(
            "steady-svc", perf_weights
        )
        assert trust.overall("steady-svc", dep_weights) > trust.overall(
            "fast-svc", dep_weights
        )

    def test_liu_ngu_zeng_ranking_flips_with_preferences(self, evidence):
        _, model = evidence
        model.set_preferences("racer", {"response_time": 1.0,
                                        "throughput": 1.0})
        model.set_preferences("steady", {"reliability": 1.0,
                                         "availability": 1.0})
        candidates = ["fast-svc", "steady-svc"]
        assert model.rank(candidates, "racer")[0].target == "fast-svc"
        assert model.rank(candidates, "steady")[0].target == "steady-svc"

    def test_report(self, evidence):
        trust, _ = evidence
        facets = ["response_time", "throughput", "availability",
                  "reliability", "accuracy", "cost"]
        rows = [
            [f,
             f"{trust.facet('fast-svc', f):.3f}",
             f"{trust.facet('steady-svc', f):.3f}"]
            for f in facets
        ]
        rows.append([
            "overall(perf prefs)",
            f"{trust.overall('fast-svc', {'response_time': 1.0, 'throughput': 1.0}):.3f}",
            f"{trust.overall('steady-svc', {'response_time': 1.0, 'throughput': 1.0}):.3f}",
        ])
        rows.append([
            "overall(dep prefs)",
            f"{trust.overall('fast-svc', {'reliability': 1.0, 'availability': 1.0}):.3f}",
            f"{trust.overall('steady-svc', {'reliability': 1.0, 'availability': 1.0}):.3f}",
        ])
        print_table(
            "Figure 3: per-facet trust after 30 rounds (two trade-off "
            "services)",
            ["facet", "fast-svc", "steady-svc"],
            rows,
        )


@pytest.mark.benchmark(group="fig3")
def test_bench_facet_accumulation(benchmark):
    services = build_two_tradeoff_services()
    benchmark(lambda: accumulate_trust(services, rounds=10))
