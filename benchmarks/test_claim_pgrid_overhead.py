"""C9 — §4: the Vu et al. approach "is much more complicated … and
involves a lot of communication and calculation because of the use of
the complicated P-Grid structure".

Message/hop accounting for the three query substrates as the network
grows: a central registry (constant ~2 messages per query), P-Grid
prefix routing (O(log N)), and unstructured flooding (O(N) to reach
everything).  The shape the paper implies: central < P-Grid <<
flooding, with P-Grid's premium being the price of decentralization.
"""

from __future__ import annotations

from typing import Dict

import pytest

from repro.common.records import Feedback
from repro.p2p.pgrid import PGrid
from repro.p2p.unstructured import UnstructuredOverlay
from repro.registry.qos_registry import CentralQoSRegistry

from benchmarks.conftest import print_table

SIZES = [16, 32, 64, 128, 256]
QUERIES = 40


def fb(rater, target):
    return Feedback(rater=rater, target=target, time=0.0, rating=0.8)


def peer_ids(n):
    return [f"peer-{i:04d}" for i in range(n)]


def central_cost(n: int) -> float:
    registry = CentralQoSRegistry()
    peers = peer_ids(n)
    registry.report(fb(peers[0], "svc"))
    # 1 query + 1 response message per lookup, regardless of N.
    return 2.0


def pgrid_cost(n: int) -> float:
    peers = peer_ids(n)
    grid = PGrid(peers, replication=2, rng=0)
    grid.insert(peers[0], "svc", fb(peers[0], "svc"))
    total = 0
    for i in range(QUERIES):
        origin = peers[(i * 7) % n]
        _, messages = grid.lookup(origin, "svc", "svc")
        total += messages
    return total / QUERIES


def flooding_cost(n: int) -> float:
    overlay = UnstructuredOverlay(degree=4, rng=0)
    peers = peer_ids(n)
    for pid in peers:
        overlay.join(pid)
    overlay.deposit(peers[n // 2], fb(peers[n // 2], "svc"))
    total = 0
    for i in range(QUERIES):
        origin = peers[(i * 7) % n]
        _, messages = overlay.poll_opinions(origin, "svc", ttl=n)
        total += messages
    return total / QUERIES


class TestPGridOverhead:
    @pytest.fixture(scope="class")
    def costs(self) -> Dict[int, Dict[str, float]]:
        return {
            n: {
                "central": central_cost(n),
                "pgrid": pgrid_cost(n),
                "flooding": flooding_cost(n),
            }
            for n in SIZES
        }

    def test_central_is_constant(self, costs):
        values = [costs[n]["central"] for n in SIZES]
        assert max(values) == min(values) == 2.0

    def test_pgrid_grows_logarithmically(self, costs):
        small = costs[SIZES[0]]["pgrid"]
        large = costs[SIZES[-1]]["pgrid"]
        # 16 -> 256 peers is 16x; log2 cost should grow by ~+4 hops,
        # nowhere near 16x.
        assert large > small
        assert large < small * 4

    def test_flooding_grows_linearly(self, costs):
        small = costs[SIZES[0]]["flooding"]
        large = costs[SIZES[-1]]["flooding"]
        assert large > small * 8  # ~16x nodes -> ~16x messages

    def test_ordering_matches_paper(self, costs):
        for n in SIZES:
            assert (
                costs[n]["central"]
                < costs[n]["pgrid"]
                < costs[n]["flooding"]
            ), n

    def test_report(self, costs):
        rows = [
            [
                n,
                f"{costs[n]['central']:.1f}",
                f"{costs[n]['pgrid']:.1f}",
                f"{costs[n]['flooding']:.1f}",
            ]
            for n in SIZES
        ]
        print_table(
            f"C9: messages per reputation query vs network size "
            f"(mean of {QUERIES} queries)",
            ["peers", "central", "pgrid", "flooding"],
            rows,
        )


@pytest.mark.benchmark(group="c9")
@pytest.mark.parametrize("n", [64, 256])
def test_bench_pgrid_lookup(benchmark, n):
    peers = peer_ids(n)
    grid = PGrid(peers, replication=2, rng=0)
    grid.insert(peers[0], "svc", fb(peers[0], "svc"))
    benchmark(lambda: grid.lookup(peers[1], "svc", "svc"))


@pytest.mark.benchmark(group="c9")
def test_bench_pgrid_construction(benchmark):
    benchmark(lambda: PGrid(peer_ids(256), replication=2, rng=0))
