"""Columnar store benchmark: vectorized kernels vs scalar replay.

The cost that matters is *cold* query answering — from raw events to a
ranked batch.  The pre-columnar reference pays a per-row Python replay
(``score_many_reference``, or the base-class score loop); the columnar
kernel reduces the store's column arrays with bincount/lexsort.  Both
paths read the same shared :class:`~repro.store.EventStore`, so a
"cold" run here is a fresh model instance attached to a warm store.

Two scales, both written to the ``columnar`` section of
``BENCH_models.json``:

* 10^3 events — every ported kernel must stay within a small tolerance
  of its reference (the small-store regression guard; a noise margin
  keeps shared-runner jitter from flaking the gate);
* 10^6 events (``REPRO_BENCH_COLUMNAR_EVENTS`` overrides) — the
  headline gate: >= 5x on beta, sporas and histos.

Parity is asserted before any timing: kernel == reference to 1e-9.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Callable, Dict, List, Tuple

import pytest

from repro.common.records import Feedback
from repro.core.registry import default_registry
from repro.models.base import ReputationModel
from repro.store import EventStore

REGISTRY = default_registry(rng_seed=0)
BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_models.json"

#: models whose score_many is a columnar kernel over the shared store,
#: with a lazy scalar-replay reference (cold-cloneable: all state
#: derives from the store rows)
LAZY_COLUMNAR = [
    "beta", "ebay", "sporas", "histos", "peertrust", "wang_vassileva",
]
#: eager models mirroring the store (reviews/facet dicts carry extra
#: channel state, so they are compared warm: kernel vs base score loop)
EAGER_COLUMNAR = ["amazon", "maximilien_singh"]

#: the >= 5x gate at the large scale
HEADLINE = ("beta", "sporas", "histos")

SMALL_EVENTS = 1_000
LARGE_EVENTS = int(os.environ.get("REPRO_BENCH_COLUMNAR_EVENTS", 1_000_000))
BATCH_SIZE = 100
SMALL_REPEATS = 11
LARGE_REPEATS = 3
#: Noise margin for the small-scale gate: best-of-N wall clock on a
#: shared CI runner still jitters, and at 10^3 events the per-query
#: constant overhead leaves a thin margin for some kernels — a real
#: regression shows up well beyond 1.2x.
SMALL_TOLERANCE = 1.2


def _best_ns(fn: Callable[[], object], repeats: int) -> int:
    best = None
    for _ in range(repeats):
        start = time.perf_counter_ns()
        fn()
        elapsed = time.perf_counter_ns() - start
        if best is None or elapsed < best:
            best = elapsed
    assert best is not None
    return best


def _build_store(n: int, n_raters: int, n_targets: int) -> EventStore:
    """*n* deterministic overall events; rater and target pools are
    disjoint (Sporas' rank kernel requires it, matching the paper's
    consumer-rates-service setting)."""
    raters = [f"r{i}" for i in range(n_raters)]
    targets = [f"svc-{i}" for i in range(n_targets)]
    store = EventStore()
    store.extend(
        [raters[(i * 13) % n_raters] for i in range(n)],
        [targets[(i * 7) % n_targets] for i in range(n)],
        [((i * 7919) % 1000) / 1000.0 for i in range(n)],
        [float(i) for i in range(n)],
    )
    return store


def _cold_clone(name: str, store: EventStore) -> ReputationModel:
    """A fresh instance attached to the warm store: empty replay state,
    empty kernel caches — the from-raw-events query cost."""
    model = REGISTRY.create(name)
    model._store = store
    if hasattr(model, "_ctx"):
        # PeerTrust keeps a row-aligned context column beside the store;
        # overall-only feedback always has context weight 1.0.
        model._ctx = [1.0] * len(store)
    return model


def _reference_scores(
    model: ReputationModel,
    batch: List[str],
    persp: str,
    now: float,
) -> List[float]:
    if hasattr(model, "score_many_reference"):
        return model.score_many_reference(batch, persp, now)
    return ReputationModel.score_many(model, batch, persp, now)


def _time_cold_paths(
    name: str,
    store: EventStore,
    batch: List[str],
    persp: str,
    now: float,
    repeats: int,
) -> Tuple[int, int]:
    """(reference ns, kernel ns), each on a fresh clone per repeat."""
    check_ref = _reference_scores(_cold_clone(name, store), batch, persp, now)
    check_kernel = _cold_clone(name, store).score_many(batch, persp, now)
    assert check_kernel == pytest.approx(check_ref, abs=1e-9), (
        f"{name}: columnar kernel diverges from the replay reference"
    )
    ref_ns = _best_ns(
        lambda: _reference_scores(
            _cold_clone(name, store), batch, persp, now
        ),
        repeats,
    )
    kernel_ns = _best_ns(
        lambda: _cold_clone(name, store).score_many(batch, persp, now),
        repeats,
    )
    return ref_ns, kernel_ns


def _write_section(key: str, section: Dict[str, object]) -> None:
    payload = (
        json.loads(BENCH_PATH.read_text()) if BENCH_PATH.exists() else {}
    )
    payload.setdefault("columnar", {})[key] = section
    BENCH_PATH.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )


def _report_rows(report: Dict[str, Dict[str, object]]) -> List[List[object]]:
    return [
        [name, row["reference_ns"], row["kernel_ns"], f"x{row['speedup']}"]
        for name, row in sorted(report.items())
    ]


def test_columnar_small_never_slower(table_printer):
    """At 10^3 events the kernels must not lose to their references
    (modulo SMALL_TOLERANCE runner noise) — vectorization overhead has
    to pay for itself even on small stores."""
    store = _build_store(SMALL_EVENTS, n_raters=20, n_targets=BATCH_SIZE)
    batch = [f"svc-{i}" for i in range(BATCH_SIZE)]
    now = float(SMALL_EVENTS)

    report: Dict[str, Dict[str, object]] = {}
    for name in LAZY_COLUMNAR:
        ref_ns, kernel_ns = _time_cold_paths(
            name, store, batch, "r0", now, SMALL_REPEATS
        )
        report[name] = {
            "reference_ns": ref_ns,
            "kernel_ns": kernel_ns,
            "speedup": round(ref_ns / kernel_ns, 2),
            "protocol": "cold clone on shared store",
        }
    # Eager mirrors: warm kernel vs warm base score loop (their scalar
    # state is not replayable from the store alone).
    for name in EAGER_COLUMNAR:
        model = REGISTRY.create(name)
        model.record_many(
            [
                Feedback(
                    rater=f"r{i % 20}",
                    target=batch[i % BATCH_SIZE],
                    time=float(i),
                    rating=((i * 7919) % 1000) / 1000.0,
                )
                for i in range(SMALL_EVENTS)
            ]
        )
        kernel = model.score_many(batch, "r0", now)
        loop = ReputationModel.score_many(model, batch, "r0", now)
        assert kernel == pytest.approx(loop, abs=1e-9), name
        ref_ns = _best_ns(
            lambda m=model: ReputationModel.score_many(m, batch, "r0", now),
            SMALL_REPEATS,
        )
        kernel_ns = _best_ns(
            lambda m=model: m.score_many(batch, "r0", now), SMALL_REPEATS
        )
        report[name] = {
            "reference_ns": ref_ns,
            "kernel_ns": kernel_ns,
            "speedup": round(ref_ns / kernel_ns, 2),
            "protocol": "warm kernel vs warm base score loop",
        }

    _write_section(
        "small",
        {
            "events": SMALL_EVENTS,
            "batch_size": BATCH_SIZE,
            "repeats": SMALL_REPEATS,
            "models": report,
        },
    )
    table_printer(
        f"Columnar kernels at {SMALL_EVENTS} events (batch of {BATCH_SIZE})",
        ["mechanism", "reference ns", "kernel ns", "speedup"],
        _report_rows(report),
    )
    slow = {
        name: row["speedup"]
        for name, row in report.items()
        if row["kernel_ns"] > row["reference_ns"] * SMALL_TOLERANCE
    }
    assert not slow, (
        f"columnar kernel > {SMALL_TOLERANCE}x its reference at "
        f"{SMALL_EVENTS} events: {slow}"
    )


def test_columnar_large_speedup(table_printer):
    """The headline gate: >= 5x over scalar replay at 10^6 events on
    the beta/sporas/histos kernels."""
    store = _build_store(LARGE_EVENTS, n_raters=4000, n_targets=1000)
    batch = [f"svc-{i}" for i in range(BATCH_SIZE)]
    now = float(LARGE_EVENTS)

    report: Dict[str, Dict[str, object]] = {}
    # The global reputation query (perspective None) — the path every
    # headline kernel vectorizes end to end; Histos' personalized path
    # is a graph walk that stays scalar by design.
    for name in HEADLINE:
        ref_ns, kernel_ns = _time_cold_paths(
            name, store, batch, None, now, LARGE_REPEATS
        )
        report[name] = {
            "reference_ns": ref_ns,
            "kernel_ns": kernel_ns,
            "speedup": round(ref_ns / kernel_ns, 2),
            "protocol": "cold clone on shared store",
        }

    _write_section(
        "large",
        {
            "events": LARGE_EVENTS,
            "batch_size": BATCH_SIZE,
            "repeats": LARGE_REPEATS,
            "models": report,
        },
    )
    table_printer(
        f"Columnar kernels at {LARGE_EVENTS} events (batch of {BATCH_SIZE})",
        ["mechanism", "reference ns", "kernel ns", "speedup"],
        _report_rows(report),
    )
    for name in HEADLINE:
        assert report[name]["speedup"] >= 5.0, (
            f"{name}: expected >= 5x columnar speedup at {LARGE_EVENTS} "
            f"events, got {report[name]['speedup']}"
        )
