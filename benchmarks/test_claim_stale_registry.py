"""C13 — §4: "the information stored in the UDDI server may become
outdated in a dynamic networking environment where a service may fail
or become unreachable."

Service churn: services die mid-run but remain published (the registry
does not know).  A consumer selecting on the registry's advertised
claims keeps invoking corpses; a reputation mechanism sees the failures
in the feedback stream (failed invocations rate 0) and routes around
them within a few rounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import pytest

from repro.common.mathutils import safe_mean
from repro.common.randomness import SeedSequenceFactory
from repro.core.selection import EpsilonGreedyPolicy
from repro.experiments.workloads import make_consumers
from repro.models.beta import BetaReputation
from repro.services.description import ServiceDescription
from repro.services.invocation import InvocationEngine
from repro.services.provider import Service
from repro.services.qos import DEFAULT_METRICS, QoSProfile

from benchmarks.conftest import print_table

ROUNDS = 50
DEATH_AT = 20.0


def build_services():
    """Three services; the best one dies (success rate -> 0) at t=20."""

    class DeathBehavior:
        def __init__(self, death_time: float) -> None:
            self.death_time = death_time

        def profile_at(self, base: QoSProfile, time: float) -> QoSProfile:
            if time < self.death_time:
                return base
            return QoSProfile(
                quality=dict(base.quality),
                noise=base.noise,
                segment_offsets={
                    m: dict(o) for m, o in base.segment_offsets.items()
                },
                success_rate=0.0,
            )

    def svc(sid, quality, behavior=None):
        kwargs = dict(
            description=ServiceDescription(
                service=sid, provider=f"p-{sid}", category="compute"
            ),
            profile=QoSProfile(
                quality={m.name: quality for m in DEFAULT_METRICS},
                noise=0.03,
            ),
        )
        if behavior:
            kwargs["behavior"] = behavior
        return Service(**kwargs)

    return [
        svc("doomed-best", 0.9, DeathBehavior(DEATH_AT)),
        svc("survivor", 0.7),
        svc("mediocre", 0.45),
    ]


@dataclass
class ChurnResult:
    dead_invocations_after_death: int
    success_rate_after_death: float
    rounds_to_abandon: float


def run(mode: str, seed: int = 0) -> ChurnResult:
    seeds = SeedSequenceFactory(seed)
    services = build_services()
    by_id = {s.service_id: s for s in services}
    consumers = make_consumers(10, DEFAULT_METRICS, seeds)
    engine = InvocationEngine(DEFAULT_METRICS, rng=seeds.rng("invoke"))
    model = BetaReputation(lam=0.9)
    policy = EpsilonGreedyPolicy(0.1, rng=seeds.rng("policy"))
    # The registry's static view: claims fixed at t=0 truth.
    claims = {sid: svc.true_overall(0.0) for sid, svc in by_id.items()}
    dead_picks = 0
    successes = 0
    invocations_after_death = 0
    abandon_round = float("inf")
    for t in range(ROUNDS):
        time = float(t)
        doomed_picks_this_round = 0
        for consumer in consumers:
            if mode == "advertised":
                chosen = max(claims, key=lambda s: (claims[s], s))
            else:
                chosen = policy.choose(
                    model.rank(sorted(by_id), consumer.consumer_id,
                               now=time)
                )
            interaction = engine.invoke(consumer, by_id[chosen], time)
            if mode == "feedback":
                model.record(consumer.rate(interaction, DEFAULT_METRICS))
            if time >= DEATH_AT:
                invocations_after_death += 1
                successes += interaction.success
                if chosen == "doomed-best":
                    dead_picks += 1
                    doomed_picks_this_round += 1
        if (
            time >= DEATH_AT
            and doomed_picks_this_round <= 1
            and abandon_round == float("inf")
        ):
            abandon_round = time - DEATH_AT
    return ChurnResult(
        dead_invocations_after_death=dead_picks,
        success_rate_after_death=successes / invocations_after_death,
        rounds_to_abandon=abandon_round,
    )


class TestStaleRegistry:
    @pytest.fixture(scope="class")
    def outcomes(self) -> Dict[str, ChurnResult]:
        return {
            "advertised": run("advertised"),
            "feedback": run("feedback"),
        }

    def test_advertised_keeps_invoking_the_corpse(self, outcomes):
        advertised = outcomes["advertised"]
        # Claims never update: every post-death selection is the corpse.
        assert advertised.success_rate_after_death < 0.05
        assert advertised.rounds_to_abandon == float("inf")

    def test_feedback_routes_around_the_failure(self, outcomes):
        feedback = outcomes["feedback"]
        assert feedback.rounds_to_abandon < 5
        assert feedback.success_rate_after_death > 0.85

    def test_report(self, outcomes):
        rows = [
            [
                mode,
                r.dead_invocations_after_death,
                f"{r.success_rate_after_death:.3f}",
                ("never" if r.rounds_to_abandon == float("inf")
                 else f"{r.rounds_to_abandon:.0f}"),
            ]
            for mode, r in outcomes.items()
        ]
        print_table(
            "C13: stale registry under service death at "
            f"t={DEATH_AT:.0f} ({ROUNDS} rounds)",
            ["information source", "corpse invocations",
             "post-death success rate", "rounds to abandon"],
            rows,
        )


@pytest.mark.benchmark(group="c13")
def test_bench_churn_run(benchmark):
    benchmark(lambda: run("feedback", seed=1))
