"""C11 — §3.1 Q3, identity attacks: whitewashing and Sybil floods.

Two attacks the surveyed systems were *designed around*:

* **Whitewashing** — an entity with a ruined record re-enters under a
  fresh identity.  Mean-style reputations hand newcomers the neutral
  prior (a big upgrade over a bad record); Sporas starts everyone at
  the floor, so identity switching gains nothing — Zacharia's design
  goal, measured here as the "whitewash gain".
* **Sybil flood** — one attacker mints many rater identities to stuff
  a target's ballot.  XRep's vote clustering collapses same-locality
  identities to ~one vote; EigenTrust's pre-trusted peers deny the
  Sybil clique trust mass entirely.
"""

from __future__ import annotations

import pytest

from repro.common.records import Feedback
from repro.models.beta import BetaReputation
from repro.models.ebay import EbayModel
from repro.models.eigentrust import EigenTrustModel
from repro.models.sporas import SporasModel
from repro.models.xrep import XRepModel
from repro.robustness.attacks import AttackPlan

from benchmarks.conftest import print_table


def whitewash_gain(model) -> float:
    """Score(fresh identity) - score(ruined identity)."""
    for i in range(20):
        model.record(Feedback(rater=f"c{i}", target="cheat",
                              time=float(i), rating=0.05))
    return model.score("cheat-reborn") - model.score("cheat")


class TestWhitewashing:
    def test_mean_style_models_reward_whitewashing(self):
        assert whitewash_gain(BetaReputation()) > 0.3
        assert whitewash_gain(EbayModel()) > 0.3

    def test_sporas_floor_start_defeats_whitewashing(self):
        assert whitewash_gain(SporasModel()) <= 0.05

    def test_report(self):
        rows = []
        for factory in [BetaReputation, EbayModel, SporasModel]:
            rows.append([factory.name, f"{whitewash_gain(factory()):+.3f}"])
        print_table(
            "C11a: whitewash gain (fresh identity score - ruined "
            "identity score; 20 negative ratings)",
            ["mechanism", "whitewash gain"],
            rows,
        )


def sybil_stuffed_scores(n_sybils: int):
    """(undefended score, cluster-defended score) of a bad service
    stuffed by *n_sybils* fake identities from one locality."""
    defended = XRepModel(cluster_weight=0.0)
    naive = XRepModel(cluster_weight=1.0)
    plan = AttackPlan(sybil_count=n_sybils)
    sybils = plan.mint_sybils()
    for model in (defended, naive):
        for i in range(6):
            model.record(Feedback(rater=f"honest{i}", target="junk",
                                  time=float(i), rating=0.1))
        for sybil in sybils:
            model.assign_cluster(sybil, "attacker-subnet")
            model.record(Feedback(rater=sybil, target="junk",
                                  time=100.0, rating=1.0))
    return naive.score("junk"), defended.score("junk")


class TestSybilFlood:
    def test_undefended_score_inflates_with_sybils(self):
        small_naive, _ = sybil_stuffed_scores(5)
        large_naive, _ = sybil_stuffed_scores(50)
        assert large_naive > small_naive
        assert large_naive > 0.8

    def test_cluster_defense_caps_sybil_influence(self):
        _, defended_small = sybil_stuffed_scores(5)
        _, defended_large = sybil_stuffed_scores(50)
        # 10x the fake identities buys almost nothing.
        assert defended_large - defended_small < 0.05
        assert defended_large < 0.35

    def test_eigentrust_pretrusted_denies_sybil_clique(self):
        honest = [f"h{i}" for i in range(6)]
        sybils = [f"sybil{i}" for i in range(20)]
        model = EigenTrustModel(pre_trusted=honest[:2], alpha=0.25)
        t = 0.0
        for a in honest:
            for b in honest:
                if a != b:
                    model.record(Feedback(rater=a, target=b, time=t,
                                          rating=0.9))
                    t += 1.0
        # The clique rates itself and its master enthusiastically.
        for a in sybils:
            for b in sybils[:5] + ["master"]:
                if a != b:
                    model.record(Feedback(rater=a, target=b, time=t,
                                          rating=1.0))
                    t += 1.0
        trust = model.compute()
        clique_mass = sum(trust.get(s, 0.0) for s in sybils)
        clique_mass += trust.get("master", 0.0)
        assert clique_mass < 0.05
        assert sum(trust[h] for h in honest) > 0.9

    def test_report(self):
        rows = []
        for n in [0, 5, 20, 50]:
            naive, defended = sybil_stuffed_scores(n)
            rows.append([n, f"{naive:.3f}", f"{defended:.3f}"])
        print_table(
            "C11b: ballot-stuffed score of a bad service (truth ~0.1) "
            "vs Sybil count (6 honest raters)",
            ["sybils", "no clustering", "XRep clustering"],
            rows,
        )


@pytest.mark.benchmark(group="c11")
def test_bench_sybil_scoring(benchmark):
    benchmark(lambda: sybil_stuffed_scores(50))
