"""C1 — §2: "A provider may exaggerate its capability … a consumer is
vulnerable to inaccurate QoS information."

Sweep the exaggeration magnitude of the *worse half* of providers and
compare claim-based selection against feedback-based selection.  The
claim-based path degrades monotonically toward "always pick the biggest
liar", while feedback-based selection is untouched by the claims.
"""

from __future__ import annotations

import pytest

from repro.experiments.activities import run_activities_comparison

from benchmarks.conftest import print_table

SWEEP = [0.0, 0.1, 0.2, 0.3, 0.4]
SEEDS = [0, 1, 2]
ROUNDS = 20


def sweep_results():
    results = {}
    for exaggeration in SWEEP:
        advertised_regret = 0.0
        feedback_regret = 0.0
        for seed in SEEDS:
            reports = {
                r.name: r
                for r in run_activities_comparison(
                    rounds=ROUNDS, seed=seed, exaggeration=exaggeration,
                    approaches=["advertised", "feedback"],
                )
            }
            advertised_regret += reports["advertised"].mean_regret
            feedback_regret += reports["feedback"].mean_regret
        results[exaggeration] = (
            advertised_regret / len(SEEDS),
            feedback_regret / len(SEEDS),
        )
    return results


@pytest.fixture(scope="module")
def results():
    return sweep_results()


class TestExaggerationClaim:
    def test_claims_degrade_with_exaggeration(self, results):
        regrets = [results[e][0] for e in SWEEP]
        # Heavy exaggeration must be much worse than honesty.
        assert regrets[-1] > regrets[0] + 0.05

    def test_feedback_immune_to_exaggeration(self, results):
        feedback = [results[e][1] for e in SWEEP]
        assert max(feedback) - min(feedback) < 0.05

    def test_crossover_at_moderate_exaggeration(self, results):
        # Mild exaggeration barely reorders the claims, so the (free)
        # advertised path can still win; from 0.2 upward feedback
        # dominates — the crossover the paper's warning implies.
        for exaggeration in [e for e in SWEEP if e >= 0.2]:
            advertised, feedback = results[exaggeration]
            assert feedback < advertised, exaggeration

    def test_report(self, results):
        rows = [
            [f"{e:.1f}", f"{results[e][0]:.4f}", f"{results[e][1]:.4f}"]
            for e in SWEEP
        ]
        print_table(
            "C1: regret vs provider exaggeration "
            f"(mean of {len(SEEDS)} seeds, {ROUNDS} rounds)",
            ["exaggeration", "advertised-QoS regret", "feedback regret"],
            rows,
        )


@pytest.mark.benchmark(group="c1")
def test_bench_exaggeration_point(benchmark):
    benchmark(
        lambda: run_activities_comparison(
            rounds=5, seed=0, exaggeration=0.3,
            approaches=["advertised", "feedback"],
        )
    )
