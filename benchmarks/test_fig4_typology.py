"""F4 — Figure 4: the typology tree, rebuilt and exercised.

Three artefacts:

1. The classification tree itself, derived from the model registry and
   asserted equal to the paper's Figure 4 leaf-for-leaf.
2. A head-to-head run of *every* implemented mechanism on one common
   selection workload — one row per Figure 4 leaf with its
   3-criterion classification and its measured quality, which is the
   comparison the survey motivates but (being a survey) never ran.
3. A threshold-placement ablation: the run exposes a structural split —
   mechanisms with *graded* scores track quality directly, while
   mechanisms that threshold ratings into good/bad (eBay-style
   counters, EigenTrust, XRep, Wang-Vassileva) saturate when every
   candidate sits above the threshold, and recover once the threshold
   is placed near the discrimination boundary.
"""

from __future__ import annotations

import pytest

from repro.core.registry import default_registry
from repro.core.selection import EpsilonGreedyPolicy
from repro.core.typology import PAPER_FIGURE_4, classification_tree
from repro.experiments.harness import run_selection_experiment
from repro.experiments.workloads import make_world
from repro.models import (
    SporasModel,
    WangVassilevaModel,
    XRepModel,
)

from benchmarks.conftest import print_table

REGISTRY = default_registry(rng_seed=0)
ROUNDS = 50
SEED = 11

#: Mechanisms whose score is a graded function of rating magnitude.
GRADED = {
    "amazon", "beta", "collaborative_filtering",
    "collaborative_filtering_cosine", "day", "day_naive_bayes", "ebay",
    "eigentrust", "epinions", "histos", "liu_ngu_zeng",
    "maximilien_singh", "peertrust", "subjective_logic", "vu_aberer",
    "yolum_singh", "yu_singh",
}
#: Mechanisms that threshold/count and so saturate on uniformly-good
#: candidate sets, or (Sporas) start every entity at the floor.
SATURATING = {
    "aberer_despotovic", "pagerank", "social_network", "sporas",
    "wang_vassileva", "xrep",
}


def run_model(model, rounds=ROUNDS, seed=SEED):
    world = make_world(
        n_providers=5, services_per_provider=1, n_consumers=12,
        seed=seed, quality_spread=0.3,
    )
    policy = EpsilonGreedyPolicy(0.2, rng=world.seeds.rng("policy"))
    return run_selection_experiment(model, world, rounds=rounds,
                                    policy=policy)


@pytest.fixture(scope="module")
def outcomes():
    return {
        name: run_model(REGISTRY.create(name)) for name in REGISTRY.names()
    }


class TestFigure4Tree:
    def test_tree_matches_paper(self):
        derived = REGISTRY.figure4_tree()
        paper = classification_tree(PAPER_FIGURE_4)
        assert set(derived.leaves) == set(paper.leaves)
        for branch, systems in paper.leaves.items():
            assert sorted(derived.leaves[branch]) == sorted(systems)

    def test_tier_partition_covers_registry(self):
        assert GRADED | SATURATING == set(REGISTRY.names())
        assert not GRADED & SATURATING

    def test_render_tree(self):
        print()
        print("== Figure 4: trust and reputation system classification ==")
        for line in REGISTRY.figure4_tree().render():
            print(line)


class TestTypologyShootout:
    def test_graded_mechanisms_converge(self, outcomes):
        for name in GRADED:
            assert outcomes[name].tail_accuracy > 0.5, name

    def test_saturating_mechanisms_still_rank_sensibly(self, outcomes):
        # Even when selection accuracy collapses, the final scores'
        # *ordering* correlates with the truth.
        for name in SATURATING:
            rho = outcomes[name].ranking["spearman"]
            assert rho is not None and rho > 0.3, name

    def test_graded_tier_dominates_on_regret(self, outcomes):
        graded_regret = max(outcomes[n].mean_regret for n in GRADED)
        saturating_regret = max(
            outcomes[n].mean_regret for n in SATURATING
        )
        assert graded_regret < saturating_regret

    def test_report(self, outcomes):
        rows = []
        for name in REGISTRY.names():
            info = REGISTRY.get(name)
            outcome = outcomes[name]
            arch, subject, scope = info.typology.branch()
            rho = outcome.ranking["spearman"]
            rows.append([
                name,
                arch[:7],
                subject[:8],
                scope[:8],
                "graded" if name in GRADED else "saturating",
                f"{outcome.accuracy:.3f}",
                f"{outcome.tail_accuracy:.3f}",
                f"{outcome.mean_regret:.4f}",
                f"{rho:.2f}" if rho is not None else "n/a",
            ])
        print_table(
            f"Figure 4 shoot-out: every mechanism, common workload "
            f"(5 services, 12 consumers, {ROUNDS} rounds, seed {SEED})",
            ["mechanism", "arch", "subject", "scope", "tier",
             "acc", "tail", "regret", "spearman"],
            rows,
        )


class TestThresholdAblation:
    """Saturation is a threshold-placement problem, not a design flaw."""

    CASES = [
        ("wang_vassileva", lambda: WangVassilevaModel(),
         lambda: WangVassilevaModel(satisfaction_threshold=0.7)),
        ("xrep", lambda: XRepModel(),
         lambda: XRepModel(positive_threshold=0.7)),
        ("sporas", lambda: SporasModel(),
         lambda: SporasModel(theta=3.0)),
    ]

    def test_tuning_recovers_accuracy(self):
        rows = []
        for name, default_factory, tuned_factory in self.CASES:
            default = run_model(default_factory())
            tuned = run_model(tuned_factory())
            rows.append([
                name,
                f"{default.tail_accuracy:.3f}",
                f"{tuned.tail_accuracy:.3f}",
            ])
            assert tuned.tail_accuracy > default.tail_accuracy + 0.3, name
            assert tuned.tail_accuracy > 0.5, name
        print_table(
            "Threshold-placement ablation (tail accuracy)",
            ["mechanism", "default params", "tuned threshold"],
            rows,
        )


@pytest.mark.benchmark(group="fig4")
@pytest.mark.parametrize("name", ["ebay", "eigentrust", "peertrust",
                                  "collaborative_filtering"])
def test_bench_mechanism(benchmark, name):
    benchmark(lambda: run_model(REGISTRY.create(name), rounds=10))
