"""F2 — Figure 2: the activities model, priced.

Runs all five Figure-2 information paths (provider-advertised QoS, SLA
with third-party supervision, per-service sensors, central-node
probing, consumer feedback) on a common workload and reports selection
quality and cost.  The paper's qualitative claims checked here:

* advertised QoS is unreliable when providers exaggerate;
* sensors/central probing are accurate but costly / centrally loaded;
* consumer feedback is nearly free, reasonably accurate, and the only
  path that captures subjective facets.
"""

from __future__ import annotations

import pytest

from repro.experiments.activities import (
    SENSOR_COST,
    run_activities_comparison,
)

from benchmarks.conftest import print_table

SEEDS = [0, 1, 2, 3, 4]
ROUNDS = 25


def averaged_reports():
    sums = {}
    for seed in SEEDS:
        for report in run_activities_comparison(rounds=ROUNDS, seed=seed):
            entry = sums.setdefault(
                report.name,
                {"accuracy": 0.0, "regret": 0.0, "setup": 0.0,
                 "running": 0.0, "central": 0, "messages": 0},
            )
            entry["accuracy"] += report.accuracy / len(SEEDS)
            entry["regret"] += report.mean_regret / len(SEEDS)
            entry["setup"] += report.setup_cost / len(SEEDS)
            entry["running"] += report.running_cost / len(SEEDS)
            entry["central"] += report.central_probe_load // len(SEEDS)
            entry["messages"] += report.messages // len(SEEDS)
    return sums


class TestFigure2:
    @pytest.fixture(scope="class")
    def reports(self):
        return averaged_reports()

    def test_advertised_qos_is_unreliable(self, reports):
        # Exaggerating providers make claim-based selection collapse.
        assert reports["advertised"]["regret"] > 2 * reports["feedback"]["regret"]

    def test_monitoring_is_accurate_but_costly(self, reports):
        assert reports["sensors"]["accuracy"] > reports["feedback"]["accuracy"]
        assert reports["sensors"]["setup"] >= 10 * SENSOR_COST  # 10 services
        assert reports["feedback"]["setup"] == 0.0

    def test_central_monitor_concentrates_load(self, reports):
        assert reports["central_monitor"]["central"] > 0
        assert reports["feedback"]["central"] == 0

    def test_sla_beats_raw_claims(self, reports):
        assert reports["sla"]["regret"] < reports["advertised"]["regret"]
        assert reports["sla"]["setup"] > 0  # negotiation is not free

    def test_feedback_is_cheapest_informative_path(self, reports):
        informative = {
            name: r for name, r in reports.items() if name != "advertised"
        }
        cheapest = min(
            informative,
            key=lambda n: informative[n]["setup"] + informative[n]["running"],
        )
        assert cheapest == "feedback"

    def test_report(self, reports):
        rows = [
            [
                name,
                f"{r['accuracy']:.3f}",
                f"{r['regret']:.4f}",
                f"{r['setup']:.1f}",
                f"{r['running']:.2f}",
                r["central"],
                r["messages"],
            ]
            for name, r in reports.items()
        ]
        print_table(
            "Figure 2: selection-information paths "
            f"(5 providers x 2 services, 20 consumers, {ROUNDS} rounds, "
            f"mean of {len(SEEDS)} seeds)",
            ["approach", "accuracy", "regret", "setup$", "running$",
             "central-probes", "messages"],
            rows,
        )


@pytest.mark.benchmark(group="fig2")
def test_bench_activities_comparison(benchmark):
    benchmark(
        lambda: run_activities_comparison(rounds=5, seed=0)
    )
