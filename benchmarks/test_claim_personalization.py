"""C8 — §4/§5: global vs personalized.

"For some kinds of web services … personalization is not important, so
a global reputation system is sufficient.  However, if the selection
includes subjective factors … personalized reputation systems are
required."

The market: two *tailored* services (each excellent for one taste
segment and poor for the other, via the subjective ``accuracy`` facet)
and one *compromise* service that is decent for everyone.  Sweeping the
taste divergence d:

* at d = 0 the tailored services have no edge — the global mean is
  sufficient (the paper's weather-forecast case);
* past the crossover (compromise quality < matched tailored quality)
  a global mechanism still averages the two segments' conflicting
  ratings and keeps recommending the compromise, while personalized
  mechanisms (collaborative filtering) route each segment to its
  tailored service.

Karta's Pearson-vs-cosine comparison rides along as the CF ablation.
"""

from __future__ import annotations

from typing import Dict

import pytest

from repro.core.scenarios import DirectSelectionScenario
from repro.core.selection import EpsilonGreedyPolicy
from repro.common.randomness import SeedSequenceFactory
from repro.experiments.workloads import make_consumers
from repro.models.beta import BetaReputation
from repro.models.collaborative import (
    CollaborativeFilteringModel,
    Similarity,
)
from repro.services.consumer import PreferenceProfile
from repro.services.description import ServiceDescription
from repro.services.provider import Service
from repro.services.qos import DEFAULT_METRICS, QoSProfile

from benchmarks.conftest import print_table

DIVERGENCES = [0.0, 0.1, 0.2, 0.3, 0.45]
ROUNDS = 40
SEEDS = [0, 1, 2]

MODELS = {
    "global_mean": lambda: BetaReputation(),
    "cf_pearson": lambda: CollaborativeFilteringModel(
        similarity=Similarity.PEARSON, min_overlap=2,
        significance_threshold=3,
    ),
    "cf_cosine": lambda: CollaborativeFilteringModel(
        similarity=Similarity.COSINE, min_overlap=2,
        significance_threshold=3,
    ),
}


def build_services(divergence: float):
    """Two segment-tailored services + one compromise service."""

    def svc(sid, base, accuracy_base, offsets):
        quality = {m.name: base for m in DEFAULT_METRICS}
        quality["accuracy"] = accuracy_base
        return Service(
            description=ServiceDescription(
                service=sid, provider=f"prov-{sid}", category="search"
            ),
            profile=QoSProfile(
                quality=quality,
                noise=0.03,
                segment_offsets={"accuracy": offsets},
            ),
        )

    return [
        svc("tailored-a", 0.5, 0.5, {0: +divergence, 1: -divergence}),
        svc("tailored-b", 0.5, 0.5, {0: -divergence, 1: +divergence}),
        svc("compromise", 0.58, 0.58, {}),
    ]


def run_point(model_name: str, divergence: float, seed: int) -> float:
    seeds = SeedSequenceFactory(seed)
    services = build_services(divergence)
    consumers = make_consumers(16, DEFAULT_METRICS, seeds, n_segments=2)
    # The subjective facet carries half the preference weight.
    for consumer in consumers:
        weights = {m: 1.0 for m in DEFAULT_METRICS.names()}
        weights["accuracy"] = 5.0
        consumer.preferences = PreferenceProfile(
            weights, segment=consumer.segment
        )
    scenario = DirectSelectionScenario(
        services=services,
        consumers=consumers,
        model=MODELS[model_name](),
        taxonomy=DEFAULT_METRICS,
        policy=EpsilonGreedyPolicy(0.15, rng=seeds.rng("policy")),
        rng=seeds.rng("invoke"),
    )
    return scenario.run(ROUNDS).mean_regret


def sweep() -> Dict[float, Dict[str, float]]:
    table: Dict[float, Dict[str, float]] = {}
    for divergence in DIVERGENCES:
        table[divergence] = {
            name: sum(
                run_point(name, divergence, seed) for seed in SEEDS
            ) / len(SEEDS)
            for name in MODELS
        }
    return table


class TestPersonalization:
    @pytest.fixture(scope="class")
    def results(self):
        return sweep()

    def test_homogeneous_world_global_is_sufficient(self, results):
        row = results[0.0]
        assert row["global_mean"] <= row["cf_pearson"] + 0.02

    def test_heterogeneous_world_personalization_wins(self, results):
        row = results[DIVERGENCES[-1]]
        assert row["cf_pearson"] < row["global_mean"] - 0.03
        assert row["cf_cosine"] < row["global_mean"] - 0.03

    def test_global_degrades_with_divergence(self, results):
        global_regrets = [results[d]["global_mean"] for d in DIVERGENCES]
        assert global_regrets[-1] > global_regrets[0] + 0.05

    def test_cf_stays_flat_with_divergence(self, results):
        cf_regrets = [results[d]["cf_pearson"] for d in DIVERGENCES]
        assert max(cf_regrets) - min(cf_regrets) < 0.08

    def test_karta_similarity_choice_is_secondary(self, results):
        # Karta's finding: which similarity you pick matters much less
        # than personalizing at all.
        row = results[DIVERGENCES[-1]]
        similarity_gap = abs(row["cf_pearson"] - row["cf_cosine"])
        personalization_gain = row["global_mean"] - min(
            row["cf_pearson"], row["cf_cosine"]
        )
        assert similarity_gap < personalization_gain

    def test_report(self, results):
        rows = [
            [f"{d:.2f}"] + [
                f"{results[d][name]:.4f}" for name in MODELS
            ]
            for d in DIVERGENCES
        ]
        print_table(
            "C8: mean regret vs taste divergence "
            f"(2 segments, tailored+compromise market, {ROUNDS} rounds, "
            f"mean of {len(SEEDS)} seeds)",
            ["divergence"] + list(MODELS),
            rows,
        )


@pytest.mark.benchmark(group="c8")
def test_bench_cf_selection_round(benchmark):
    benchmark(lambda: run_point("cf_pearson", 0.3, 0))
