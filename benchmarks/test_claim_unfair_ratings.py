"""C5 — §3.1 Q3: detecting dishonest feedback.

Sweep the liar fraction for the two classic attacks (badmouthing a good
service, ballot-stuffing a bad one) and compare the estimate each
defense produces for the attacked service:

* no defense (plain mean),
* Dellarocas cluster filtering,
* Sen & Sajja majority opinion,
* Zhang & Cohen advisor credibility,
* PeerTrust's PSM credibility (the surveyed mechanism with a built-in
  defense).

The paper's qualitative expectation: defenses hold up to substantial
liar minorities and all collapse once liars reach a majority.
"""

from __future__ import annotations

from functools import partial
from typing import Callable, Dict, List

import pytest

from repro.common.mathutils import safe_mean
from repro.common.randomness import SeedSequenceFactory
from repro.common.records import Feedback
from repro.experiments.parallel import jobs_from_env, parallel_map
from repro.models.peertrust import PeerTrustModel
from repro.robustness.cluster_filtering import ClusterFilter, FilterMode
from repro.robustness.majority import MajorityOpinion, required_witnesses
from repro.robustness.zhang_cohen import ZhangCohenDefense

from benchmarks.conftest import print_table

LIAR_FRACTIONS = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7]
N_RATERS = 30
REPORTS_EACH = 4
TRUE_GOOD = 0.85
TRUE_BAD = 0.2


def build_feedback(
    liar_fraction: float, attack: str, seed: int = 0
) -> List[Feedback]:
    """Ratings about 'victim' (good, badmouthed) or 'crony' (bad,
    stuffed), plus calibration ratings on two reference services that
    everyone rates honestly except the liars, who invert everywhere."""
    rng = SeedSequenceFactory(seed).rng("ratings")
    n_liars = int(round(liar_fraction * N_RATERS))
    feedbacks: List[Feedback] = []
    target, truth, lie = (
        ("victim", TRUE_GOOD, 0.05)
        if attack == "badmouth"
        else ("crony", TRUE_BAD, 0.95)
    )
    for i in range(N_RATERS):
        rater = f"r{i:02d}"
        is_liar = i < n_liars
        for k in range(REPORTS_EACH):
            time = float(k * N_RATERS + i)
            noise = float(rng.normal(0, 0.03))
            honest_value = min(1.0, max(0.0, truth + noise))
            rating = lie if is_liar else honest_value
            feedbacks.append(
                Feedback(rater=rater, target=target, time=time,
                         rating=rating)
            )
            # Reference ratings (liars lie here too -- consistent
            # manipulation, which is what similarity defenses exploit).
            for ref, ref_truth in [("ref-good", 0.8), ("ref-bad", 0.25)]:
                honest_ref = min(1.0, max(0.0, ref_truth + float(rng.normal(0, 0.03))))
                ref_rating = (1.0 - ref_truth) if is_liar else honest_ref
                feedbacks.append(
                    Feedback(rater=rater, target=ref, time=time,
                             rating=min(1.0, max(0.0, ref_rating)))
                )
    return feedbacks


def no_defense(feedbacks: List[Feedback], target: str, judge: str) -> float:
    return safe_mean(
        [fb.rating for fb in feedbacks if fb.target == target], 0.5
    )


def cluster_defense(feedbacks, target, judge) -> float:
    relevant = [fb for fb in feedbacks if fb.target == target]
    return ClusterFilter(mode=FilterMode.BOTH).filtered_mean(relevant)


def majority_defense(feedbacks, target, judge) -> float:
    relevant = [fb for fb in feedbacks if fb.target == target]
    return MajorityOpinion().score(relevant)


def zhang_cohen_defense(feedbacks, target, judge) -> float:
    defense = ZhangCohenDefense(window=1000.0, agreement_tolerance=0.2)
    for fb in feedbacks:
        if fb.rater == judge:
            defense.record_own(fb)
        else:
            defense.record_advice(fb)
    return defense.robust_score(judge, target)


def peertrust_defense(feedbacks, target, judge) -> float:
    model = PeerTrustModel(window=10 ** 6)
    model.record_many(feedbacks)
    return model.score(target, perspective=judge)


DEFENSES: Dict[str, Callable] = {
    "none": no_defense,
    "cluster_filter": cluster_defense,
    "majority": majority_defense,
    "zhang_cohen": zhang_cohen_defense,
    "peertrust_psm": peertrust_defense,
}

#: The honest rater whose perspective personalized defenses adopt
#: (always in the honest suffix of the population).
JUDGE = f"r{N_RATERS - 1:02d}"


def sweep_point(attack: str, fraction: float) -> Dict[str, float]:
    """Absolute error of every defense at one liar fraction — one
    independent trial, so the sweep fans out across the process pool."""
    truth = TRUE_GOOD if attack == "badmouth" else TRUE_BAD
    target = "victim" if attack == "badmouth" else "crony"
    feedbacks = build_feedback(fraction, attack)
    return {
        name: abs(defense(feedbacks, target, JUDGE) - truth)
        for name, defense in DEFENSES.items()
    }


def run_sweep(attack: str, max_workers: int = None):
    """The liar-fraction sweep, parallel when REPRO_JOBS (or
    *max_workers*) says so; results merge in canonical fraction order
    either way."""
    if max_workers is None:
        max_workers = jobs_from_env(1)
    rows = parallel_map(
        partial(sweep_point, attack), LIAR_FRACTIONS, max_workers=max_workers
    )
    return dict(zip(LIAR_FRACTIONS, rows))


class TestUnfairRatings:
    @pytest.fixture(scope="class")
    def badmouth(self):
        return run_sweep("badmouth")

    @pytest.fixture(scope="class")
    def stuffing(self):
        return run_sweep("stuffing")

    def test_defenses_hold_at_30_percent_liars(self, badmouth, stuffing):
        # Majority voting is binary, so its best-case error equals the
        # quantization gap |1.0 - truth| = 0.15 / |0.0 - truth| = 0.2;
        # "holding" means staying at that floor.
        for table in (badmouth, stuffing):
            errors = table[0.3]
            for name in ["cluster_filter", "zhang_cohen"]:
                assert errors[name] < errors["none"], name
                assert errors[name] < 0.15, name
            # PeerTrust's PSM down-weights rather than excludes liars:
            # graceful degradation, not elimination.
            assert errors["peertrust_psm"] < errors["none"]
            assert errors["peertrust_psm"] < 0.2
            assert errors["majority"] <= 0.2 + 1e-9

    def test_no_defense_degrades_linearly(self, badmouth):
        errors = [badmouth[f]["none"] for f in LIAR_FRACTIONS]
        assert errors == sorted(errors)
        assert errors[-1] > 0.4

    def test_majority_collapses_past_half(self, badmouth):
        # Sen & Sajja's own bound: no honest majority, no guarantee.
        # Below 0.5 the verdict is right (error = quantization floor);
        # above 0.5 the verdict flips (error ~= |0.0 - 0.85|).
        assert badmouth[0.6]["majority"] > 0.5
        assert badmouth[0.4]["majority"] <= 0.15 + 1e-9

    def test_personalized_defense_survives_longest(self, badmouth):
        # Zhang-Cohen anchors on first-hand experience, so even at 60%
        # liars the judge's estimate stays close to the truth.
        assert badmouth[0.6]["zhang_cohen"] < 0.2

    def test_sen_sajja_witness_bound_is_consistent(self):
        # The analytical bound: witnesses needed explodes near 0.5.
        n_10 = required_witnesses(0.1, 0.95)
        n_30 = required_witnesses(0.3, 0.95)
        n_45 = required_witnesses(0.45, 0.95)
        assert n_10 < n_30 < n_45
        assert required_witnesses(0.5, 0.95) is None

    def test_report(self, badmouth, stuffing):
        for attack, table in [("badmouthing", badmouth),
                              ("ballot-stuffing", stuffing)]:
            rows = [
                [f"{fraction:.1f}"] + [
                    f"{table[fraction][name]:.3f}" for name in DEFENSES
                ]
                for fraction in LIAR_FRACTIONS
            ]
            print_table(
                f"C5: |estimate - truth| under {attack} "
                f"({N_RATERS} raters x {REPORTS_EACH} reports)",
                ["liars"] + list(DEFENSES),
                rows,
            )


@pytest.mark.benchmark(group="c5")
def test_bench_cluster_filter(benchmark):
    feedbacks = build_feedback(0.3, "badmouth")
    relevant = [fb for fb in feedbacks if fb.target == "victim"]
    cf = ClusterFilter(mode=FilterMode.BOTH)
    benchmark(lambda: cf.filtered_mean(relevant))
