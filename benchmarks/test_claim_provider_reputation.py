"""C7 — §4/§5: "for the service for which the trust and reputation has
not been established, e.g. a new service …, the trust and reputation of
the service provider, accumulated by the provider from providing other
services, can be used for the selection."

The decisive setting: a provider with an excellent track record in one
category (weather) enters a *new* category (flights) where it has no
service reputation at all — and so does a provider with a terrible
track record.  The incumbent flight service is mediocre.

With service-only reputation and greedy (non-exploring) consumers, both
newcomers score the 0.5 prior, below the known incumbent: the excellent
newcomer is never tried and consumers are stuck with mediocrity.  With
provider-reputation backoff, the good provider's newcomer inherits its
provider's standing, outranks the incumbent, gets tried, and takes
over — while the bad provider's newcomer stays (correctly) untried.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import pytest

from repro.common.ids import EntityId
from repro.common.randomness import SeedSequenceFactory
from repro.core.selection import GreedyPolicy
from repro.experiments.workloads import make_consumers
from repro.models.base import ReputationModel
from repro.models.beta import BetaReputation
from repro.models.provider_backoff import ProviderBackoffModel
from repro.services.description import ServiceDescription
from repro.services.invocation import InvocationEngine
from repro.services.provider import Provider, Service
from repro.services.qos import DEFAULT_METRICS, QoSProfile

from benchmarks.conftest import print_table

WARMUP_ROUNDS = 20
COLD_ROUNDS = 30


def make_service(sid, provider: Provider, category, quality) -> Service:
    svc = Service(
        description=ServiceDescription(
            service=sid, provider=provider.provider_id, category=category
        ),
        profile=QoSProfile(
            quality={m.name: quality for m in DEFAULT_METRICS}, noise=0.04
        ),
    )
    provider.add_service(svc)
    return svc


@dataclass
class ColdStartResult:
    good_newcomer_initial: float
    bad_newcomer_initial: float
    cold_regret: float
    good_newcomer_share: float
    bad_newcomer_share: float


def run(use_provider_reputation: bool, seed: int = 0) -> ColdStartResult:
    seeds = SeedSequenceFactory(seed)
    good = Provider("good-corp", quality_tendency=0.8)
    bad = Provider("cheap-inc", quality_tendency=0.3)
    okay = Provider("okay-llc", quality_tendency=0.55)
    provider_of: Dict[EntityId, EntityId] = {}
    weather = []
    for provider, quality in [(good, 0.8), (bad, 0.3)]:
        for j in range(2):
            sid = f"{provider.provider_id}-weather{j}"
            weather.append(make_service(sid, provider, "weather", quality))
            provider_of[sid] = provider.provider_id
    incumbent = make_service("okay-llc-flight", okay, "flights", 0.55)
    provider_of[incumbent.service_id] = okay.provider_id

    consumers = make_consumers(10, DEFAULT_METRICS, seeds)
    engine = InvocationEngine(DEFAULT_METRICS, rng=seeds.rng("invoke"))
    model: ReputationModel = (
        ProviderBackoffModel(provider_of)
        if use_provider_reputation
        else BetaReputation()
    )
    policy = GreedyPolicy()

    def run_category(services, rounds, start):
        by_id = {s.service_id: s for s in services}
        regrets = []
        picks = {sid: 0 for sid in by_id}
        for t in range(rounds):
            time = float(start + t)
            for consumer in consumers:
                chosen = policy.choose(
                    model.rank(sorted(by_id), consumer.consumer_id,
                               now=time)
                )
                picks[chosen] += 1
                truth = {
                    sid: svc.true_overall(time, consumer.preferences.weights)
                    for sid, svc in by_id.items()
                }
                regrets.append(max(truth.values()) - truth[chosen])
                interaction = engine.invoke(consumer, by_id[chosen], time)
                model.record(consumer.rate(interaction, DEFAULT_METRICS))
        return regrets, picks

    # Warm-up: weather selections build provider track records, and the
    # incumbent flight service builds its own reputation.
    run_category(weather, WARMUP_ROUNDS, 0)
    run_category([incumbent], WARMUP_ROUNDS, 0)

    # Both providers enter the flights category.
    good_new = make_service("good-corp-flight", good, "flights", 0.9)
    bad_new = make_service("cheap-inc-flight", bad, "flights", 0.25)
    provider_of[good_new.service_id] = good.provider_id
    provider_of[bad_new.service_id] = bad.provider_id
    flights = [incumbent, good_new, bad_new]
    good_initial = model.score(good_new.service_id)
    bad_initial = model.score(bad_new.service_id)
    regrets, picks = run_category(flights, COLD_ROUNDS, WARMUP_ROUNDS)
    total = sum(picks.values())
    return ColdStartResult(
        good_newcomer_initial=good_initial,
        bad_newcomer_initial=bad_initial,
        cold_regret=sum(regrets) / len(regrets),
        good_newcomer_share=picks[good_new.service_id] / total,
        bad_newcomer_share=picks[bad_new.service_id] / total,
    )


class TestProviderReputation:
    @pytest.fixture(scope="class")
    def outcomes(self):
        return {
            "service_only": run(use_provider_reputation=False),
            "with_provider": run(use_provider_reputation=True),
        }

    def test_provider_reputation_discriminates_newcomers(self, outcomes):
        with_provider = outcomes["with_provider"]
        assert with_provider.good_newcomer_initial > 0.7
        # Greedy consumers abandon the bad provider quickly, so its
        # reputation rests on few ratings and stays Laplace-pulled
        # toward 0.5 — but clearly below the good provider's.
        assert with_provider.bad_newcomer_initial < 0.45
        assert (
            with_provider.good_newcomer_initial
            > with_provider.bad_newcomer_initial + 0.25
        )
        service_only = outcomes["service_only"]
        assert service_only.good_newcomer_initial == pytest.approx(0.5)
        assert service_only.bad_newcomer_initial == pytest.approx(0.5)

    def test_without_provider_reputation_newcomer_never_tried(self, outcomes):
        # Greedy consumers stick with the known incumbent; the best
        # service in the market is starved of its first chance.
        assert outcomes["service_only"].good_newcomer_share < 0.05

    def test_with_provider_reputation_newcomer_adopted(self, outcomes):
        assert outcomes["with_provider"].good_newcomer_share > 0.7
        # And the bad provider's newcomer is (correctly) avoided.
        assert outcomes["with_provider"].bad_newcomer_share < 0.05

    def test_cold_start_regret_reduced(self, outcomes):
        assert (
            outcomes["with_provider"].cold_regret
            < outcomes["service_only"].cold_regret / 2
        )

    def test_report(self, outcomes):
        rows = [
            [
                name,
                f"{o.good_newcomer_initial:.3f}",
                f"{o.bad_newcomer_initial:.3f}",
                f"{o.cold_regret:.4f}",
                f"{o.good_newcomer_share:.3f}",
                f"{o.bad_newcomer_share:.3f}",
            ]
            for name, o in outcomes.items()
        ]
        print_table(
            "C7: entering a new category with vs without provider "
            f"reputation ({WARMUP_ROUNDS} warm-up + {COLD_ROUNDS} rounds, "
            "greedy consumers)",
            ["mode", "good-new init", "bad-new init", "cold regret",
             "good-new share", "bad-new share"],
            rows,
        )


@pytest.mark.benchmark(group="c7")
def test_bench_cold_start(benchmark):
    benchmark(lambda: run(use_provider_reputation=True, seed=1))
