"""C3 — §2 / Maximilien & Singh [19]: explorer agents give services
with a negative reputation "a chance to be selected when they improve
their service quality".

A service earns a bad reputation, then genuinely improves.  Without
explorer agents, consumers never revisit it (its score stays low and
greedy selection starves it of the feedback that would prove the
improvement).  With explorer agents probing negatively-reputed
services, the improvement is detected and the service is rehabilitated.
"""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.common.randomness import SeedSequenceFactory
from repro.core.selection import GreedyPolicy
from repro.experiments.workloads import make_consumers
from repro.models.beta import BetaReputation
from repro.services.description import ServiceDescription
from repro.services.invocation import InvocationEngine
from repro.services.monitoring import ExplorerAgentPool
from repro.services.provider import ImprovingBehavior, Service
from repro.services.qos import DEFAULT_METRICS, QoSProfile

from benchmarks.conftest import print_table

ROUNDS = 60
IMPROVEMENT_START = 15.0


def build_services():
    """A steady mediocre incumbent and an improving challenger.

    The challenger starts 0.5 below its (excellent) base quality and
    recovers between t=15 and t=35.
    """
    incumbent = Service(
        description=ServiceDescription(
            service="incumbent", provider="p0", category="compute"
        ),
        profile=QoSProfile(
            quality={m.name: 0.6 for m in DEFAULT_METRICS}, noise=0.03
        ),
    )
    challenger = Service(
        description=ServiceDescription(
            service="challenger", provider="p1", category="compute"
        ),
        profile=QoSProfile(
            quality={m.name: 0.9 for m in DEFAULT_METRICS}, noise=0.03
        ),
        behavior=ImprovingBehavior(
            initial_deficit=0.5, ramp_duration=20.0,
            start_time=IMPROVEMENT_START,
        ),
    )
    return [incumbent, challenger]


@dataclass
class RunResult:
    rehabilitation_round: float  # first round the challenger wins again
    challenger_share_tail: float
    explorer_probes: int


def run(with_explorers: bool, seed: int = 0) -> RunResult:
    seeds = SeedSequenceFactory(seed)
    services = build_services()
    by_id = {s.service_id: s for s in services}
    consumers = make_consumers(10, DEFAULT_METRICS, seeds)
    engine = InvocationEngine(DEFAULT_METRICS, rng=seeds.rng("invoke"))
    model = BetaReputation(lam=0.95)
    pool = None
    if with_explorers:
        pool = ExplorerAgentPool(
            InvocationEngine(DEFAULT_METRICS, rng=seeds.rng("probe")),
            feedback_sink=model.record,
            reputation_threshold=0.5,  # below neutral = negative
            probes_per_round=2,
            rng=seeds.rng("pool"),
        )
    policy = GreedyPolicy()
    rehabilitation = float("inf")
    tail_challenger = 0
    tail_total = 0
    for t in range(ROUNDS):
        time = float(t)
        challenger_picks = 0
        for consumer in consumers:
            ranking = model.rank(list(by_id), consumer.consumer_id,
                                 now=time)
            chosen = policy.choose(ranking)
            if chosen == "challenger":
                challenger_picks += 1
            interaction = engine.invoke(consumer, by_id[chosen], time)
            model.record(consumer.rate(interaction, DEFAULT_METRICS))
        if pool is not None:
            reputations = {sid: model.score(sid) for sid in by_id}
            pool.explore(services, reputations, time)
        if (
            time > IMPROVEMENT_START + 20
            and challenger_picks > len(consumers) / 2
            and rehabilitation == float("inf")
        ):
            rehabilitation = time
        if t >= ROUNDS - 15:
            tail_challenger += challenger_picks
            tail_total += len(consumers)
    return RunResult(
        rehabilitation_round=rehabilitation,
        challenger_share_tail=tail_challenger / tail_total,
        explorer_probes=pool.probe_count if pool else 0,
    )


class TestExplorerAgents:
    @pytest.fixture(scope="class")
    def outcomes(self):
        return {
            "without": run(with_explorers=False),
            "with": run(with_explorers=True),
        }

    def test_without_explorers_service_stays_buried(self, outcomes):
        assert outcomes["without"].challenger_share_tail < 0.3

    def test_with_explorers_service_rehabilitated(self, outcomes):
        assert outcomes["with"].challenger_share_tail > 0.7
        assert outcomes["with"].rehabilitation_round < ROUNDS

    def test_explorers_probe_only_while_negative(self, outcomes):
        # Far fewer probes than rounds x services: probing stops once
        # reputation recovers.
        assert 0 < outcomes["with"].explorer_probes < ROUNDS * 2 * 2

    def test_report(self, outcomes):
        rows = [
            [
                name,
                ("never" if r.rehabilitation_round == float("inf")
                 else f"{r.rehabilitation_round:.0f}"),
                f"{r.challenger_share_tail:.2f}",
                r.explorer_probes,
            ]
            for name, r in outcomes.items()
        ]
        print_table(
            "C3: improving service with vs without explorer agents "
            f"({ROUNDS} rounds; improvement starts at t={IMPROVEMENT_START:.0f})",
            ["explorers", "rehabilitated at", "tail share", "probes"],
            rows,
        )


@pytest.mark.benchmark(group="c3")
def test_bench_explorer_round(benchmark):
    benchmark(lambda: run(with_explorers=True, seed=1))
