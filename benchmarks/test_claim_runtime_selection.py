"""C12 — §3.1 Q1: when should a trust and reputation mechanism be used?

"The major way currently used is selecting a service manually at design
time … but this task becomes very tedious … The alternative way is to
do the selection automatically at run time by the system."

We price the difference in a *dynamic* market: the initially-best
service degrades mid-run and an initially-mediocre one improves.

* **design-time** selection: the developer examines the market once
  (perfect information at t=0!), hard-codes the winner, never revisits;
* **run-time** selection: the automatic reputation loop re-selects
  every invocation.

Design-time selection is optimal exactly until the world changes, then
pays the full drift forever — the regret gap is the value of automatic
run-time selection, and it grows with market volatility.
"""

from __future__ import annotations

import pytest

from repro.common.randomness import SeedSequenceFactory
from repro.core.selection import EpsilonGreedyPolicy
from repro.experiments.workloads import make_consumers
from repro.models.beta import BetaReputation
from repro.services.description import ServiceDescription
from repro.services.invocation import InvocationEngine
from repro.services.provider import (
    DegradingBehavior,
    ImprovingBehavior,
    Service,
)
from repro.services.qos import DEFAULT_METRICS, QoSProfile

from benchmarks.conftest import print_table

ROUNDS = 80
SHIFT_AT = 30.0


def build_market():
    """'early-star' is best at t=0 but degrades; 'late-bloomer' starts
    mediocre and improves; 'steady' never changes."""
    def svc(sid, quality, behavior=None):
        return Service(
            description=ServiceDescription(
                service=sid, provider=f"p-{sid}", category="compute"
            ),
            profile=QoSProfile(
                quality={m.name: quality for m in DEFAULT_METRICS},
                noise=0.03,
            ),
            behavior=behavior,
        ) if behavior else Service(
            description=ServiceDescription(
                service=sid, provider=f"p-{sid}", category="compute"
            ),
            profile=QoSProfile(
                quality={m.name: quality for m in DEFAULT_METRICS},
                noise=0.03,
            ),
        )

    return [
        svc("early-star", 0.85,
            DegradingBehavior(drop=0.5, onset=SHIFT_AT)),
        svc("late-bloomer", 0.9,
            ImprovingBehavior(initial_deficit=0.45, ramp_duration=20.0,
                              start_time=SHIFT_AT)),
        svc("steady", 0.6),
    ]


def run(mode: str, seed: int = 0) -> float:
    """Mean regret of *mode* ('design_time' or 'run_time')."""
    seeds = SeedSequenceFactory(seed)
    services = build_market()
    by_id = {s.service_id: s for s in services}
    consumers = make_consumers(10, DEFAULT_METRICS, seeds)
    engine = InvocationEngine(DEFAULT_METRICS, rng=seeds.rng("invoke"))
    model = BetaReputation(lam=0.95)
    policy = EpsilonGreedyPolicy(0.1, rng=seeds.rng("policy"))
    # Design-time choice: the true best at t=0 (perfect information —
    # the developer did their homework).
    frozen_choice = max(
        by_id, key=lambda sid: by_id[sid].true_overall(0.0)
    )
    regrets = []
    for t in range(ROUNDS):
        time = float(t)
        for consumer in consumers:
            if mode == "design_time":
                chosen = frozen_choice
            else:
                chosen = policy.choose(
                    model.rank(sorted(by_id), consumer.consumer_id,
                               now=time)
                )
            truth = {
                sid: svc.true_overall(time, consumer.preferences.weights)
                for sid, svc in by_id.items()
            }
            regrets.append(max(truth.values()) - truth[chosen])
            interaction = engine.invoke(consumer, by_id[chosen], time)
            model.record(consumer.rate(interaction, DEFAULT_METRICS))
    return sum(regrets) / len(regrets)


class TestRuntimeSelection:
    @pytest.fixture(scope="class")
    def regrets(self):
        return {
            "design_time": run("design_time"),
            "run_time": run("run_time"),
        }

    def test_design_time_pays_for_market_drift(self, regrets):
        # The frozen choice degrades at t=30 and is wrong forever after.
        assert regrets["design_time"] > 0.2

    def test_run_time_tracks_the_market(self, regrets):
        assert regrets["run_time"] < regrets["design_time"] / 2

    def test_report(self, regrets):
        rows = [[mode, f"{value:.4f}"] for mode, value in regrets.items()]
        print_table(
            "C12: mean regret, design-time (one perfect choice at t=0) "
            f"vs run-time automatic selection ({ROUNDS} rounds, quality "
            f"shift at t={SHIFT_AT:.0f})",
            ["selection mode", "mean regret"],
            rows,
        )


@pytest.mark.benchmark(group="c12")
def test_bench_runtime_selection(benchmark):
    benchmark(lambda: run("run_time", seed=1))
