"""Closed-loop serving benchmark: determinism gates, then latency.

Drives :func:`repro.serve.loadgen.run_loadgen` in two shapes:

* **steady** — the default admission config, everything admitted; the
  wall-clock p50/p99 rank latency numbers come from here;
* **pressure** — a deliberately tight admission config (low drain
  rate, shallow queue, small token buckets) so the shed/throttle path
  is exercised and the measured shed rate is non-trivial.

Before any timing, the headline contract is asserted on the steady
spec: identical runs are byte-identical, 1 == 2 == 4 workers, a replay
of the recorded ingest log re-derives responses/scores/trace exactly,
and the server's SLA accounting equals the load generator's
independent client-side tally.  Every number in ``BENCH_serve.json``
therefore describes a run whose correctness was just proved.

Results go to ``BENCH_serve.json`` at the repo root (tracked
baseline).  Gates: the steady-state client-side p99 rank latency must
stay under a generous absolute ceiling (``REPRO_BENCH_SERVE_P99_MS``),
the steady shed rate must be zero, and the pressure shed rate must not
regress by more than five points against the tracked baseline.
``REPRO_BENCH_SERVE_REQUESTS`` scales the per-client request count.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict

from repro.serve.core import ServeConfig
from repro.serve.loadgen import LoadSpec, replay_report, run_loadgen
from repro.serve.sla import sla_counts

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_serve.json"

SEED = 2026
REQUESTS = int(os.environ.get("REPRO_BENCH_SERVE_REQUESTS", "30"))
P99_CEILING_MS = float(os.environ.get("REPRO_BENCH_SERVE_P99_MS", "250"))
#: shed-rate regression tolerance against the tracked baseline
SHED_TOLERANCE = 0.05

STEADY = LoadSpec(
    tenants=2,
    clients_per_tenant=3,
    requests_per_client=REQUESTS,
    seed=SEED,
    think_time=0.02,
)

PRESSURE = LoadSpec(
    tenants=2,
    clients_per_tenant=3,
    requests_per_client=REQUESTS,
    seed=SEED,
    think_time=0.002,
    config=ServeConfig(
        drain_rate=96.0, max_depth=6, tenant_rate=24.0, tenant_burst=6
    ),
)


def _sla_sim_rows(report) -> Dict[str, Dict[str, Any]]:
    return {
        row["tenant"]: {
            "submitted": row["submitted"],
            "shed_rate": round(row["shed_rate"], 4),
            "queue_wait_p99_sim": row["queue_wait_p99"],
            "rank_latency_p99_sim": row["rank_latency_p99"],
            "error_budget_burn": round(row["error_budget_burn"], 3),
        }
        for row in report.sla
    }


def _overall_shed_rate(report) -> float:
    counts = sla_counts(report.sla)
    submitted = rejected = 0
    for tenant, c in counts.items():
        if tenant == "_admin":
            continue
        rejected += c["shed"] + c["throttled"]
        submitted += sum(c.values())
    return rejected / submitted if submitted else 0.0


def test_serve_latency_regression(table_printer):
    # -- determinism gates first --------------------------------------
    steady = run_loadgen(STEADY)
    assert run_loadgen(STEADY).identity() == steady.identity(), (
        "identical steady specs produced different canonical bytes"
    )
    for workers in (1, 4):
        assert (
            run_loadgen(STEADY, workers=workers).identity()
            == steady.identity()
        ), f"{workers}-worker run diverged from the 2-worker bytes"
    replay = replay_report(STEADY, steady.log)
    assert replay.responses == steady.responses
    assert replay.trace_sha256 == steady.trace_sha256, (
        "replaying the steady ingest log diverged from the live trace"
    )
    assert steady.tally_matches_sla(), (
        "server SLA accounting != client-side tally (steady)"
    )

    pressure = run_loadgen(PRESSURE)
    assert run_loadgen(PRESSURE).identity() == pressure.identity()
    assert pressure.tally_matches_sla(), (
        "server SLA accounting != client-side tally (pressure)"
    )
    pressure_replay = replay_report(PRESSURE, pressure.log)
    assert pressure_replay.trace_sha256 == pressure.trace_sha256

    # -- measurements -------------------------------------------------
    steady_wall = steady.wall_quantiles_ms()
    pressure_wall = pressure.wall_quantiles_ms()
    steady_shed = _overall_shed_rate(steady)
    pressure_shed = _overall_shed_rate(pressure)

    previous: Dict[str, Any] = (
        json.loads(BENCH_PATH.read_text()) if BENCH_PATH.exists() else {}
    )

    payload = {
        "config": {
            "seed": SEED,
            "tenants": STEADY.tenants,
            "clients_per_tenant": STEADY.clients_per_tenant,
            "requests_per_client": REQUESTS,
            "workers": STEADY.workers,
            "timer": "perf_counter_ns (client-side)",
            "cpu_count": os.cpu_count() or 1,
        },
        "determinism": {
            "ingest_log_sha256": steady.log_sha256,
            "responses_sha256": steady.responses_sha256,
            "scores_sha256": steady.scores_sha256,
            "trace_sha256": steady.trace_sha256,
            "workers_checked": [1, 2, 4],
            "replay_checked": True,
        },
        "steady": {
            "rank_p50_ms": round(steady_wall["_all"]["p50_ms"], 3),
            "rank_p99_ms": round(steady_wall["_all"]["p99_ms"], 3),
            "rank_mean_ms": round(steady_wall["_all"]["mean_ms"], 3),
            "shed_rate": round(steady_shed, 4),
            "sla": _sla_sim_rows(steady),
        },
        "pressure": {
            "rank_p50_ms": round(pressure_wall["_all"]["p50_ms"], 3),
            "rank_p99_ms": round(pressure_wall["_all"]["p99_ms"], 3),
            "shed_rate": round(pressure_shed, 4),
            "sla": _sla_sim_rows(pressure),
        },
    }
    BENCH_PATH.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )

    table_printer(
        f"Serve latency: {STEADY.tenants * STEADY.clients_per_tenant} "
        f"closed-loop clients x {REQUESTS} requests",
        ["shape", "p50 ms", "p99 ms", "shed rate"],
        [
            [
                "steady",
                f"{steady_wall['_all']['p50_ms']:.3f}",
                f"{steady_wall['_all']['p99_ms']:.3f}",
                f"{steady_shed:.4f}",
            ],
            [
                "pressure",
                f"{pressure_wall['_all']['p50_ms']:.3f}",
                f"{pressure_wall['_all']['p99_ms']:.3f}",
                f"{pressure_shed:.4f}",
            ],
        ],
    )

    # -- gates --------------------------------------------------------
    assert steady_wall["_all"]["p99_ms"] <= P99_CEILING_MS, (
        f"steady p99 rank latency {steady_wall['_all']['p99_ms']:.1f}ms "
        f"> ceiling {P99_CEILING_MS}ms"
    )
    assert steady_shed == 0.0, (
        f"steady-state shed rate {steady_shed} != 0 under the default "
        "admission config"
    )
    assert pressure_shed > 0.0, (
        "pressure run shed nothing — the admission path went untested"
    )
    baseline_shed = previous.get("pressure", {}).get("shed_rate")
    if baseline_shed is not None:
        assert pressure_shed <= baseline_shed + SHED_TOLERANCE, (
            f"pressure shed rate {pressure_shed:.4f} regressed past "
            f"baseline {baseline_shed:.4f} + {SHED_TOLERANCE}"
        )
