"""Shared helpers for the benchmark suite.

Every benchmark prints the table/series its figure or claim requires, so
running ``pytest benchmarks/ --benchmark-only -s`` regenerates the
paper's artefacts; the timing half of each benchmark exercises the hot
path through pytest-benchmark.
"""

from __future__ import annotations

from typing import Iterable, List

import pytest

from repro.common.records import Feedback


def warm_stream(
    n: int = 1000, raters: int = 20, targets: int = 10
) -> List[Feedback]:
    """The canonical deterministic warm-up stream every benchmark
    shares: *n* feedback records round-robining *raters* x *targets*
    with varied ratings and one facet."""
    return [
        Feedback(
            rater=f"r{i % raters}",
            target=f"svc-{i % targets}",
            time=float(i),
            rating=((i * 7) % 100) / 100.0,
            facet_ratings={"response_time": ((i * 3) % 100) / 100.0},
        )
        for i in range(n)
    ]


@pytest.fixture(scope="session")
def stream() -> List[Feedback]:
    """1,000 warm records over 20 raters and 10 targets."""
    return warm_stream()


@pytest.fixture(scope="session")
def wide_stream() -> List[Feedback]:
    """1,000 warm records over 100 distinct targets — the batch-ranking
    shape the score_many regression harness times."""
    return warm_stream(targets=100)


def print_table(title: str, header: Iterable[str], rows) -> None:
    """Render one experiment table to stdout."""
    header = list(header)
    rows = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(str(h)), *(len(r[i]) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(header)
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(header, widths))
    print()
    print(f"== {title} ==")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(c.ljust(w) for c, w in zip(row, widths)))


@pytest.fixture
def table_printer():
    return print_table
