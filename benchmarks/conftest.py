"""Shared helpers for the benchmark suite.

Every benchmark prints the table/series its figure or claim requires, so
running ``pytest benchmarks/ --benchmark-only -s`` regenerates the
paper's artefacts; the timing half of each benchmark exercises the hot
path through pytest-benchmark.
"""

from __future__ import annotations

from typing import Iterable

import pytest


def print_table(title: str, header: Iterable[str], rows) -> None:
    """Render one experiment table to stdout."""
    header = list(header)
    rows = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(str(h)), *(len(r[i]) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(header)
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(header, widths))
    print()
    print(f"== {title} ==")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(c.ljust(w) for c, w in zip(row, widths)))


@pytest.fixture
def table_printer():
    return print_table
