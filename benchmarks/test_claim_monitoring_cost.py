"""C2 — §2: sensors are "very costly since each web service needs a
sensor … only suitable for a small system", and consumer feedback
"allows capturing QoS information directly from consumers that can not
be obtained by a central monitor".

Two experiments:

1. Cost scaling — total cost of the sensor approach vs. the feedback
   approach as the number of services grows (the crossover the paper's
   argument implies: sensor cost grows with services, feedback cost
   with consumers).
2. The subjective-facet blind spot — when two services differ *only*
   in a subjective facet (accuracy), monitors cannot separate them but
   consumer feedback can.
"""

from __future__ import annotations

import pytest

from repro.common.randomness import SeedSequenceFactory
from repro.experiments.activities import run_activities_comparison
from repro.experiments.workloads import make_consumers
from repro.models.beta import BetaReputation
from repro.services.description import ServiceDescription
from repro.services.invocation import InvocationEngine
from repro.services.monitoring import SensorDeployment
from repro.services.provider import Service
from repro.services.qos import DEFAULT_METRICS, QoSProfile

from benchmarks.conftest import print_table

SIZES = [2, 5, 10, 20, 40]
ROUNDS = 15


def cost_at_size(n_services: int, seed: int = 0):
    reports = {
        r.name: r
        for r in run_activities_comparison(
            n_providers=n_services, services_per_provider=1,
            n_consumers=15, rounds=ROUNDS, seed=seed,
            approaches=["sensors", "feedback"],
        )
    }
    return reports["sensors"], reports["feedback"]


def build_subjective_twins():
    """Two services identical on observables, different on accuracy."""
    base = {m.name: 0.7 for m in DEFAULT_METRICS}
    accurate = dict(base, accuracy=0.9)
    sloppy = dict(base, accuracy=0.3)
    services = []
    for sid, quality in [("accurate-svc", accurate), ("sloppy-svc", sloppy)]:
        services.append(
            Service(
                description=ServiceDescription(
                    service=sid, provider="p0", category="lookup"
                ),
                profile=QoSProfile(quality=quality, noise=0.02),
            )
        )
    return services


class TestMonitoringCostScaling:
    @pytest.fixture(scope="class")
    def scaling(self):
        return {n: cost_at_size(n) for n in SIZES}

    def test_sensor_cost_grows_with_services(self, scaling):
        costs = [scaling[n][0].total_cost for n in SIZES]
        assert costs == sorted(costs)
        assert costs[-1] > costs[0] * 10

    def test_feedback_cost_flat_in_services(self, scaling):
        costs = [scaling[n][1].total_cost for n in SIZES]
        assert max(costs) - min(costs) < 1.0

    def test_crossover_feedback_cheaper_at_scale(self, scaling):
        sensors, feedback = scaling[SIZES[-1]]
        assert feedback.total_cost < sensors.total_cost / 10

    def test_report(self, scaling):
        # Regret rather than strict-argmax accuracy: with 40 near-tied
        # services the argmax is noise, while quality left on the table
        # is the robust measure.
        rows = [
            [
                n,
                f"{scaling[n][0].total_cost:.1f}",
                f"{scaling[n][0].mean_regret:.4f}",
                f"{scaling[n][1].total_cost:.1f}",
                f"{scaling[n][1].mean_regret:.4f}",
            ]
            for n in SIZES
        ]
        print_table(
            "C2: cost & regret vs number of services "
            f"({ROUNDS} rounds, 15 consumers)",
            ["services", "sensor cost", "sensor regret",
             "feedback cost", "feedback regret"],
            rows,
        )


class TestSubjectiveBlindSpot:
    def test_monitor_cannot_separate_subjective_twins(self):
        services = build_subjective_twins()
        seeds = SeedSequenceFactory(5)
        engine = InvocationEngine(DEFAULT_METRICS, rng=seeds.rng("probe"))
        sensors = SensorDeployment(engine)
        for svc in services:
            sensors.deploy(svc)
        for t in range(30):
            sensors.probe_all(services, float(t))
        accurate = sensors.report_for("accurate-svc").overall()
        sloppy = sensors.report_for("sloppy-svc").overall()
        # Observable metrics are identical: the monitor sees no gap.
        assert abs(accurate - sloppy) < 0.03

    def test_feedback_separates_subjective_twins(self):
        services = build_subjective_twins()
        seeds = SeedSequenceFactory(5)
        engine = InvocationEngine(DEFAULT_METRICS, rng=seeds.rng("invoke"))
        consumers = make_consumers(10, DEFAULT_METRICS, seeds)
        model = BetaReputation()
        for t in range(15):
            for consumer in consumers:
                for svc in services:
                    interaction = engine.invoke(consumer, svc, float(t))
                    model.record(consumer.rate(interaction, DEFAULT_METRICS))
        gap = model.score("accurate-svc") - model.score("sloppy-svc")
        assert gap > 0.05
        print()
        print("== C2b: subjective facet blind spot ==")
        print(f"monitor gap:  ~0 (cannot observe 'accuracy')")
        print(f"feedback gap: {gap:.3f} (consumers experience it)")


@pytest.mark.benchmark(group="c2")
def test_bench_sensor_deployment(benchmark):
    services = build_subjective_twins()
    seeds = SeedSequenceFactory(0)
    engine = InvocationEngine(DEFAULT_METRICS, rng=seeds.rng("probe"))
    sensors = SensorDeployment(engine)
    for svc in services:
        sensors.deploy(svc)

    benchmark(lambda: sensors.probe_all(services, 0.0))
